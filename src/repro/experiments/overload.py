"""Overload sweep: offered load rho 0.8 -> 2.0 x overload-control mode.

The provisioning question the cluster simulator exists for ("how many
engines meet the SLO?") degenerates without overload control: at rho > 1
queues grow without bound, every request waits past its deadline, and
goodput collapses even though utilisation reads 100%.  This sweep pins
the repair, comparing five control modes over identical traffic (same
seed, same request mix; only the arrival *rate* scales with rho):

* ``no-control`` — EDF, admit everything, serve everything (the PR-3
  behaviour; the degenerate baseline).
* ``fifo-shed`` — class-blind greedy FIFO with ``drop_expired``: the
  foil for the fairness story.  Shedding alone is not enough — FIFO
  serves whatever is oldest, tight-deadline interactive requests expire
  while bulk rides the queue order, and the interactive class starves.
* ``shed`` — EDF with ``drop_expired``: requests whose deadline already
  passed are dropped instead of served late, so scarce batch slots go to
  work that can still count.
* ``admit+shed`` — shedding plus an estimated-wait admission cap
  (slack 1.0): requests whose projected wait alone already exhausts
  their budget are refused at the door, before any queueing capacity is
  spent.
  At moderate overload the refusals cost a sliver of goodput (the wait
  estimate is conservative), but they bound the backlog: by rho 2.0 the
  mode beats shed-only on both met rate and goodput.
* ``weighted-fair`` — shedding under deficit round-robin with
  interactive weighted 3:1 over bulk: explicit per-class service shares
  instead of deadline-implied priority.

Deadline budgets: interactive gets ``OVERLOAD_INTERACTIVE_BUDGET`` (60)
dispatch units here, 2x the capacity sweep's ``INTERACTIVE_BUDGET`` —
under sustained overload a 30-unit budget is infeasible no matter which
policy runs (every interactive request dies in the queue and neither
shedding nor fairness has anything left to allocate), while 60 units is
*binding but feasible when prioritised*, which is exactly the regime
overload control exists for.

Committed expectations (asserted at the fixed seed in
``tests/experiments/test_overload.py``): shedding strictly improves
goodput over no-control at rho >= 1.5; weighted-fair keeps the
interactive class's completed share inside its weight band while
class-blind fifo-shed starves it; the admission cap genuinely fires
(rejected > 0) while staying within 10% of shed-only goodput; and
conservation (``submitted == completed + rejected + shed``) holds on
every row.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cluster import (
    AdmitAll,
    CostModelClock,
    EDFPolicy,
    EstimatedWaitCap,
    GreedyFIFOPolicy,
    PoissonProcess,
    SimConfig,
    SLOClass,
    WeightedFairPolicy,
    WorkloadSpec,
    open_loop,
    service_scales,
    simulate,
)
from .base import ExperimentResult, register

#: Deficit-round-robin weights of the weighted-fair mode: interactive
#: holds 3 of every 4 service credits.
FAIR_WEIGHTS: Dict[str, float] = {"interactive": 3.0, "bulk": 1.0}

#: Deadline budgets in dispatch units (see module docstring for why the
#: interactive budget is 2x the serving_capacity sweep's).
OVERLOAD_INTERACTIVE_BUDGET = 60.0
OVERLOAD_BULK_BUDGET = 400.0

#: Estimated-wait admission slack: refuse once the projected wait alone
#: would burn this fraction of the request's latency budget.  Tuned to
#: the batch-aware queue-drain estimate: the drain model projects the
#: true (larger) wait at deep backlogs, so the near-parity operating
#: point sits at a higher slack than the retired shallow depth x unit
#: shorthand needed.
ADMIT_SLACK = 1.0

#: Interactive completed-share band the weighted-fair mode must hold
#: under overload.  With weights 3:1 the DRR slot share is 0.75, but the
#: completed share is capped by the class's arrival share (0.5): the
#: band demands at least 60% of that arrival share survive (>= 0.30)
#: and no more than the arrival share plus noise (<= 0.55).
FAIR_SHARE_BAND: Tuple[float, float] = (0.30, 0.55)

MODES: Tuple[str, ...] = ("no-control", "fifo-shed", "shed", "admit+shed", "weighted-fair")


def mode_config(
    mode: str, workers: int, clock: CostModelClock, backend: str = "functional"
) -> SimConfig:
    """The (policy, admission) pair each overload-control mode names."""
    if mode == "no-control":
        policy, admission = EDFPolicy(), AdmitAll()
    elif mode == "fifo-shed":
        policy, admission = GreedyFIFOPolicy(drop_expired=True), AdmitAll()
    elif mode == "shed":
        policy, admission = EDFPolicy(drop_expired=True), AdmitAll()
    elif mode == "admit+shed":
        policy = EDFPolicy(drop_expired=True)
        admission = EstimatedWaitCap(slack=ADMIT_SLACK)
    elif mode == "weighted-fair":
        policy = WeightedFairPolicy(weights=FAIR_WEIGHTS, drop_expired=True)
        admission = AdmitAll()
    else:  # pragma: no cover - registry guard
        raise KeyError(f"unknown overload mode {mode!r}; known: {MODES}")
    return SimConfig(
        workers=workers, policy=policy, admission=admission, service=clock, backend=backend
    )


def overload_spec(num_requests: int, dispatch_s: float, seed: int = 11) -> WorkloadSpec:
    """The workload the sweep (and its regression test) runs."""
    return WorkloadSpec(
        num_requests=num_requests,
        n=256,
        window=32,
        heads=2,
        head_dim=8,
        seed=seed,
        slo_classes=(
            SLOClass(
                "interactive",
                deadline_s=OVERLOAD_INTERACTIVE_BUDGET * dispatch_s,
                share=0.5,
            ),
            SLOClass("bulk", deadline_s=OVERLOAD_BULK_BUDGET * dispatch_s, share=0.5),
        ),
    )


@register("overload")
def run(fast: bool = False, backend: str = "functional") -> ExperimentResult:
    workers = 2
    num_requests = 600  # long enough that steady-state overload, not the
    # cold-compile transient, dominates the numbers
    # Flat clock: the sweep's committed claims (shedding beats no-control
    # at rho 1.5, admission near-parity) are about control dynamics at a
    # designed service scale.  The bench-calibrated clock's host dispatch
    # overhead dwarfs this probe workload's per-request latency, which
    # inflates the deadline unit until nothing is ever doomed.
    clock = CostModelClock.flat()
    probe = WorkloadSpec(n=256, window=32, heads=2, head_dim=8)
    unit_s, dispatch_s = service_scales(probe, clock, backend=backend)
    capacity = workers / unit_s
    rho_grid = (0.8, 1.5) if fast else (0.8, 1.2, 1.5, 2.0)

    rows: List[dict] = []
    for rho in rho_grid:
        for mode in MODES:
            spec = overload_spec(num_requests, dispatch_s)
            source = open_loop(spec, PoissonProcess(rate_rps=rho * capacity))
            report = simulate(source, mode_config(mode, workers, clock, backend=backend))
            interactive = report.class_report("interactive")
            rows.append(
                {
                    "rho": rho,
                    "mode": mode,
                    "submitted": report.submitted,
                    "completed": report.completed,
                    "rejected": report.rejected,
                    "shed": report.shed,
                    "goodput_rps": round(report.goodput_rps),
                    "met_rate": round(report.deadline_met_rate, 4),
                    "iact_share": round(interactive.completed / report.completed, 4)
                    if report.completed
                    else 0.0,
                    "iact_met": round(interactive.deadline_met_rate, 4),
                    "jain": round(report.fairness_index, 4),
                    "p99_ms": round(report.latency_p99_ms, 3),
                }
            )

    notes = [
        f"{workers} workers, {num_requests} requests; service-time oracle SALO.estimate "
        f"(amortised unit {unit_s * 1e6:.1f} us); rho = offered load / full-batch capacity",
        "deadlines: interactive 60x dispatch unit (2x the capacity sweep's budget — "
        "binding under overload yet feasible when prioritised), bulk 400x",
        "conservation: submitted == completed + rejected + shed on every row",
        f"weighted-fair: DRR {FAIR_WEIGHTS['interactive']:.0f}:"
        f"{FAIR_WEIGHTS['bulk']:.0f} interactive:bulk, completed-share band "
        f"[{FAIR_SHARE_BAND[0]}, {FAIR_SHARE_BAND[1]}]",
    ]
    # Headline: goodput under sustained overload, shed vs no-control,
    # and the fairness contrast at the same point.
    worst_rho = rho_grid[-1]
    at_worst = {row["mode"]: row for row in rows if row["rho"] == worst_rho}
    notes.append(
        f"rho {worst_rho}: goodput no-control {at_worst['no-control']['goodput_rps']} "
        f"vs shed {at_worst['shed']['goodput_rps']} rps; interactive share "
        f"fifo-shed {at_worst['fifo-shed']['iact_share']:.2f} vs weighted-fair "
        f"{at_worst['weighted-fair']['iact_share']:.2f}"
    )
    return ExperimentResult(
        experiment="overload",
        title="Overload control: admission, shedding and weighted fairness vs rho",
        rows=rows,
        notes=notes,
        config={
            "fast": fast,
            "backend": backend,
            "workers": workers,
            "num_requests": num_requests,
            "rho_grid": list(rho_grid),
            "modes": list(MODES),
            "seed": 11,
        },
    )
