"""Measured multi-core throughput of the out-of-process worker transport.

Every other cluster number in this repo is *modelled* — the
discrete-event simulator charges service from a cost model and never
leaves one process.  This experiment is the measured counterpart: the
same workload runs wall-clock through :class:`~repro.transport.cluster.
TransportCluster` under each driver, so the rows are real seconds on
real cores:

* ``inprocess x1`` — today's single-process behaviour (the baseline all
  speedups are against);
* ``multiprocess xN`` for N on a small worker ladder — each worker is a
  forked process owning a warm :class:`~repro.api.Runtime`, operands
  ship via ``multiprocessing.shared_memory``;
* ``multiprocess x2 + kill`` — a chaos row: worker 1 is ``SIGKILL``'d
  mid-run and the heartbeat/requeue machinery recovers its orphans.
  Conservation (``submitted == completed + rejected + shed + failed``)
  must hold on every row, *including* this one.

Scaling expectations are hardware-relative: on a single-core container
the multiprocess drivers measure IPC overhead, not speedup, so the
"multi-worker beats single-process" claim is only asserted (by the bench
suite) when ``len(os.sched_getaffinity(0)) >= 4``.  The rows always
report the measured numbers either way — that is the point.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from ..serving import TraceSpec, synthetic_trace
from ..serving.trace import pattern_families
from ..transport import TransportCluster, TransportClusterConfig
from .base import ExperimentResult, register

#: Worker-count ladder for the multiprocess driver.
LADDER: Tuple[int, ...] = (1, 2, 4)

#: Fraction of the workload completed before the chaos row's SIGKILL.
KILL_AFTER_FRAC = 0.25


def transport_trace(num_requests: int, seed: int = 13) -> list:
    """The workload every row serves: one pattern family (so worker
    warm-up is a single pre-compile), compute-heavy enough per batch
    that shared-memory shipping is amortised."""
    return synthetic_trace(transport_trace_spec(num_requests, seed))


def transport_trace_spec(num_requests: int, seed: int = 13) -> TraceSpec:
    return TraceSpec(
        num_requests=num_requests,
        n=512,
        window=64,
        heads=4,
        head_dim=16,
        mixed=False,
        seed=seed,
    )


def transport_config(
    driver: str, workers: int, num_requests: int, seed: int = 13
) -> TransportClusterConfig:
    """One row's cluster config; multiprocess workers pre-warm the
    trace's single pattern family so compiles stay out of the timings."""
    spec = transport_trace_spec(num_requests, seed)
    warm = tuple((p, spec.heads) for p in pattern_families(spec))
    return TransportClusterConfig(
        workers=workers,
        driver=driver,
        max_batch_size=8,
        heartbeat_interval_s=0.02,
        heartbeat_timeout_s=2.0,
        warm=warm if driver == "multiprocess" else (),
    )


def run_row(
    driver: str,
    workers: int,
    num_requests: int,
    seed: int = 13,
    kill_worker: Optional[int] = None,
):
    """Serve the trace through one cluster configuration; return the report."""
    requests = transport_trace(num_requests, seed)
    config = transport_config(driver, workers, num_requests, seed)
    tick = None
    if kill_worker is not None:
        fired = {"done": False}

        def tick(cluster: TransportCluster, now: float) -> None:
            done = len(cluster.metrics.records)
            if not fired["done"] and done >= KILL_AFTER_FRAC * num_requests:
                cluster.kill_worker(kill_worker)
                fired["done"] = True

    with TransportCluster(config) as cluster:
        return cluster.run(requests, tick=tick)


@register("transport_multicore")
def run(fast: bool = False, backend: str = "functional") -> ExperimentResult:
    num_requests = 24 if fast else 48
    cores = len(os.sched_getaffinity(0))
    configs: List[Tuple[str, int, Optional[int]]] = [("inprocess", 1, None)]
    configs += [("multiprocess", w, None) for w in LADDER]
    configs.append(("multiprocess", 2, 1))  # chaos row: SIGKILL worker 1

    rows: List[dict] = []
    baseline_rps: Optional[float] = None
    for driver, workers, kill in configs:
        report = run_row(driver, workers, num_requests, kill_worker=kill)
        if baseline_rps is None:
            baseline_rps = report.throughput_rps
        accounted = report.completed + report.rejected + report.shed + report.failed
        rows.append(
            {
                "driver": driver + (" +kill" if kill is not None else ""),
                "workers": workers,
                "submitted": report.submitted,
                "completed": report.completed,
                "failed": report.failed,
                "accounted": accounted,
                "requeues": report.requeues,
                "crashes": sum(w.crashes for w in report.workers),
                "wall_ms": round(report.makespan_s * 1e3, 2),
                "throughput_rps": round(report.throughput_rps, 1),
                "speedup": round(report.throughput_rps / baseline_rps, 3),
            }
        )

    notes = [
        f"{cores} core(s) visible to this process; wall-clock (measured), "
        "not the simulator's cost model",
        "conservation: submitted == completed + rejected + shed + failed on "
        "every row, including the SIGKILL chaos row",
        "multi-worker > single-process is only expected (and only asserted "
        "by the bench suite) with >= 4 cores; on fewer cores the "
        "multiprocess rows measure IPC overhead",
    ]
    kill_row = rows[-1]
    notes.append(
        f"chaos row: worker 1 SIGKILL'd after ~{KILL_AFTER_FRAC:.0%} of the "
        f"trace; {kill_row['requeues']} orphan(s) requeued, "
        f"failed {kill_row['failed']}, accounted {kill_row['accounted']}"
        f"/{kill_row['submitted']}"
    )
    return ExperimentResult(
        experiment="transport_multicore",
        title="Out-of-process transport: measured multi-core throughput + chaos",
        rows=rows,
        notes=notes,
        config={
            "fast": fast,
            "backend": backend,
            "num_requests": num_requests,
            "ladder": list(LADDER),
        },
    )
