"""Chaos sweep: crash-at-peak x recovery mode at fixed load (rho 0.8).

The fault-tolerance question the cluster layer now answers: *when a
worker dies mid-run, how much goodput does each recovery mechanism buy
back?*  One of two workers crashes at the traffic peak (mid-run, almost
certainly mid-batch) and rejoins later with a cold plan cache; four
modes see byte-identical traffic (same workload seed, same arrival
process) and differ only in what the cluster does about the crash:

* ``no-fault`` — the same configuration with no injector at all: the
  goodput ceiling every recovery mode is measured against.
* ``no-retry`` — crash with recovery disabled (no requeue, no work
  stealing): the crashed worker's lost in-flight batch and stranded
  queue land in the terminal ``failed`` bucket.  The conservation law
  still holds — nothing is *silently* lost — but everything the worker
  held is gone.
* ``retry`` — heartbeat detection plus requeue: the down worker's
  orphans re-route (oldest deadline first) onto the survivor; still no
  stealing.
* ``retry+steal`` — requeue plus work stealing, the full recovery
  stack: the survivor also steals the backlog the down worker accrued
  between crash and detection, and the rejoined worker wins work back
  afterwards.

Committed expectations (asserted at the fixed seed in
``tests/experiments/test_faults.py``): four-way conservation
(``submitted == completed + rejected + shed + failed``) on every row
with zero requests silently lost; ``retry+steal`` goodput recovers at
least ``RECOVERY_GOODPUT_FLOOR`` (90%) of the no-fault baseline at
rho 0.8; ``no-retry`` genuinely strands work (``failed > 0``) while both
recovery modes fail nothing and complete strictly more requests;
availability dips below 1.0 exactly in the crash modes.

(Goodput — completions per second of makespan — is deliberately *not*
the axis that separates ``no-retry`` from the recovery modes: dropping
the stranded queue also shortens the work, so at rho 0.8 the goodput
gap is small.  What recovery buys is the zero-``failed`` guarantee.)
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster import (
    CostModelClock,
    CrashSpec,
    EDFPolicy,
    FaultInjector,
    PoissonProcess,
    RecoveryConfig,
    SimConfig,
    SLOClass,
    WorkloadSpec,
    open_loop,
    service_scales,
    simulate,
)
from .base import ExperimentResult, register

#: Offered load of the sweep: comfortably under capacity, so lost
#: goodput is attributable to the crash, not to overload.
RHO = 0.8

#: The committed claim: retry+steal recovers at least this fraction of
#: the fault-free goodput despite losing a worker mid-run.
RECOVERY_GOODPUT_FLOOR = 0.9

#: Crash instant as a fraction of the nominal horizon
#: (``num_requests / rate``): the crash lands at the traffic peak, with
#: enough run left for the rejoined worker to re-warm its plan cache.
CRASH_AT_FRAC = 0.4

#: Down window in amortised service units (absolute, not a horizon
#: fraction): a replacement worker takes a fixed provisioning time, it
#: does not conveniently scale with how long the experiment runs.
DOWN_FOR_UNITS = 30.0

#: Heartbeat cadence in amortised service units.  The defaults in
#: :class:`RecoveryConfig` are sized for millisecond-scale serving; this
#: sweep's cost-model clock runs in microseconds, so probes must scale
#: with the workload or detection would outlast the whole run.
HEARTBEAT_INTERVAL_UNITS = 2.0
HEARTBEAT_TIMEOUT_UNITS = 4.0

#: Deadline budgets in dispatch units (the serving_capacity scale: the
#: run is *not* overloaded, so the standard budgets are feasible).
FAULTS_INTERACTIVE_BUDGET = 60.0
FAULTS_BULK_BUDGET = 400.0

MODES: Tuple[str, ...] = ("no-fault", "no-retry", "retry", "retry+steal")


def faults_spec(num_requests: int, dispatch_s: float, seed: int = 11) -> WorkloadSpec:
    """The workload the sweep (and its regression test) runs."""
    return WorkloadSpec(
        num_requests=num_requests,
        n=256,
        window=32,
        heads=2,
        head_dim=8,
        seed=seed,
        slo_classes=(
            SLOClass(
                "interactive",
                deadline_s=FAULTS_INTERACTIVE_BUDGET * dispatch_s,
                share=0.5,
            ),
            SLOClass("bulk", deadline_s=FAULTS_BULK_BUDGET * dispatch_s, share=0.5),
        ),
    )


def mode_config(
    mode: str,
    workers: int,
    clock: CostModelClock,
    crash_at_s: float,
    down_for_s: float,
    unit_s: float,
    backend: str = "functional",
) -> SimConfig:
    """The (injector, recovery, steal) triple each chaos mode names."""
    if mode not in MODES:  # pragma: no cover - registry guard
        raise KeyError(f"unknown faults mode {mode!r}; known: {MODES}")
    injector = None
    steal = True
    requeue = True
    if mode != "no-fault":
        # Fresh injector per run: its RNG stream is stateful.
        injector = FaultInjector(
            [CrashSpec(worker=1, at_s=crash_at_s, down_for_s=down_for_s)], seed=7
        )
    if mode == "no-retry":
        requeue = False
        steal = False
    elif mode == "retry":
        steal = False
    recovery = RecoveryConfig(
        heartbeat_interval_s=HEARTBEAT_INTERVAL_UNITS * unit_s,
        heartbeat_timeout_s=HEARTBEAT_TIMEOUT_UNITS * unit_s,
        requeue=requeue,
    )
    return SimConfig(
        workers=workers,
        policy=EDFPolicy(drop_expired=True),
        service=clock,
        steal=steal,
        faults=injector,
        recovery=recovery,
        backend=backend,
    )


@register("faults")
def run(fast: bool = False, backend: str = "functional") -> ExperimentResult:
    workers = 2
    # Long enough that the startup cold-compile transient (~0.5 ms per
    # plan family per worker — half the steady-state work of a 600
    # request run!) amortises away and rho 0.8 is the *effective* load;
    # otherwise every mode is secretly overloaded and the crash merely
    # reshuffles an already-collapsing queue.
    num_requests = 2400 if fast else 4800
    clock = CostModelClock()
    probe = WorkloadSpec(n=256, window=32, heads=2, head_dim=8)
    unit_s, dispatch_s = service_scales(probe, clock, backend=backend)
    rate = RHO * workers / unit_s
    horizon_s = num_requests / rate
    crash_at_s = CRASH_AT_FRAC * horizon_s
    down_for_s = DOWN_FOR_UNITS * unit_s

    rows: List[dict] = []
    for mode in MODES:
        spec = faults_spec(num_requests, dispatch_s)
        source = open_loop(spec, PoissonProcess(rate_rps=rate))
        report = simulate(
            source,
            mode_config(
                mode, workers, clock, crash_at_s, down_for_s, unit_s, backend=backend
            ),
        )
        accounted = report.completed + report.rejected + report.shed + report.failed
        rows.append(
            {
                "mode": mode,
                "submitted": report.submitted,
                "completed": report.completed,
                "rejected": report.rejected,
                "shed": report.shed,
                "failed": report.failed,
                "accounted": accounted,
                "goodput_rps": round(report.goodput_rps),
                "met_rate": round(report.deadline_met_rate, 4),
                "retries": report.retries,
                "requeues": report.requeues,
                "steals": report.steals,
                "availability": round(report.availability, 4),
                "p99_ms": round(report.latency_p99_ms, 3),
            }
        )

    baseline = rows[0]["goodput_rps"]
    notes = [
        f"{workers} workers, {num_requests} requests at rho {RHO} "
        f"(amortised unit {unit_s * 1e6:.1f} us); worker 1 crashes at "
        f"{crash_at_s * 1e3:.2f} ms (~{CRASH_AT_FRAC:.0%} of the horizon) and "
        f"rejoins {down_for_s * 1e3:.2f} ms later with a cold plan cache",
        "conservation: submitted == completed + rejected + shed + failed on "
        "every row — a crash may *fail* requests but never silently loses one",
        f"recovery claim: retry+steal goodput >= {RECOVERY_GOODPUT_FLOOR:.0%} "
        "of the no-fault baseline",
    ]
    by_mode = {row["mode"]: row for row in rows}
    notes.append(
        f"goodput: no-fault {baseline} rps; no-retry "
        f"{by_mode['no-retry']['goodput_rps']} "
        f"(failed {by_mode['no-retry']['failed']}); retry "
        f"{by_mode['retry']['goodput_rps']}; retry+steal "
        f"{by_mode['retry+steal']['goodput_rps']} rps "
        f"({by_mode['retry+steal']['goodput_rps'] / baseline:.0%} recovered)"
    )
    return ExperimentResult(
        experiment="faults",
        title="Fault tolerance: crash-at-peak recovery vs retry/requeue/steal mode",
        rows=rows,
        notes=notes,
        config={
            "fast": fast,
            "backend": backend,
            "workers": workers,
            "num_requests": num_requests,
            "rho": RHO,
            "modes": list(MODES),
            "crash_at_frac": CRASH_AT_FRAC,
            "down_for_units": DOWN_FOR_UNITS,
            "seed": 11,
            "fault_seed": 7,
        },
    )
