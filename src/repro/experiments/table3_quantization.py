"""E7 — Table 3: accuracy of the original vs quantised models.

Published: Longformer IMDB 95.34 → 95.20, Hyperpartisan 93.42 → 93.46,
ViL ImageNet-1K 82.87 → 82.80 — i.e. Q8.4 quantisation of the attention
datapath costs at most ~0.15 accuracy points (and sometimes helps).

Offline substitution (DESIGN.md §2): three synthetic tasks exercising the
same attention mechanisms — global aggregation (IMDB-like), local
co-occurrence (Hyperpartisan-like) on Longformer patterns, and 2-D texture
classification (ImageNet-like) on a ViL pattern.  The claim under test is
the *degradation bound*, not the absolute accuracy.
"""

from __future__ import annotations

from ..nn.data import PhraseTask, SentimentTask, ShapesTask
from ..patterns.library import longformer_pattern, vil_pattern
from ..quant.qat import run_quantization_study
from .base import ExperimentResult, register

#: Published Table 3 accuracies (original, quantised).
PAPER_TABLE3 = {
    "IMDB": (95.34, 95.20),
    "Hyperpartisan": (93.42, 93.46),
    "ImageNet-1K": (82.87, 82.80),
}


@register("table3_quantization")
def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E7/table3",
        title="Original vs quantised accuracy (synthetic task substitution)",
    )
    steps = 80 if fast else 260
    qat_steps = 15 if fast else 50
    test_size = 128 if fast else 384

    studies = []

    sentiment = SentimentTask(n=96, seed=11)
    studies.append(
        (
            "IMDB-like (global aggregation)",
            "IMDB",
            run_quantization_study(
                "sentiment",
                longformer_pattern(96, 24, (0,)),
                sentiment.sample,
                vocab=sentiment.vocab,
                num_classes=2,
                dim=32,
                heads=4,
                layers=2,
                train_steps=steps,
                qat_steps=qat_steps,
                test_size=test_size,
                seed=1,
            ),
        )
    )

    phrase = PhraseTask(n=96, seed=13)
    studies.append(
        (
            "Hyperpartisan-like (local co-occurrence)",
            "Hyperpartisan",
            run_quantization_study(
                "phrase",
                longformer_pattern(96, 16, (0,)),
                phrase.sample,
                vocab=phrase.vocab,
                num_classes=2,
                dim=32,
                heads=4,
                layers=2,
                train_steps=steps,
                qat_steps=qat_steps,
                test_size=test_size,
                seed=2,
            ),
        )
    )

    # The 4-class texture task needs a slightly wider model and a longer
    # schedule than the binary text tasks to converge.
    shapes = ShapesTask(grid=10, feat=8, seed=17, noise=0.3)
    studies.append(
        (
            "ImageNet-like (2-D texture)",
            "ImageNet-1K",
            run_quantization_study(
                "shapes",
                vil_pattern(10, 10, 5, (0,)),
                shapes.sample,
                input_dim=shapes.feat,
                num_classes=shapes.num_classes,
                dim=48,
                heads=4,
                layers=2,
                train_steps=steps + 80,
                qat_steps=qat_steps,
                test_size=test_size,
                seed=3,
            ),
        )
    )

    for label, paper_key, study in studies:
        orig_p, quant_p = PAPER_TABLE3[paper_key]
        result.rows.append(
            {
                "task": label,
                "original_%": round(study.original_accuracy * 100, 2),
                "ptq_%": round(study.ptq_accuracy * 100, 2),
                "quantized_%": round(study.qat_accuracy * 100, 2),
                "degradation_pts": round(study.degradation_points, 2),
                "paper_orig": orig_p,
                "paper_quant": quant_p,
                "paper_deg": round(orig_p - quant_p, 2),
            }
        )
    result.notes.append(
        "absolute accuracies are task-specific; the reproduced claim is the "
        "degradation column: quantising the attention datapath to Q8.4 costs "
        "well under one accuracy point after finetuning"
    )
    return result
