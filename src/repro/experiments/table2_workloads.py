"""E3 — Table 2: key parameters of the evaluation attention layers.

The one derived quantity in Table 2 is the sparsity column; regenerating
it from our pattern IR (0.125 / 0.072 / 0.288) validates that the pattern
constructions match the paper's.
"""

from __future__ import annotations

from ..workloads.configs import PAPER_WORKLOADS
from .base import ExperimentResult, register

#: Published sparsity column of Table 2.
PAPER_SPARSITY = {"Longformer": 0.125, "ViL-stage1": 0.072, "ViL-stage2": 0.288}


@register("table2_workloads")
def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E3/table2",
        title="Key parameters of attention layers",
    )
    for name, w in PAPER_WORKLOADS.items():
        pattern = w.pattern()
        seq = f"{w.grid[0]}x{w.grid[1]}" if w.grid else str(w.n)
        win = f"{int(w.window ** 0.5)}x{int(w.window ** 0.5)}" if w.grid else str(w.window)
        result.rows.append(
            {
                "workload": name,
                "seq_len": seq,
                "window": win,
                "hidden": w.hidden,
                "heads": w.heads,
                "global": w.num_global,
                "sparsity": round(pattern.sparsity(), 3),
                "nominal_sparsity": round(w.window / w.n, 3),
                "paper_sparsity": PAPER_SPARSITY[name],
            }
        )
    result.notes.append(
        "sparsity = attended pairs / n^2 with boundary clipping; "
        "nominal_sparsity = window / n ignores clipping and matches the "
        "paper's Table 2 column"
    )
    return result
