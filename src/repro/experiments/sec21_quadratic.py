"""E1 — Section 2.1: quadratic latency growth of dense attention.

The paper motivates SALO by timing one BERT-base attention layer on a
GTX 1080Ti: 9.20 ms at n=2048 growing ~16x to 145.70 ms at n=8192.  We
regenerate the sweep with the calibrated GPU model (anchored to exactly
those two measurements) and additionally time our own numpy dense
attention to show the same quadratic shape on the host CPU.
"""

from __future__ import annotations

import time

import numpy as np

from ..baselines.cpu_gpu_model import GPU_1080TI
from ..baselines.dense_attention import multi_head_dense_attention
from .base import ExperimentResult, register

#: Published anchors (sequence length → ms on GTX 1080Ti).
PAPER_ANCHORS = {2048: 9.20, 8192: 145.70}

SWEEP = (512, 1024, 2048, 4096, 8192)


@register("sec21_quadratic")
def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E1/sec21",
        title="Dense attention latency vs sequence length (BERT-base layer)",
    )
    hidden, heads = 768, 12
    measure_host = not fast
    base_gpu = None
    base_host = None
    for n in SWEEP:
        gpu_ms = GPU_1080TI.dense_attention_latency_s(n, hidden) * 1e3
        row = {
            "n": n,
            "gpu_model_ms": round(gpu_ms, 2),
            "paper_ms": PAPER_ANCHORS.get(n, ""),
        }
        if base_gpu is None:
            base_gpu = gpu_ms
        row["gpu_growth"] = round(gpu_ms / base_gpu, 1)
        if measure_host and n <= 4096:
            rng = np.random.default_rng(0)
            q, k, v = (rng.standard_normal((n, hidden)) for _ in range(3))
            t0 = time.perf_counter()
            multi_head_dense_attention(q, k, v, heads=heads)
            host_ms = (time.perf_counter() - t0) * 1e3
            if base_host is None:
                base_host = host_ms
            row["host_numpy_ms"] = round(host_ms, 1)
            row["host_growth"] = round(host_ms / base_host, 1)
        result.rows.append(row)

    ratio = (
        GPU_1080TI.dense_attention_latency_s(8192, hidden)
        / GPU_1080TI.dense_attention_latency_s(2048, hidden)
    )
    result.notes.append(
        f"modelled 8192/2048 latency ratio = {ratio:.1f}x "
        f"(paper: 145.70/9.20 = {145.70 / 9.20:.1f}x, ideal quadratic = 16x)"
    )
    return result
