"""E2 — Table 1: synthesis report (area / power / configuration).

Regenerates Table 1 from the analytic synthesis model and compares with
the published Synopsys DC @ FreePDK-45 figures (4.56 mm², 532.66 mW,
1 GHz).
"""

from __future__ import annotations

from ..accelerator.synthesis import TABLE1, synthesize
from ..core.config import HardwareConfig
from .base import ExperimentResult, register


@register("table1_synthesis")
def run(fast: bool = False) -> ExperimentResult:
    config = HardwareConfig()
    report = synthesize(config)
    result = ExperimentResult(
        experiment="E2/table1",
        title="Synthesis details (45 nm analytic model vs published)",
    )
    result.rows = [
        {"parameter": "PE array size", "ours": f"{config.pe_rows}x{config.pe_cols}",
         "paper": "32x32"},
        {"parameter": "Global PE column", "ours": config.global_cols, "paper": 1},
        {"parameter": "Global PE row", "ours": config.global_rows, "paper": 1},
        {"parameter": "Weighted Sum Module", "ours": config.weighted_sum_entries, "paper": 33},
        {"parameter": "Query buffer (KB)", "ours": config.query_buffer_bytes // 1024, "paper": 16},
        {"parameter": "Key buffer (KB)", "ours": config.key_buffer_bytes // 1024, "paper": 32},
        {"parameter": "Value buffer (KB)", "ours": config.value_buffer_bytes // 1024, "paper": 32},
        {"parameter": "Output buffer (KB)", "ours": config.output_buffer_bytes // 1024, "paper": 32},
        {"parameter": "Frequency (GHz)", "ours": config.frequency_hz / 1e9, "paper": 1.0},
        {"parameter": "Power (mW)", "ours": round(report.power_mw, 2),
         "paper": TABLE1["power_mw"]},
        {"parameter": "Area (mm2)", "ours": round(report.area_mm2, 2),
         "paper": TABLE1["area_mm2"]},
    ]
    for name, area in report.area_breakdown_mm2.items():
        result.notes.append(f"area[{name}] = {area:.3f} mm2")
    for name, power in report.power_breakdown_w.items():
        result.notes.append(f"power[{name}] = {power * 1e3:.1f} mW")
    return result
