"""E4 — Figure 7a: SALO speedup over CPU and GPU.

Published: 83.57x / 83.12x / 101.31x over CPU (89.33x average) and
7.38x / 20.10x / 25.51x over GPU (17.66x average) for Longformer,
ViL-stage1 and ViL-stage2.
"""

from __future__ import annotations

from ..baselines.cpu_gpu_model import CPU_XEON_E5_2630V3, GPU_1080TI
from ..core.salo import SALO
from ..workloads.configs import PAPER_WORKLOADS
from .base import ExperimentResult, register

PAPER_CPU_SPEEDUP = {"Longformer": 83.57, "ViL-stage1": 83.12, "ViL-stage2": 101.31}
PAPER_GPU_SPEEDUP = {"Longformer": 7.38, "ViL-stage1": 20.10, "ViL-stage2": 25.51}
PAPER_CPU_AVG = 89.33
PAPER_GPU_AVG = 17.66


@register("fig7a_speedup")
def run(fast: bool = False) -> ExperimentResult:
    salo = SALO()
    result = ExperimentResult(
        experiment="E4/fig7a",
        title="SALO speedup over CPU (Xeon E5-2630 v3) and GPU (GTX 1080Ti)",
    )
    cpu_speedups = []
    gpu_speedups = []
    for name, w in PAPER_WORKLOADS.items():
        stats = salo.estimate(w.pattern(), heads=w.heads, head_dim=w.head_dim)
        cpu = CPU_XEON_E5_2630V3.estimate(w)
        gpu = GPU_1080TI.estimate(w)
        s_cpu = cpu.latency_s / stats.latency_s
        s_gpu = gpu.latency_s / stats.latency_s
        cpu_speedups.append(s_cpu)
        gpu_speedups.append(s_gpu)
        result.rows.append(
            {
                "workload": name,
                "salo_ms": round(stats.latency_ms, 3),
                "cpu_ms": round(cpu.latency_ms, 1),
                "gpu_ms": round(gpu.latency_ms, 2),
                "speedup_cpu": round(s_cpu, 2),
                "paper_cpu": PAPER_CPU_SPEEDUP[name],
                "speedup_gpu": round(s_gpu, 2),
                "paper_gpu": PAPER_GPU_SPEEDUP[name],
            }
        )
    result.rows.append(
        {
            "workload": "Average",
            "salo_ms": "",
            "cpu_ms": "",
            "gpu_ms": "",
            "speedup_cpu": round(sum(cpu_speedups) / len(cpu_speedups), 2),
            "paper_cpu": PAPER_CPU_AVG,
            "speedup_gpu": round(sum(gpu_speedups) / len(gpu_speedups), 2),
            "paper_gpu": PAPER_GPU_AVG,
        }
    )
    result.notes.append(
        "CPU/GPU latencies come from models back-derived from the paper's "
        "published speedups at these operating points (EXPERIMENTS.md)"
    )
    return result
