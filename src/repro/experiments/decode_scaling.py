"""Decode scaling sweep: tokens/s vs lane width x worker count.

The decode-phase provisioning question is different from prefill's:
throughput comes from *continuous-batching concurrency* (how many
sequences share each engine's lane axis), while the latency SLOs are
per-token pacing (ITL) and first-token wait (TTFT).  Widening lanes
amortises the per-step batch overhead across more sequences but
stretches every step (service is ``latency x lanes``), so tokens/s
climbs with lane width while ITL degrades — the sweep exposes that
frontier over identical traffic (same seed, same sequences; only the
worker/lane shape changes).

Committed expectations (asserted at the fixed seed in
``tests/experiments/test_decode_scaling.py``): both conservation laws
hold on every row; tokens/s at the widest lane setting beats lanes=1
for the same worker count; adding a worker never lowers tokens/s at
fixed lane width; and cold compiles stay bounded by
``workers x buckets`` (plan-cache reuse across steps, the within-bucket
warm-step property at cluster scale).
"""

from __future__ import annotations

from typing import List

from ..cluster import DecodeClusterSimulator, DecodeSimConfig, DecodeWorkloadSpec
from .base import ExperimentResult, register

#: Every (workers, max_lanes) point the sweep visits.
GRID = ((1, 1), (1, 4), (1, 8), (2, 1), (2, 4), (2, 8))
FAST_GRID = ((1, 1), (1, 4), (2, 4))


def decode_spec(sequences: int, seed: int = 17) -> DecodeWorkloadSpec:
    """The workload the sweep (and its regression test) runs."""
    return DecodeWorkloadSpec(
        sequences=sequences,
        rate_rps=3000.0,
        prompt_min=4,
        prompt_max=40,
        mean_new_tokens=12.0,
        max_new_tokens=48,
        window=8,
        heads=2,
        head_dim=8,
        seed=seed,
    )


@register("decode_scaling")
def run(fast: bool = False) -> ExperimentResult:
    sequences = 24 if fast else 64
    spec = decode_spec(sequences)
    rows: List[dict] = []
    for workers, lanes in FAST_GRID if fast else GRID:
        config = DecodeSimConfig(workers=workers, max_lanes=lanes)
        report = DecodeClusterSimulator(config).run(spec)
        cold = sum(w["cold_compiles"] for w in report.workers)
        rows.append(
            {
                "workers": workers,
                "lanes": lanes,
                "completed": report.completed,
                "shed": report.shed,
                "tokens": report.tokens_completed,
                "tokens_per_s": round(report.tokens_per_s),
                "concurrency": round(report.mean_concurrency, 2),
                "ttft_p99_us": round(report.ttft_p99_s * 1e6, 1),
                "itl_p99_us": round(report.itl_p99_s * 1e6, 1),
                "cold": cold,
                "conserved": report.sequence_conservation and report.token_conservation,
            }
        )

    base = {(r["workers"], r["lanes"]): r for r in rows}
    widest = max(lanes for _, lanes in (FAST_GRID if fast else GRID))
    notes = [
        f"{sequences} sequences, Poisson arrivals at {spec.rate_rps:.0f} seq/s, "
        f"window {spec.window}, output budget geometric(mean "
        f"{spec.mean_new_tokens:.0f}) capped at {spec.max_new_tokens}",
        "service: cost-model clock, latency(bucket) x lanes + batch overhead "
        "per step; first step per (worker, bucket) pays the cold-compile penalty",
        "conservation: sequences submitted == completed + rejected + shed + failed; "
        "admitted tokens target == completed + shed + failed, on every row",
        f"lanes 1 -> {widest} at 1 worker: "
        f"{base[(1, 1)]['tokens_per_s']} -> {base[(1, widest)]['tokens_per_s']} tokens/s "
        f"(concurrency {base[(1, 1)]['concurrency']} -> {base[(1, widest)]['concurrency']})",
    ]
    return ExperimentResult(
        experiment="decode_scaling",
        title="Decode continuous batching: tokens/s vs lanes x workers",
        rows=rows,
        notes=notes,
        config={
            "fast": fast,
            "sequences": sequences,
            "grid": [list(cell) for cell in (FAST_GRID if fast else GRID)],
            "seed": spec.seed,
        },
    )
