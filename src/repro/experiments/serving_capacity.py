"""Serving-capacity sweep: workers x arrival rate x batch policy.

The deployment question behind the cluster simulator: how many SALO
engines, under which batch-close policy, sustain a traffic level while
meeting per-class latency SLOs?  The sweep drives the discrete-event
simulator (service times from the paper's cycle model via
``SALO.estimate`` — fully deterministic, no wall clock) over a grid of
worker counts, offered loads (relative to the cost-model capacity of the
pool) and policies, and reports the goodput / p99 frontier.

Offered load and SLO budgets are expressed *relative to the cost model*:
``unit`` is the mean per-request service time over the workload's
pattern families plus the per-batch dispatch overhead, capacity is
``workers / unit`` at full batches, and the interactive/bulk deadlines
are fixed multiples of ``unit`` — so the sweep stays meaningful if the
hardware config or cost model changes.

The committed expectation (asserted in
``tests/experiments/test_serving_capacity.py``): earliest-deadline-first
beats greedy FIFO on deadline-met rate under congestion, because EDF
spends the scarce batch slots on requests whose budgets are still
winnable.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..cluster import (
    BULK_BUDGET,
    INTERACTIVE_BUDGET,
    CostModelClock,
    PoissonProcess,
    SimConfig,
    SLOClass,
    WorkloadSpec,
    make_policy,
    open_loop,
    service_scales,
    simulate,
)
from .base import ExperimentResult, register

# Deadline budgets (INTERACTIVE_BUDGET / BULK_BUDGET, defined beside
# service_scales in repro.cluster.pool and shared with the CLI
# `simulate` defaults) are multiples of the *dispatch unit*: one
# request's cost-model latency plus a full per-batch overhead — the
# latency floor of an unbatched dispatch.  The interactive class has
# queueing slack of a few tens of dispatches; bulk is ~13x looser.
_POLICY_GRID: Tuple[Tuple[str, dict], ...] = (
    ("greedy-fifo", {}),
    ("max-wait", {"max_wait_s": 2e-4}),
    ("size-latency", {"target_size": 4, "max_wait_s": 2e-4}),
    ("edf", {}),
)


def sweep_spec(num_requests: int, dispatch_s: float, seed: int = 7) -> WorkloadSpec:
    """The workload the sweep (and its regression test) runs."""
    return WorkloadSpec(
        num_requests=num_requests,
        n=256,
        window=32,
        heads=2,
        head_dim=8,
        seed=seed,
        slo_classes=(
            SLOClass(
                "interactive", deadline_s=INTERACTIVE_BUDGET * dispatch_s, share=0.5
            ),
            SLOClass("bulk", deadline_s=BULK_BUDGET * dispatch_s, share=0.5),
        ),
    )


@register("serving_capacity")
def run(fast: bool = False, backend: str = "functional") -> ExperimentResult:
    """``backend`` selects the worker engine backend (CLI ``--backend``);
    the cost-model clock is engine-independent, so only measured-mode
    details and cold-compile accounting can differ between backends."""
    # Flat clock for the same reason as the overload sweep: the capacity
    # frontier and EDF-vs-FIFO claims are scaled to this probe workload,
    # whose per-request latency the calibrated host dispatch overhead
    # would swamp (deadlines balloon and every policy meets them).
    clock = CostModelClock.flat()
    probe = WorkloadSpec(n=256, window=32, heads=2, head_dim=8)
    unit_s, dispatch_s = service_scales(probe, clock, backend=backend)
    num_requests = 240 if fast else 400
    workers_grid = (2,) if fast else (1, 2, 4)
    rho_grid = (0.9,) if fast else (0.6, 0.9, 1.2)

    rows: List[dict] = []
    for workers in workers_grid:
        capacity = workers / unit_s
        for rho in rho_grid:
            rate = rho * capacity
            for name, kwargs in _POLICY_GRID:
                spec = sweep_spec(num_requests, dispatch_s)
                source = open_loop(spec, PoissonProcess(rate_rps=rate))
                report = simulate(
                    source,
                    SimConfig(
                        workers=workers,
                        policy=make_policy(name, **kwargs),
                        service=clock,
                        backend=backend,
                    ),
                )
                interactive = report.class_report("interactive")
                rows.append(
                    {
                        "workers": workers,
                        "rho": rho,
                        "rate_rps": round(rate),
                        "policy": name,
                        "goodput_rps": round(report.goodput_rps),
                        "met_rate": round(report.deadline_met_rate, 4),
                        "iact_met": round(interactive.deadline_met_rate, 4),
                        "iact_p99_ms": round(interactive.latency_p99_ms, 3),
                        "p99_ms": round(report.latency_p99_ms, 3),
                        "batch": round(report.mean_batch_size, 2),
                        "util": round(
                            float(np.mean([w.utilization for w in report.workers])), 3
                        ),
                    }
                )

    notes = [
        f"service-time oracle: SALO.estimate (amortised unit {unit_s * 1e6:.1f} us, "
        f"dispatch unit {dispatch_s * 1e6:.1f} us); simulated time only, no wall clock",
        "rho is offered load relative to the pool's full-batch cost-model capacity",
        f"deadlines: interactive {INTERACTIVE_BUDGET:.0f}x dispatch unit, "
        f"bulk {BULK_BUDGET:.0f}x dispatch unit",
    ]
    # The headline comparison: EDF vs greedy FIFO on deadline-met rate
    # at the most congested grid point.
    last_workers, last_rho = workers_grid[-1], rho_grid[-1]
    met = {
        row["policy"]: row["met_rate"]
        for row in rows
        if row["workers"] == last_workers and row["rho"] == last_rho
    }
    notes.append(
        f"congested point (workers={last_workers}, rho={last_rho}): deadline-met "
        f"edf {met['edf']:.1%} vs greedy-fifo {met['greedy-fifo']:.1%}"
    )
    return ExperimentResult(
        experiment="serving_capacity",
        title="Cluster capacity frontier: workers x load x batch policy",
        rows=rows,
        notes=notes,
        config={
            "fast": fast,
            "backend": backend,
            "num_requests": num_requests,
            "workers_grid": list(workers_grid),
            "rho_grid": list(rho_grid),
            "policies": [name for name, _ in _POLICY_GRID],
            "seed": 7,
        },
    )
