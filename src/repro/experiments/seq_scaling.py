"""E8 (extension) — sequence-length scaling: linear SALO vs quadratic GPU.

The paper's introduction motivates SALO with sequence lengths up to 16384
tokens (Longformer's maximum).  This experiment sweeps n at a fixed
512-token window and compares three latency curves:

* dense attention on GPU (quadratic — the §2.1 regime),
* Longformer sliding-window attention on GPU (linear but
  GEMM-kernel-unfriendly),
* SALO (linear, near-full PE occupancy).

The crossover structure is the paper's whole argument: sparse attention
makes the workload linear, and SALO makes the linear workload fast.
"""

from __future__ import annotations

from ..baselines.cpu_gpu_model import GPU_1080TI
from ..core.salo import SALO
from ..patterns.library import longformer_pattern
from .base import ExperimentResult, register

SWEEP = (1024, 2048, 4096, 8192, 16384)


@register("seq_scaling")
def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E8/scaling",
        title="Latency vs sequence length (window 512, hidden 768, 12 heads)",
    )
    salo = SALO()
    window, hidden, heads, head_dim = 512, 768, 12, 64
    sweep = SWEEP if not fast else SWEEP[:3]
    base_salo = None
    for n in sweep:
        stats = salo.estimate(
            longformer_pattern(n, window, (0,)), heads=heads, head_dim=head_dim
        )
        dense_gpu = GPU_1080TI.dense_attention_latency_s(n, hidden)
        sparse_gpu = GPU_1080TI.longformer_latency_s(n, window, hidden)
        if base_salo is None:
            base_salo = stats.latency_s
        result.rows.append(
            {
                "n": n,
                "salo_ms": round(stats.latency_ms, 3),
                "salo_growth": round(stats.latency_s / base_salo, 1),
                "gpu_sparse_ms": round(sparse_gpu * 1e3, 2),
                "gpu_dense_ms": round(dense_gpu * 1e3, 2),
                "speedup_vs_sparse": round(sparse_gpu / stats.latency_s, 2),
                "speedup_vs_dense": round(dense_gpu / stats.latency_s, 2),
                "utilization": round(stats.utilization, 3),
            }
        )
    result.notes.append(
        "SALO and the sparse GPU baseline grow linearly in n (fixed window), "
        "dense attention quadratically; SALO's speedup over dense attention "
        "therefore grows linearly with sequence length"
    )
    return result
