"""A1–A5 — design-space ablations called out in DESIGN.md.

These go beyond the paper's tables to quantify the design decisions the
paper argues for qualitatively: PE-array sizing, the weighted-sum
(split-window) mechanism, the diagonal-reuse dataflow, the PWL-exp LUT
size, and the global-token bound of Section 5.2.
"""

from __future__ import annotations

import numpy as np

from ..accelerator.buffers import plan_traffic
from ..accelerator.exp_unit import PWLExpUnit, max_pwl_error
from ..accelerator.fixed_point import FixedPointFormat
from ..accelerator.synthesis import synthesize
from ..core.config import HardwareConfig, NumericsConfig
from ..core.salo import SALO
from ..patterns.library import longformer_pattern, vil_pattern
from ..quant.error import attention_quant_error
from ..scheduler.scheduler import DataScheduler, SchedulerError
from ..workloads.configs import LONGFORMER_BASE_4096, VIL_STAGE1
from ..workloads.synthetic import random_qkv
from .base import ExperimentResult, register


@register("ablation_pe_array")
def run_pe_array(fast: bool = False) -> ExperimentResult:
    """A1: PE array size sweep on the Longformer workload."""
    result = ExperimentResult(
        experiment="A1",
        title="PE array size vs latency/area/power (Longformer-4096)",
    )
    w = LONGFORMER_BASE_4096
    sizes = (8, 16, 32, 64) if not fast else (16, 32)
    for size in sizes:
        config = HardwareConfig(pe_rows=size, pe_cols=size)
        salo = SALO(config)
        stats = salo.estimate(w.pattern(), heads=w.heads, head_dim=w.head_dim)
        report = synthesize(config)
        result.rows.append(
            {
                "pe_array": f"{size}x{size}",
                "latency_ms": round(stats.latency_ms, 3),
                "utilization": round(stats.utilization, 3),
                "area_mm2": round(report.area_mm2, 2),
                "power_mw": round(report.power_mw, 1),
                "edp_ms_mj": round(stats.latency_ms * stats.energy_j * 1e3, 4),
            }
        )
    result.notes.append(
        "larger arrays trade area/power for latency; 32x32 (the paper's "
        "choice) balances EDP on the Longformer operating point"
    )
    return result


@register("ablation_splitting")
def run_splitting(fast: bool = False) -> ExperimentResult:
    """A2: window splitting + weighted-sum renormalisation exactness/cost."""
    result = ExperimentResult(
        experiment="A2",
        title="Window splitting: exactness and pass overhead vs PE columns",
    )
    n, window, hidden = 64, 32, 32
    pattern = longformer_pattern(n, window, (0,))
    q, k, v = random_qkv(n, hidden, seed=3)
    from ..baselines.sparse_reference import masked_attention

    ref = masked_attention(q, k, v, pattern)
    cols_list = (4, 8, 16, 32) if not fast else (8, 32)
    for cols in cols_list:
        config = HardwareConfig(pe_rows=8, pe_cols=cols).exact()
        salo = SALO(config)
        res = salo.attend(pattern, q, k, v, heads=1)
        err = float(np.max(np.abs(res.output - ref)))
        result.rows.append(
            {
                "pe_cols": cols,
                "window_splits": -(-window // cols),
                "passes": res.stats.plan.num_passes,
                "merges": res.functional.merges,
                "max_err_vs_oracle": err,
                "latency_cycles": res.stats.cycles,
            }
        )
    result.notes.append(
        "Eq. 2 renormalisation keeps the split computation exact to float "
        "precision regardless of how many parts the window is cut into"
    )
    return result


@register("ablation_dataflow")
def run_dataflow(fast: bool = False) -> ExperimentResult:
    """A3: diagonal-reuse dataflow vs naive reload (memory traffic)."""
    result = ExperimentResult(
        experiment="A3",
        title="K/V DRAM traffic: diagonal-reuse dataflow vs naive mapping",
    )
    workloads = [LONGFORMER_BASE_4096, VIL_STAGE1]
    salo = SALO()
    for w in workloads:
        plan = salo.schedule(w.pattern(), heads=w.heads, head_dim=w.head_dim)
        traffic = plan_traffic(plan)
        kv = traffic.dram_bytes["k"] + traffic.dram_bytes["v"]
        result.rows.append(
            {
                "workload": w.name,
                "kv_dram_mib": round(kv / 2**20, 2),
                "naive_kv_mib": round(traffic.naive_kv_dram_bytes / 2**20, 2),
                "reuse_factor": round(traffic.kv_reuse_factor, 1),
                "total_dram_mib": round(traffic.dram_total / 2**20, 2),
            }
        )
    result.notes.append(
        "the diagonal connections let rows+cols-1 key vectors serve "
        "rows*cols PE cells, the data-reuse argument of Section 4.1"
    )
    return result


@register("ablation_exp_lut")
def run_exp_lut(fast: bool = False) -> ExperimentResult:
    """A4: PWL-exp LUT segments vs approximation and end-to-end error."""
    result = ExperimentResult(
        experiment="A4",
        title="PWL exponential: LUT segments vs error",
    )
    n, hidden = 48, 32
    pattern = longformer_pattern(n, 12, (0,))
    q, k, v = random_qkv(n, hidden, seed=7)
    segments_list = (4, 8, 16, 32, 64) if not fast else (8, 32)
    for segments in segments_list:
        numerics = NumericsConfig(exp_lut_segments=segments)
        unit = PWLExpUnit.from_numerics(numerics)
        report = attention_quant_error(
            pattern, q, k, v, heads=1, numerics=numerics
        )
        result.rows.append(
            {
                "segments": segments,
                "lut_bits": unit.lut_size_bits(),
                "max_exp_err": round(max_pwl_error(unit), 4),
                "attention_sqnr_db": round(report.sqnr_db, 1),
                "attention_max_err": round(report.max_abs_error, 4),
            }
        )
    result.notes.append(
        "32 chords over the clamped score range keep the end-to-end "
        "attention SQNR well above the ~20 dB accuracy threshold"
    )
    return result


@register("ablation_global_tokens")
def run_global_tokens(fast: bool = False) -> ExperimentResult:
    """A5: the Section 5.2 bound on global tokens per PE row/column."""
    result = ExperimentResult(
        experiment="A5",
        title="Global token capacity: bound min(ceil(n/#row), ceil(w/#col))",
    )
    config = HardwareConfig()
    scheduler = DataScheduler(config)
    n, window = 1024, 128
    bound = config.max_global_tokens(n, window)
    counts = sorted({1, 2, bound // 2 or 1, bound, bound + 1, bound * 2})
    for g in counts:
        tokens = tuple(range(min(g, n)))
        pattern = longformer_pattern(n, window, tokens)
        try:
            plan = scheduler.schedule(pattern, heads=1, head_dim=64)
            ok, passes = True, len(plan.passes)
        except SchedulerError:
            ok, passes = False, 0
        result.rows.append(
            {
                "global_tokens": g,
                "bound": bound,
                "schedulable": ok,
                "passes": passes,
            }
        )
    result.notes.append(
        f"for n={n}, w={window} on a 32x32 array the single global PE "
        f"row/column supports up to {bound} global tokens "
        "(each input streams through the array that many times)"
    )
    return result


@register("ablation_pipelining")
def run_pipelining(fast: bool = False) -> ExperimentResult:
    """A7 (extension): double-buffered accumulator inter-pass pipelining."""
    from ..accelerator.timing import plan_timing
    from ..workloads.configs import PAPER_WORKLOADS

    result = ExperimentResult(
        experiment="A7",
        title="Inter-pass pipelining (double-buffered Reg_acc) — extension",
    )
    salo = SALO()
    for name, w in PAPER_WORKLOADS.items():
        plan = salo.schedule(w.pattern(), heads=w.heads, head_dim=w.head_dim)
        seq = plan_timing(plan, pipelined=False)
        pipe = plan_timing(plan, pipelined=True)
        result.rows.append(
            {
                "workload": name,
                "sequential_ms": round(seq.seconds * 1e3, 3),
                "pipelined_ms": round(pipe.seconds * 1e3, 3),
                "speedup": round(seq.cycles / pipe.cycles, 2),
                "macs_per_cycle": round(pipe.total_macs / pipe.cycles, 1),
            }
        )
    result.notes.append(
        "one extra accumulator register per PE lets stage 1 of the next "
        "pass overlap stages 2-5 of the current pass; the published design "
        "(and every other experiment here) uses the sequential model"
    )
    return result


@register("design_space")
def run_design_space(fast: bool = False) -> ExperimentResult:
    """DSE (extension): the design space around the Table 1 operating point."""
    from ..explore.design_space import best_design, pareto_front, sweep_designs
    from ..workloads.configs import LONGFORMER_BASE_4096, longformer_workload

    result = ExperimentResult(
        experiment="DSE",
        title="Design-space sweep around Table 1 (Longformer workload)",
    )
    w = LONGFORMER_BASE_4096 if not fast else longformer_workload(1024, window=128)
    sizes = (16, 32, 64) if not fast else (16, 32)
    points = sweep_designs(w, pe_rows_options=sizes, pe_cols_options=sizes)
    front = pareto_front(points, objectives=("latency_s", "area_mm2"))
    front_geoms = {p.pe_geometry for p in front}
    best = best_design(points, metric="edp")
    for p in sorted(points, key=lambda p: p.latency_s):
        result.rows.append(
            {
                "pe_array": p.pe_geometry,
                "latency_ms": round(p.latency_s * 1e3, 3),
                "area_mm2": round(p.area_mm2, 2),
                "power_mw": round(p.power_w * 1e3, 1),
                "edp_uJs": round(p.edp * 1e9, 3),
                "utilization": round(p.utilization, 3),
                "pareto": p.pe_geometry in front_geoms,
                "best_edp": p.pe_geometry == best.pe_geometry,
            }
        )
    result.notes.append(
        f"EDP-optimal geometry on this workload: {best.pe_geometry} "
        "(the paper's 32x32 sits on the latency/area Pareto front)"
    )
    return result


@register("ablation_band_packing")
def run_band_packing(fast: bool = False) -> ExperimentResult:
    """A6: band packing on multi-band (ViL) patterns."""
    result = ExperimentResult(
        experiment="A6",
        title="Band packing: PE occupancy on ViL's 15-band window",
    )
    w = VIL_STAGE1
    for pack in (False, True):
        config = HardwareConfig(pack_bands=pack)
        salo = SALO(config)
        stats = salo.estimate(w.pattern(), heads=w.heads, head_dim=w.head_dim)
        result.rows.append(
            {
                "pack_bands": pack,
                "passes": stats.plan.num_passes,
                "utilization": round(stats.utilization, 3),
                "latency_ms": round(stats.latency_ms, 3),
            }
        )
    result.notes.append(
        "packing multiple 15-wide bands per pass lifts occupancy from ~44% "
        "to ~87%, the level the paper reports (>75%) for hybrid patterns"
    )
    return result
