"""E6 — Section 6.3: comparison with Sanger.

The paper grants Sanger the same PE count (64 x 16 = 1024), frequency and
sparsity, and reports SALO 1.33x faster thanks to (i) no quadratic
mask-prediction pass and (ii) higher PE utilisation (>75 % vs 55–75 %).
We regenerate both the per-workload comparison and a sparsity sweep at
Longformer scale.
"""

from __future__ import annotations

import numpy as np

from ..baselines.sanger import SangerModel
from ..core.salo import SALO
from ..patterns.library import longformer_pattern
from ..workloads.configs import PAPER_WORKLOADS, longformer_workload
from .base import ExperimentResult, register

PAPER_SPEEDUP_OVER_SANGER = 1.33
SPARSITY_GRID = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


@register("sec63_sanger")
def run(fast: bool = False) -> ExperimentResult:
    salo = SALO()
    sanger = SangerModel()
    result = ExperimentResult(
        experiment="E6/sec63",
        title="SALO vs Sanger (same PE count, frequency, sparsity)",
    )

    for name, w in PAPER_WORKLOADS.items():
        stats = salo.estimate(w.pattern(), heads=w.heads, head_dim=w.head_dim)
        se = sanger.estimate_workload(w)
        result.rows.append(
            {
                "workload": name,
                "sparsity": round(w.pattern().sparsity(), 3),
                "salo_ms": round(stats.latency_ms, 3),
                "sanger_ms": round(se.latency_s * 1e3, 3),
                "salo_util": round(stats.utilization, 3),
                "sanger_util": round(se.utilization, 3),
                "salo_speedup": round(se.latency_s / stats.latency_s, 2),
            }
        )

    # Sparsity sweep at Longformer scale (n=4096): window sized to hit the
    # target density.
    n, hidden, heads = 4096, 768, 12
    sweep = SPARSITY_GRID if not fast else SPARSITY_GRID[::2]
    ratios = []
    for s in sweep:
        window = max(32, int(round(s * n / 32)) * 32)
        w = longformer_workload(n, window=window, hidden=hidden, heads=heads)
        pattern = w.pattern()
        stats = salo.estimate(pattern, heads=heads, head_dim=w.head_dim)
        se = sanger.estimate_workload(w)
        ratio = se.latency_s / stats.latency_s
        ratios.append(ratio)
        result.rows.append(
            {
                "workload": f"sweep(n=4096, s={s:.2f})",
                "sparsity": round(pattern.sparsity(), 3),
                "salo_ms": round(stats.latency_ms, 3),
                "sanger_ms": round(se.latency_s * 1e3, 3),
                "salo_util": round(stats.utilization, 3),
                "sanger_util": round(se.utilization, 3),
                "salo_speedup": round(ratio, 2),
            }
        )
    mean_ratio = float(np.mean(ratios))
    result.notes.append(
        f"mean SALO speedup over the 0.05-0.30 sparsity range: {mean_ratio:.2f}x "
        f"(paper: {PAPER_SPEEDUP_OVER_SANGER}x)"
    )
    result.notes.append(
        "Sanger's quadratic prediction pass dominates at long n / low sparsity; "
        "at short sequences (ViL-stage2) the gap closes, matching the paper's "
        "observation that Sanger is limited specifically for long inputs"
    )
    return result
