"""Experiment drivers: one module per paper table/figure + ablations.

Importing this package registers every experiment; use
:func:`repro.experiments.base.all_experiments` or the CLI
(``python -m repro.cli``) to run them.
"""

from . import (  # noqa: F401  (imports register the experiments)
    ablations,
    advisor,
    decode_scaling,
    faults,
    fig7_energy,
    fig7_speedup,
    overload,
    sec21_quadratic,
    sec63_sanger,
    seq_scaling,
    serving_capacity,
    table1_synthesis,
    table2_workloads,
    table3_quantization,
    transport_multicore,
)
from .base import ExperimentResult, all_experiments, format_table, get_experiment

__all__ = ["ExperimentResult", "all_experiments", "get_experiment", "format_table"]
