"""E5 — Figure 7b: SALO energy saving over CPU and GPU.

Published: 196.90x / 187.53x / 167.15x over CPU (183.86x average) and
336.05x / 281.29x / 198.78x over GPU (272.04x average).
"""

from __future__ import annotations

from ..baselines.cpu_gpu_model import CPU_XEON_E5_2630V3, GPU_1080TI
from ..core.salo import SALO
from ..workloads.configs import PAPER_WORKLOADS
from .base import ExperimentResult, register

PAPER_CPU_SAVING = {"Longformer": 196.90, "ViL-stage1": 187.53, "ViL-stage2": 167.15}
PAPER_GPU_SAVING = {"Longformer": 336.05, "ViL-stage1": 281.29, "ViL-stage2": 198.78}
PAPER_CPU_AVG = 183.86
PAPER_GPU_AVG = 272.04


@register("fig7b_energy")
def run(fast: bool = False) -> ExperimentResult:
    salo = SALO()
    result = ExperimentResult(
        experiment="E5/fig7b",
        title="SALO energy saving over CPU and GPU",
    )
    cpu_savings = []
    gpu_savings = []
    for name, w in PAPER_WORKLOADS.items():
        stats = salo.estimate(w.pattern(), heads=w.heads, head_dim=w.head_dim)
        cpu = CPU_XEON_E5_2630V3.estimate(w)
        gpu = GPU_1080TI.estimate(w)
        e_cpu = cpu.energy_j / stats.energy_j
        e_gpu = gpu.energy_j / stats.energy_j
        cpu_savings.append(e_cpu)
        gpu_savings.append(e_gpu)
        result.rows.append(
            {
                "workload": name,
                "salo_mj": round(stats.energy_j * 1e3, 3),
                "cpu_mj": round(cpu.energy_j * 1e3, 1),
                "gpu_mj": round(gpu.energy_j * 1e3, 1),
                "saving_cpu": round(e_cpu, 1),
                "paper_cpu": PAPER_CPU_SAVING[name],
                "saving_gpu": round(e_gpu, 1),
                "paper_gpu": PAPER_GPU_SAVING[name],
            }
        )
    result.rows.append(
        {
            "workload": "Average",
            "salo_mj": "",
            "cpu_mj": "",
            "gpu_mj": "",
            "saving_cpu": round(sum(cpu_savings) / len(cpu_savings), 1),
            "paper_cpu": PAPER_CPU_AVG,
            "saving_gpu": round(sum(gpu_savings) / len(gpu_savings), 1),
            "paper_gpu": PAPER_GPU_AVG,
        }
    )
    result.notes.append(
        "SALO energy includes DRAM traffic and leakage; baseline powers are "
        "active-power values back-derived from the paper's energy ratios"
    )
    return result
