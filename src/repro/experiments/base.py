"""Experiment infrastructure: results, tables, registry.

Every paper artefact (table/figure/section claim) has one experiment
module exposing ``run(fast: bool = False) -> ExperimentResult``.  Results
are row-oriented so they can be printed as aligned text tables (the shape
the paper reports) and asserted on by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "register", "get_experiment", "all_experiments"]


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment: str
    title: str
    rows: List[dict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def table(self) -> str:
        return format_table(self.rows)

    def render(self) -> str:
        head = f"== {self.experiment}: {self.title} =="
        parts = [head, self.table()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def column(self, key: str) -> List:
        return [row[key] for row in self.rows]

    def row_for(self, key: str, value) -> dict:
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r}")


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict]) -> str:
    """Align dict rows into a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    lines = [header, sep]
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str) -> Callable:
    """Decorator registering an experiment ``run`` function under ``name``."""

    def deco(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        _REGISTRY[name] = fn
        return fn

    return deco


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    if name not in _REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def all_experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    return dict(_REGISTRY)
