"""Experiment infrastructure: results, tables, registry, run identity.

Every paper artefact (table/figure/section claim) has one experiment
module exposing ``run(fast: bool = False) -> ExperimentResult``.  Results
are row-oriented so they can be printed as aligned text tables (the shape
the paper reports) and asserted on by tests and benchmarks.

Run identity: :func:`stable_run_id` hashes the *configuration* of a run
(experiment name + every code-relevant knob, seed included) into a short
content id, and :func:`manifest_hash` reduces a table of artefact hashes
to one pack-level digest.  One scheme is shared by the legacy sweeps
(an ``ExperimentResult`` built with ``config=...`` stamps its id into
the rendered header) and the provisioning advisor's candidate matrix
(``repro.advisor``), so a cached advisor run and a committed sweep row
that executed the same configuration carry the same identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "ExperimentResult",
    "format_table",
    "register",
    "get_experiment",
    "all_experiments",
    "stable_run_id",
    "manifest_hash",
]


def _canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift, no NaN.

    ``allow_nan=False`` because NaN breaks round-tripping (json emits a
    non-standard literal) and a NaN knob in a run config is a bug worth
    surfacing at hash time, not a value to silently identify runs by.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def stable_run_id(kind: str, config: Mapping) -> str:
    """Content-hashed identity of one run: ``kind`` + config -> short id.

    The id is the first 12 hex digits of the SHA-256 of the canonical
    JSON encoding of ``{"kind": kind, "config": config}``: stable across
    processes and sessions (no timestamps, no object identity), order-
    insensitive in the config mapping, and sensitive to every knob that
    changes what the run computes.  Callers must put *all* code-relevant
    knobs — seeds included — into ``config``; two runs with equal ids
    are claims of identical outputs, which is what makes the advisor's
    run matrix resumable and cacheable.
    """
    digest = hashlib.sha256(
        _canonical_json({"kind": kind, "config": dict(config)}).encode()
    ).hexdigest()
    return f"{kind}-{digest[:12]}"


def manifest_hash(hashes: Mapping[str, str]) -> str:
    """One digest over a table of per-artefact hashes (a decision pack).

    The manifest lists each exported file's SHA-256; hashing the sorted
    table yields a single id that changes iff any artefact changed —
    what a regression test pins instead of N separate file hashes.
    """
    digest = hashlib.sha256(_canonical_json(dict(hashes)).encode()).hexdigest()
    return digest[:16]


@dataclass
class ExperimentResult:
    """Structured output of one experiment.

    ``config`` (optional) is the mapping of code-relevant knobs the run
    was invoked with; providing it gives the result a stable
    :attr:`run_id` stamped into :meth:`render`'s header — the same
    identity scheme the provisioning advisor keys its run cache on.
    """

    experiment: str
    title: str
    rows: List[dict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    config: Optional[dict] = None

    @property
    def run_id(self) -> Optional[str]:
        """Stable content id of this run's configuration (None: no config)."""
        if self.config is None:
            return None
        return stable_run_id(self.experiment, self.config)

    def table(self) -> str:
        return format_table(self.rows)

    def render(self) -> str:
        head = f"== {self.experiment}: {self.title} =="
        if self.config is not None:
            head += f"  [{self.run_id}]"
        parts = [head, self.table()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def column(self, key: str) -> List:
        return [row[key] for row in self.rows]

    def row_for(self, key: str, value) -> dict:
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r}")


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict]) -> str:
    """Align dict rows into a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    lines = [header, sep]
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str) -> Callable:
    """Decorator registering an experiment ``run`` function under ``name``."""

    def deco(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        _REGISTRY[name] = fn
        return fn

    return deco


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    if name not in _REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def all_experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    return dict(_REGISTRY)
