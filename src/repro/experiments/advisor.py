"""Advisor search: the provisioning decision as a pinned experiment.

Runs the full advisor pipeline — config search, feasibility scan,
ranking, winner ablation — on the committed example traffic
(``examples/traffic_interactive_bulk.json``: a 50/50 interactive/bulk
mix offered at rho 1.2, i.e. 20% past one reference worker's full-batch
capacity) and tabulates the ranked candidates.

Committed expectations (asserted at the fixed seed in
``tests/experiments/test_advisor.py``): the winner is feasible, runs the
fewest workers of any feasible candidate, and carries positive headroom;
every 1- and 2-worker candidate is infeasible with ``slo:interactive``
binding (the tight class is what breaks first — exactly the overload
sweep's regime); and the winner's ablation matrix flags work stealing
as *harmful*: under a uniformly-overloaded open-loop mix there is no
load imbalance for stealing to fix, so steals only migrate requests off
their plan-affine workers and the cold compiles they trigger cost real
goodput.  The advisor finding that — rather than a narrative asserting
stealing always helps — is the point of the ablation matrix.

Deterministic: cost-model clock (flat), seeded arrivals, content-hashed
run ids.  No wall-clock input reaches any number in the table.
"""

from __future__ import annotations

from typing import List

from .base import ExperimentResult, register

__all__ = ["run", "example_traffic", "example_space"]


def example_traffic(fast: bool = False):
    """The committed example: mirrors examples/traffic_interactive_bulk.json."""
    # Imported lazily: repro.advisor itself depends on experiments.base
    # (the shared run-id scheme), so a module-level import here would
    # close an import cycle through the experiments package __init__.
    from ..advisor import TrafficSpec

    return TrafficSpec(num_requests=96 if fast else 160, rho=1.2, seed=11)


def example_space(fast: bool = False):
    from ..advisor import SearchSpace

    if fast:
        return SearchSpace(workers=(2, 4), policies=("greedy-fifo", "edf"))
    return SearchSpace()


@register("advisor_search")
def run(fast: bool = False) -> ExperimentResult:
    from ..advisor import advise

    traffic = example_traffic(fast)
    space = example_space(fast)
    advice = advise(traffic, space, ablate_top=1)

    rows: List[dict] = []
    for i, r in enumerate(advice.ranked):
        rows.append(
            {
                "rank": i + 1,
                "workers": r.candidate.workers,
                "policy": r.candidate.policy,
                "admission": r.candidate.admission,
                "feasible": r.feasible,
                "headroom": r.headroom if r.headroom is not None else 0.0,
                "binding": r.binding.name,
                "margin": round(r.binding.margin, 4),
                "goodput_rps": round(r.goodput_rps),
                "run_id": r.run_id,
            }
        )

    winner = advice.winner
    matrix = advice.ablation_of(winner)
    notes = [
        f"traffic {traffic.traffic_id}: {traffic.num_requests} requests, "
        f"{traffic.arrival} arrivals at rho {traffic.rho:g}, "
        f"{len(traffic.slo)} SLO classes; advice {advice.advice_id}",
        f"winner {winner.candidate.label} ({winner.run_id}): "
        f"headroom x{winner.headroom:g}, binding {winner.binding.name}",
        "ablation (goodput importance at nominal load): "
        + "; ".join(
            f"{s.component} {s.importance:+.3f}" + (" HARMFUL" if s.harmful else "")
            for s in matrix
        ),
        "scale grid " + ", ".join(f"x{s:g}" for s in advice.scale_grid)
        + "; margins: slo:<class> = met-rate - floor, loss = budget - lost/submitted",
    ]
    return ExperimentResult(
        experiment="advisor_search",
        title="Provisioning advisor: ranked configs, margins and ablation",
        rows=rows,
        notes=notes,
        config={
            "fast": fast,
            "traffic": traffic.to_dict(),
            "space": space.to_dict(),
            "scale_grid": list(advice.scale_grid),
        },
    )
