"""Command-line interface: run the paper's experiments.

Usage::

    salo-repro list                      # enumerate experiments
    salo-repro engines list              # enumerate registered backends
    salo-repro run fig7a_speedup         # one experiment
    salo-repro run table3_quantization --fast
    salo-repro all [--fast]              # everything, in DESIGN.md order
    salo-repro serve --requests 64       # replay a synthetic serving trace
    salo-repro simulate --workers 4      # discrete-event cluster simulation
    salo-repro decode --max-lanes 8      # continuous-batching decode simulation
    salo-repro advise --traffic spec.json --out pack/   # provisioning advisor

``run``, ``serve`` and ``simulate`` accept ``--backend NAME`` to select
any registered execution backend (see ``engines list``); serving paths
require an executing backend (``sanger`` is estimate-only).
"""

from __future__ import annotations

import argparse
import inspect
import math
import sys
import time
from typing import List, Optional

from .experiments import all_experiments, get_experiment

_ORDER = [
    "sec21_quadratic",
    "table1_synthesis",
    "table2_workloads",
    "fig7a_speedup",
    "fig7b_energy",
    "sec63_sanger",
    "table3_quantization",
    "ablation_pe_array",
    "ablation_splitting",
    "ablation_dataflow",
    "ablation_exp_lut",
    "ablation_global_tokens",
    "ablation_band_packing",
    "ablation_pipelining",
    "design_space",
    "seq_scaling",
    "serving_capacity",
    "overload",
    "decode_scaling",
    "transport_multicore",
    "advisor_search",
]


def _ordered_names() -> List[str]:
    known = all_experiments()
    ordered = [n for n in _ORDER if n in known]
    ordered.extend(sorted(set(known) - set(ordered)))
    return ordered


def _validate_backend(
    name: str, require_executing: bool = False, require_cost_model: bool = False
) -> int:
    """Exit-code-style backend validation: 0 ok, 2 with message otherwise.

    ``require_executing`` gates serving paths (the backend must attend);
    ``require_cost_model`` gates cost-model-clocked paths (the default
    simulate/experiment clocks call ``estimate`` on every dispatch, so a
    backend without one must be refused up front, not crash mid-run).
    """
    from .api import CapabilityError, backend_spec, engine_factory, list_backends

    if name not in list_backends():
        print(
            f"unknown backend {name!r}; registered: {', '.join(list_backends())} "
            "(see 'salo-repro engines list')",
            file=sys.stderr,
        )
        return 2
    if require_executing:
        try:
            engine_factory(name)
        except CapabilityError as exc:
            print(exc, file=sys.stderr)
            return 2
    if require_cost_model and not backend_spec(name).capabilities.has_cost_model:
        print(
            f"backend {name!r} has no cost model (has_cost_model=False); the "
            "deterministic cost-model clock cannot serve it — use --measured "
            "or a backend with a cost model",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_engines(args) -> int:
    """``engines list``: tabulate the registered backend specs."""
    from .api import backend_spec, list_backends

    flags = (
        ("batch", "supports_batch"),
        ("lens", "supports_valid_lens"),
        ("exact", "bit_exact"),
        ("cost", "has_cost_model"),
        ("exec", "can_execute"),
        ("struct", "needs_structure"),
    )
    names = list_backends()
    width = max(len(n) for n in names)
    header = f"{'backend':{width}s}  " + "  ".join(f"{label:6s}" for label, _ in flags) + "  summary"
    print(header)
    print("-" * len(header))
    for name in names:
        spec = backend_spec(name)
        cells = "  ".join(
            f"{'yes' if getattr(spec.capabilities, attr) else '-':6s}" for _, attr in flags
        )
        print(f"{name:{width}s}  {cells}  {spec.summary}")
    return 0


def _cmd_advise(args) -> int:
    """Run the provisioning advisor on a declarative traffic spec."""
    import json as _json

    from .advisor import RunCache, SearchSpace, TrafficSpec, advise, export_pack

    if args.traffic is not None:
        try:
            traffic = TrafficSpec.load(args.traffic)
        except (OSError, ValueError, TypeError, KeyError) as exc:
            print(f"bad traffic spec {args.traffic!r}: {exc}", file=sys.stderr)
            return 2
    else:
        traffic = TrafficSpec()
    space = SearchSpace(
        workers=tuple(args.workers),
        policies=tuple(args.policy),
        admissions=tuple(args.admission),
        backends=(args.backend,),
        batch_caps=tuple(args.batch_size),
    )
    rc = _validate_backend(args.backend, require_executing=True, require_cost_model=True)
    if rc:
        return rc
    cache = RunCache(args.cache) if args.cache else RunCache()
    t0 = time.perf_counter()
    advice = advise(traffic, space, cache=cache, ablate_top=args.ablate_top)
    elapsed = time.perf_counter() - t0
    manifest = None
    if args.out:
        manifest = export_pack(advice, args.out)
    if args.json:
        payload = advice.to_dict()
        if manifest is not None:
            payload["pack"] = manifest
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(advice.render(top=args.top))
    if manifest is not None:
        print(
            f"\ndecision pack -> {args.out} "
            f"(manifest {manifest['manifest_hash']})"
        )
    print(
        f"\n[advise finished in {elapsed:.1f}s; "
        f"{cache.misses} simulations, {cache.hits} cache hits]"
    )
    return 0


def _cmd_simulate(args) -> int:
    """Build a workload + policy from CLI args and run the simulator."""
    import numpy as np

    from .cluster import (
        BULK_BUDGET,
        INTERACTIVE_BUDGET,
        ClosedLoopSource,
        CostModelClock,
        CrashSpec,
        FaultInjector,
        MeasuredClock,
        OnOffProcess,
        PoissonProcess,
        RecoveryConfig,
        SimConfig,
        SLOClass,
        StragglerSpec,
        TransientSpec,
        WorkloadSpec,
        make_admission,
        make_policy,
        open_loop,
        service_scales,
        simulate,
    )
    from .core.salo import SALO
    from .serving.trace import pattern_families

    if args.batch_size < 1:
        print(f"--batch-size must be >= 1, got {args.batch_size}", file=sys.stderr)
        return 2
    rc = _validate_backend(
        args.backend,
        require_executing=True,
        # The default clock charges SALO.estimate per dispatch; only a
        # measured run can serve a backend without a cost model.
        require_cost_model=not args.measured,
    )
    if rc:
        return rc
    if args.rate is not None and args.rho is not None:
        print("--rate and --rho are mutually exclusive", file=sys.stderr)
        return 2
    # `not (x > 0)` instead of `x <= 0` throughout: NaN compares False
    # both ways, and a NaN knob must exit 2, not hang or crash later.
    if args.rho is not None and not (args.rho > 0):
        print(f"--rho must be positive, got {args.rho}", file=sys.stderr)
        return 2
    if args.rate is not None and not (args.rate > 0):
        print(f"--rate must be positive, got {args.rate}", file=sys.stderr)
        return 2
    # Cheap flag validation first: a typo'd --slo or --class-weights
    # must not wait for the service-time probe below.
    if args.length_weighted and args.policy != "weighted-fair":
        print("--length-weighted only applies to --policy weighted-fair", file=sys.stderr)
        return 2
    class_weights = {}
    if args.class_weights:
        if args.policy != "weighted-fair":
            print(
                "--class-weights only applies to --policy weighted-fair",
                file=sys.stderr,
            )
            return 2
        for part in args.class_weights.split(","):
            try:
                name, weight = part.split(":")
                class_weights[name] = float(weight)
            except ValueError:
                print(
                    f"bad --class-weights {args.class_weights!r}; expected "
                    "NAME:WEIGHT[,NAME:WEIGHT...]",
                    file=sys.stderr,
                )
                return 2
            if not (class_weights[name] > 0) or math.isinf(class_weights[name]):
                print(f"--class-weights entries must be positive, got {part!r}", file=sys.stderr)
                return 2
    if args.admission_depth < 1:
        print(f"--admission-depth must be >= 1, got {args.admission_depth}", file=sys.stderr)
        return 2
    if not (args.admission_slack > 0):
        print(f"--admission-slack must be positive, got {args.admission_slack}", file=sys.stderr)
        return 2
    if args.admission_rate is not None and not (args.admission_rate > 0):
        print(f"--admission-rate must be positive, got {args.admission_rate}", file=sys.stderr)
        return 2
    if args.admission_wait_ms is not None and not (args.admission_wait_ms >= 0):
        print(f"--admission-wait-ms must be >= 0, got {args.admission_wait_ms}", file=sys.stderr)
        return 2
    fault_specs = []
    for spec_str in args.fault_crash or ():
        parts = spec_str.split(":")
        try:
            if len(parts) == 2:
                wid, at_ms = int(parts[0]), float(parts[1])
                down_s = None
            elif len(parts) == 3:
                wid, at_ms = int(parts[0]), float(parts[1])
                down_s = float(parts[2]) / 1e3
            else:
                raise ValueError(spec_str)
            fault_specs.append(CrashSpec(worker=wid, at_s=at_ms / 1e3, down_for_s=down_s))
        except ValueError:
            print(
                f"bad --fault-crash {spec_str!r}; expected WID:AT_MS[:DOWN_MS] "
                "with AT_MS >= 0 and DOWN_MS > 0",
                file=sys.stderr,
            )
            return 2
    for spec_str in args.fault_straggler or ():
        try:
            wid, start_ms, dur_ms, factor = spec_str.split(":")
            fault_specs.append(
                StragglerSpec(
                    worker=int(wid),
                    start_s=float(start_ms) / 1e3,
                    duration_s=float(dur_ms) / 1e3,
                    factor=float(factor),
                )
            )
        except ValueError:
            print(
                f"bad --fault-straggler {spec_str!r}; expected "
                "WID:START_MS:DUR_MS:FACTOR with DUR_MS > 0 and FACTOR >= 1",
                file=sys.stderr,
            )
            return 2
    if args.fault_transient is not None:
        try:
            fault_specs.append(TransientSpec(prob=args.fault_transient))
        except ValueError:
            print(
                f"--fault-transient must be in [0, 1), got {args.fault_transient}",
                file=sys.stderr,
            )
            return 2
    if not (args.heartbeat_interval_ms > 0) or not (args.heartbeat_timeout_ms > 0):
        print("--heartbeat-interval-ms and --heartbeat-timeout-ms must be positive", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print(f"--max-retries must be >= 0, got {args.max_retries}", file=sys.stderr)
        return 2
    if args.breaker_threshold is not None and not (0 < args.breaker_threshold <= 1):
        print(
            f"--breaker-threshold must be in (0, 1], got {args.breaker_threshold}",
            file=sys.stderr,
        )
        return 2
    if args.breaker_min_samples < 1 or args.breaker_window < args.breaker_min_samples:
        print(
            "--breaker-window must be >= --breaker-min-samples >= 1, got "
            f"window {args.breaker_window}, min-samples {args.breaker_min_samples}",
            file=sys.stderr,
        )
        return 2
    if not (args.breaker_cooldown_ms > 0):
        print(f"--breaker-cooldown-ms must be positive, got {args.breaker_cooldown_ms}", file=sys.stderr)
        return 2
    injector = FaultInjector(fault_specs, seed=args.fault_seed) if fault_specs else None
    if injector is not None:
        try:
            injector.validate_workers(args.workers)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    recovery = RecoveryConfig(
        heartbeat_interval_s=args.heartbeat_interval_ms / 1e3,
        heartbeat_timeout_s=args.heartbeat_timeout_ms / 1e3,
        max_retries=args.max_retries,
        requeue=not args.no_requeue,
        breaker_threshold=args.breaker_threshold,
        breaker_window=args.breaker_window,
        breaker_min_samples=args.breaker_min_samples,
        breaker_cooldown_s=args.breaker_cooldown_ms / 1e3,
    )

    explicit_slo = None
    if args.slo:
        classes = []
        for spec_str in args.slo:
            try:
                name, deadline_ms, share = spec_str.split(":")
                deadline = None if deadline_ms in ("none", "") else float(deadline_ms) / 1e3
                classes.append(SLOClass(name, deadline, float(share)))
            except ValueError:
                print(f"bad --slo {spec_str!r}; expected NAME:DEADLINE_MS:SHARE", file=sys.stderr)
                return 2
        explicit_slo = tuple(classes)

    clock = CostModelClock()
    probe = WorkloadSpec(
        n=args.n,
        window=args.window,
        heads=args.heads,
        head_dim=args.head_dim,
        mixed=not args.uniform,
    )
    if args.measured:
        # Measured mode runs on the host wall clock (milliseconds per
        # batch), not the accelerator cycle model (microseconds) — the
        # auto rate and default SLO deadlines must be probed on the same
        # clock or every deadline is missed by construction.
        salo = SALO()
        rng = np.random.default_rng(0)
        hidden = args.heads * args.head_dim
        probed = []
        for pattern in pattern_families(probe.trace_spec()):
            q, k, v = (rng.standard_normal((pattern.n, hidden)) for _ in range(3))
            salo.attend(pattern, q, k, v, heads=args.heads)  # warm compile
            t0 = time.perf_counter()
            salo.attend(pattern, q, k, v, heads=args.heads)
            probed.append(time.perf_counter() - t0)
        unit_s = dispatch_s = float(np.mean(probed))
    else:
        unit_s, dispatch_s = service_scales(
            probe, clock, full_batch=args.batch_size, backend=args.backend
        )

    if explicit_slo is not None:
        slo_classes = explicit_slo
    else:
        slo_classes = (
            SLOClass("interactive", deadline_s=INTERACTIVE_BUDGET * dispatch_s, share=0.5),
            SLOClass("bulk", deadline_s=BULK_BUDGET * dispatch_s, share=0.5),
        )
    # A typo'd class name would silently fall back to default_weight and
    # neutralise the fairness knob the user thinks is in force.
    unknown = set(class_weights) - {c.name for c in slo_classes}
    if unknown:
        print(
            f"--class-weights names {sorted(unknown)} match no SLO class "
            f"(known: {sorted(c.name for c in slo_classes)})",
            file=sys.stderr,
        )
        return 2

    spec = WorkloadSpec(
        num_requests=args.requests,
        n=args.n,
        window=args.window,
        heads=args.heads,
        head_dim=args.head_dim,
        mixed=not args.uniform,
        slo_classes=slo_classes,
        seed=args.seed,
    )
    if args.rate is not None:
        rate = args.rate
    else:
        rho = args.rho if args.rho is not None else 0.9
        rate = rho * args.workers / unit_s
    if args.arrival == "closed":
        source = ClosedLoopSource(spec, clients=args.clients, think_time_s=args.think_ms / 1e3)
    elif args.arrival == "bursty":
        source = open_loop(
            spec,
            OnOffProcess(
                rate_on_rps=2.0 * rate,
                rate_off_rps=0.0,
                mean_on_s=50.0 / rate,
                mean_off_s=50.0 / rate,
            ),
        )
    else:
        source = open_loop(spec, PoissonProcess(rate_rps=rate))

    policy_kwargs = {"drop_expired": args.drop_expired}
    if args.policy in ("max-wait", "size-latency"):
        policy_kwargs["max_wait_s"] = args.max_wait_ms / 1e3
    if args.policy == "size-latency":
        policy_kwargs["target_size"] = args.target_size
    if args.policy == "weighted-fair" and class_weights:
        policy_kwargs["weights"] = class_weights
    if args.policy == "weighted-fair" and args.length_weighted:
        policy_kwargs["length_weighted"] = True

    admission_kwargs = {}
    if args.admission == "queue-depth":
        admission_kwargs["max_depth"] = args.admission_depth
    elif args.admission == "est-wait":
        admission_kwargs["slack"] = args.admission_slack
        if args.admission_wait_ms is not None:
            admission_kwargs["max_wait_s"] = args.admission_wait_ms / 1e3
    elif args.admission == "token-bucket":
        # Default quota: an even split of the pool's cost-model capacity
        # across the configured SLO classes.
        rate_per_class = (
            args.admission_rate
            if args.admission_rate is not None
            else args.workers / unit_s / max(len(slo_classes), 1)
        )
        admission_kwargs["default_rate"] = rate_per_class

    config = SimConfig(
        workers=args.workers,
        max_batch_size=args.batch_size,
        pad_to_bucket=args.pad,
        steal=not args.no_steal,
        policy=make_policy(args.policy, **policy_kwargs),
        admission=make_admission(args.admission, **admission_kwargs),
        service=MeasuredClock() if args.measured else clock,
        backend=args.backend,
        faults=injector,
        recovery=recovery,
    )

    t0 = time.perf_counter()
    report = simulate(source, config)
    if args.json:
        # One JSON document on stdout, nothing else: the machine-readable
        # path the provisioning advisor (and any script) consumes.
        import json as _json

        payload = report.to_dict()
        payload["workload"] = {
            "requests": args.requests,
            "arrival": args.arrival,
            "rate_rps": None if args.arrival == "closed" else rate,
            "policy": args.policy,
            "admission": args.admission,
            "workers": args.workers,
            "backend": args.backend,
            "seed": args.seed,
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"workload: {args.requests} requests, {args.arrival} arrivals"
        + (f" @ {rate:.0f} req/s" if args.arrival != "closed" else f", {args.clients} clients")
        + f", policy {args.policy}"
        + (" (drop-expired)" if args.drop_expired else "")
        + (f", admission {args.admission}" if args.admission != "admit-all" else "")
        + f", {args.workers} workers"
        + (f", faults {injector!r}" if injector is not None else "")
    )
    print(report.render())
    print(f"\n[simulate finished in {time.perf_counter() - t0:.1f}s]")
    return 0


def _cmd_decode(args) -> int:
    """Build a decode workload from CLI args and run the decode simulator."""
    from .cluster import (
        DecodeClusterSimulator,
        DecodeSimConfig,
        DecodeSLOClass,
        DecodeWorkloadSpec,
        FaultInjector,
        TransientSpec,
        make_admission,
    )

    slo_classes = None
    if args.slo:
        classes = []
        for spec_str in args.slo:
            try:
                name, ttft_ms, itl_ms, share = spec_str.split(":")
                ttft = None if ttft_ms in ("none", "") else float(ttft_ms) / 1e3
                itl = None if itl_ms in ("none", "") else float(itl_ms) / 1e3
                classes.append(
                    DecodeSLOClass(name, ttft, float(share), itl_deadline_s=itl)
                )
            except ValueError:
                print(
                    f"bad --slo {spec_str!r}; expected NAME:TTFT_MS:ITL_MS:SHARE "
                    "(budgets may be 'none')",
                    file=sys.stderr,
                )
                return 2
        slo_classes = tuple(classes)

    try:
        spec_kwargs = dict(
            sequences=args.sequences,
            rate_rps=args.rate,
            prompt_min=args.prompt_min,
            prompt_max=args.prompt_max,
            mean_new_tokens=args.mean_new_tokens,
            max_new_tokens=args.max_new_tokens,
            window=args.window,
            global_tokens=tuple(args.global_token or ()),
            heads=args.heads,
            head_dim=args.head_dim,
            seed=args.seed,
        )
        if slo_classes is not None:
            spec_kwargs["slo_classes"] = slo_classes
        spec = DecodeWorkloadSpec(**spec_kwargs)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    admission = None
    if args.admission != "admit-all":
        admission_kwargs = {}
        if args.admission == "queue-depth":
            admission_kwargs["max_depth"] = args.admission_depth
        elif args.admission == "est-wait":
            admission_kwargs["slack"] = args.admission_slack
        elif args.admission == "token-bucket":
            # Default quota: the offered sequence rate split evenly
            # across the configured SLO classes.
            admission_kwargs["default_rate"] = (
                args.admission_rate
                if args.admission_rate is not None
                else args.rate / max(len(spec.slo_classes), 1)
            )
        try:
            admission = make_admission(args.admission, **admission_kwargs)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2

    faults = None
    if args.fault_transient is not None:
        try:
            faults = FaultInjector(
                [TransientSpec(prob=args.fault_transient, worker=args.fault_worker)],
                seed=args.fault_seed,
            )
            faults.validate_workers(args.workers)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2

    try:
        config = DecodeSimConfig(
            workers=args.workers,
            max_lanes=args.max_lanes,
            admission=admission,
            shed_lagging=not args.no_shed_lagging,
            itl_shed_factor=args.itl_shed_factor,
            max_retries=args.max_retries,
            faults=faults,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    t0 = time.perf_counter()
    report = DecodeClusterSimulator(config).run(spec)
    print(
        f"workload: {args.sequences} sequences @ {args.rate:.0f} seq/s, "
        f"prompts [{args.prompt_min}, {args.prompt_max}], "
        f"output ~geometric({args.mean_new_tokens:.0f}) cap {args.max_new_tokens}, "
        f"{args.workers} workers x {args.max_lanes} lanes"
        + (f", admission {args.admission}" if admission is not None else "")
        + (f", faults {faults!r}" if faults is not None else "")
    )
    print(report.render())
    print(f"\n[decode finished in {time.perf_counter() - t0:.1f}s]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="salo-repro",
        description="Reproduction of SALO (DAC 2022): experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    engines_p = sub.add_parser(
        "engines",
        help="inspect the registered attention backends",
        description=(
            "Tabulates every backend registered with repro.api: capability "
            "flags (batch axis, valid_lens masking, bit-exactness, cost "
            "model, executability, structure requirement) and a summary. "
            "These are the names run/serve/simulate --backend accept."
        ),
    )
    engines_p.add_argument(
        "action", choices=("list",), help="engines subcommand (list: tabulate backends)"
    )

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (see 'list')")
    run_p.add_argument("--fast", action="store_true", help="reduced problem sizes")
    run_p.add_argument(
        "--backend",
        default=None,
        help="execution backend for experiments with a backend axis "
        "(see 'engines list'); experiments without one reject the flag",
    )

    all_p = sub.add_parser("all", help="run every experiment in paper order")
    all_p.add_argument("--fast", action="store_true", help="reduced problem sizes")

    serve_p = sub.add_parser(
        "serve",
        help="replay a synthetic request trace through the batching serving layer",
        description=(
            "Generates a synthetic multi-pattern request trace, serves it through "
            "the length-bucketed batch scheduler (one batched engine dispatch per "
            "batch) and reports throughput, latency percentiles and the speedup "
            "over one-call-per-request execution of the same work."
        ),
    )
    serve_p.add_argument("--requests", type=int, default=64, help="trace length (default 64)")
    serve_p.add_argument("--batch-size", type=int, default=8, help="max requests per batch")
    serve_p.add_argument("--n", type=int, default=256, help="base sequence length")
    serve_p.add_argument("--window", type=int, default=32, help="attention window width")
    serve_p.add_argument("--heads", type=int, default=2, help="attention heads")
    serve_p.add_argument("--head-dim", type=int, default=8, help="per-head width")
    serve_p.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    serve_p.add_argument(
        "--uniform",
        action="store_true",
        help="single pattern family (default: mixed families and lengths)",
    )
    serve_p.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the sequential one-call-per-request comparison",
    )
    serve_p.add_argument(
        "--backend",
        default="functional",
        help="execution backend serving the trace (see 'engines list')",
    )
    serve_p.add_argument(
        "--json",
        action="store_true",
        help="print the replay report as one JSON document instead of text",
    )

    sim_p = sub.add_parser(
        "simulate",
        help="discrete-event simulation of a multi-worker SALO cluster",
        description=(
            "Simulates N worker engines serving timestamped traffic (Poisson, "
            "bursty on-off, or closed-loop clients) under a batch-close policy, "
            "with plan-affinity routing and work stealing.  Service times come "
            "from the paper's cycle model (SALO.estimate) — deterministic, no "
            "wall clock — unless --measured executes batches for real.  Reports "
            "per-SLO-class latency percentiles, goodput and per-worker "
            "utilisation."
        ),
    )
    sim_p.add_argument("--workers", type=int, default=2, help="worker engines (default 2)")
    sim_p.add_argument("--requests", type=int, default=200, help="total requests (default 200)")
    sim_p.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered load in req/s (default: 0.9x the pool's cost-model capacity)",
    )
    sim_p.add_argument(
        "--rho",
        type=float,
        default=None,
        help="offered load relative to the pool's cost-model capacity "
        "(alternative to --rate; rho > 1 simulates sustained overload)",
    )
    sim_p.add_argument(
        "--arrival",
        choices=("poisson", "bursty", "closed"),
        default="poisson",
        help="arrival process (closed = fixed client population)",
    )
    sim_p.add_argument(
        "--policy",
        choices=("greedy-fifo", "max-wait", "edf", "size-latency", "weighted-fair"),
        default="greedy-fifo",
        help="batch-close policy",
    )
    sim_p.add_argument(
        "--drop-expired",
        action="store_true",
        help="shed queued requests whose deadline already passed "
        "(load shedding: trades completions for goodput under overload)",
    )
    sim_p.add_argument(
        "--class-weights",
        metavar="NAME:W[,NAME:W...]",
        default=None,
        help="per-SLO-class weights for the weighted-fair policy "
        "(e.g. interactive:3,bulk:1)",
    )
    sim_p.add_argument(
        "--length-weighted",
        action="store_true",
        help="weighted-fair policy: charge credit proportional to request "
        "length (token-share fairness) instead of 1 per request",
    )
    sim_p.add_argument(
        "--admission",
        choices=("admit-all", "queue-depth", "est-wait", "token-bucket"),
        default="admit-all",
        help="admission policy consulted at each arrival (overload valve)",
    )
    sim_p.add_argument(
        "--admission-depth",
        type=int,
        default=64,
        help="queue-depth admission: max requests held by the routed worker",
    )
    sim_p.add_argument(
        "--admission-slack",
        type=float,
        default=0.5,
        help="est-wait admission: reject once projected wait exceeds this "
        "fraction of the request's deadline budget",
    )
    sim_p.add_argument(
        "--admission-wait-ms",
        type=float,
        default=None,
        help="est-wait admission: absolute wait cap for deadline-free requests (ms)",
    )
    sim_p.add_argument(
        "--admission-rate",
        type=float,
        default=None,
        help="token-bucket admission: per-class refill rate in req/s "
        "(default: an even split of pool capacity across classes)",
    )
    sim_p.add_argument(
        "--max-wait-ms",
        type=float,
        default=0.2,
        help="holding bound for max-wait / size-latency policies (ms)",
    )
    sim_p.add_argument(
        "--target-size", type=int, default=4, help="size-latency policy batch target"
    )
    sim_p.add_argument("--batch-size", type=int, default=8, help="max requests per batch")
    sim_p.add_argument("--n", type=int, default=256, help="base sequence length")
    sim_p.add_argument("--window", type=int, default=32, help="attention window width")
    sim_p.add_argument("--heads", type=int, default=2, help="attention heads")
    sim_p.add_argument("--head-dim", type=int, default=8, help="per-head width")
    sim_p.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    sim_p.add_argument(
        "--slo",
        action="append",
        metavar="NAME:DEADLINE_MS:SHARE",
        help=(
            "an SLO class (repeatable); default: interactive/bulk classes with "
            "deadlines scaled to the workload's cost-model dispatch unit"
        ),
    )
    sim_p.add_argument(
        "--clients", type=int, default=16, help="closed-loop client population"
    )
    sim_p.add_argument(
        "--think-ms", type=float, default=0.1, help="closed-loop mean think time (ms)"
    )
    sim_p.add_argument(
        "--pad",
        action="store_true",
        help="pad_to_bucket batching (cross-length batches with masked tails)",
    )
    sim_p.add_argument("--no-steal", action="store_true", help="disable work stealing")
    sim_p.add_argument(
        "--measured",
        action="store_true",
        help="execute batches on the engines and use measured wall time "
        "(default: deterministic cost-model clock)",
    )
    sim_p.add_argument(
        "--uniform",
        action="store_true",
        help="single pattern family (default: mixed families and lengths)",
    )
    sim_p.add_argument(
        "--backend",
        default="functional",
        help="execution backend of every worker engine (see 'engines list')",
    )
    sim_p.add_argument(
        "--json",
        action="store_true",
        help="print the cluster report as one JSON document instead of text",
    )
    sim_p.add_argument(
        "--fault-crash",
        action="append",
        metavar="WID:AT_MS[:DOWN_MS]",
        help=(
            "crash worker WID at AT_MS simulated ms, rejoining DOWN_MS later "
            "with a cold plan cache (omit DOWN_MS: never rejoins; repeatable)"
        ),
    )
    sim_p.add_argument(
        "--fault-straggler",
        action="append",
        metavar="WID:START_MS:DUR_MS:FACTOR",
        help=(
            "slow worker WID by FACTOR x for batches dispatched in "
            "[START_MS, START_MS+DUR_MS) (repeatable)"
        ),
    )
    sim_p.add_argument(
        "--fault-transient",
        type=float,
        default=None,
        metavar="PROB",
        help="per-dispatch transient-error probability on every worker",
    )
    sim_p.add_argument(
        "--fault-seed", type=int, default=0, help="fault injector RNG seed"
    )
    sim_p.add_argument(
        "--heartbeat-interval-ms",
        type=float,
        default=1.0,
        help="health probe period (simulated ms; default 1.0)",
    )
    sim_p.add_argument(
        "--heartbeat-timeout-ms",
        type=float,
        default=2.0,
        help="silence after which a worker is marked down (simulated ms; default 2.0)",
    )
    sim_p.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="transient-error retry budget per request (default 3)",
    )
    sim_p.add_argument(
        "--no-requeue",
        action="store_true",
        help="fail a down worker's orphaned requests instead of requeuing them",
    )
    sim_p.add_argument(
        "--breaker-threshold",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "per-worker circuit breaker: stop routing to a worker whose "
            "dispatch failure rate over the sliding window reaches RATE "
            "(catches grey failures heartbeats miss; default: disabled)"
        ),
    )
    sim_p.add_argument(
        "--breaker-window",
        type=int,
        default=8,
        help="circuit breaker: sliding window of dispatch outcomes (default 8)",
    )
    sim_p.add_argument(
        "--breaker-min-samples",
        type=int,
        default=4,
        help="circuit breaker: outcomes required before it may trip (default 4)",
    )
    sim_p.add_argument(
        "--breaker-cooldown-ms",
        type=float,
        default=2.0,
        help="circuit breaker: open duration before the half-open probe "
        "(simulated ms; default 2.0)",
    )

    adv_p = sub.add_parser(
        "advise",
        help="provisioning advisor: search configs against a traffic spec",
        description=(
            "Searches the configuration space (workers x batch policy x "
            "admission x backend x batch cap) against a declarative traffic "
            "spec on the deterministic cost-model clock, ranks candidates "
            "cheapest-feasible-first with per-SLO margins, load headroom and "
            "the binding constraint, ablates the top candidates component by "
            "component, and optionally exports a manifest-hashed decision "
            "pack.  Without --traffic, a built-in interactive/bulk example "
            "spec at rho 1.2 is used (the committed copy lives at "
            "examples/traffic_interactive_bulk.json)."
        ),
    )
    adv_p.add_argument(
        "--traffic",
        default=None,
        metavar="FILE",
        help="JSON traffic spec (see examples/traffic_interactive_bulk.json)",
    )
    adv_p.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts to search (default: 1 2 4)",
    )
    adv_p.add_argument(
        "--policy",
        nargs="+",
        choices=("greedy-fifo", "max-wait", "edf", "size-latency", "weighted-fair"),
        default=["greedy-fifo", "edf", "weighted-fair"],
        help="batch policies to search",
    )
    adv_p.add_argument(
        "--admission",
        nargs="+",
        choices=("admit-all", "queue-depth", "est-wait"),
        default=["admit-all", "est-wait"],
        help="admission policies to search",
    )
    adv_p.add_argument(
        "--batch-size",
        type=int,
        nargs="+",
        default=[8],
        help="max batch sizes to search (default: 8)",
    )
    adv_p.add_argument(
        "--backend",
        default="functional",
        help="execution backend candidates are configured with",
    )
    adv_p.add_argument(
        "--top", type=int, default=None, help="show only the top K ranked candidates"
    )
    adv_p.add_argument(
        "--ablate-top",
        type=int,
        default=3,
        help="run the component-ablation matrix on the top K candidates",
    )
    adv_p.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="export the decision pack (candidates.json, comparison.csv, "
        "DECISION_REPORT.md, manifest.json) to this directory",
    )
    adv_p.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="persist per-simulation results keyed by run id; a re-run "
        "with unchanged configuration replays from disk",
    )
    adv_p.add_argument(
        "--json", action="store_true", help="emit the full advice as JSON"
    )

    dec_p = sub.add_parser(
        "decode",
        help="continuous-batching decode simulation (tokens/s, TTFT/ITL SLOs)",
        description=(
            "Simulates decode-phase workers: each sequence arrives with a "
            "prompt, holds a lane for one engine step per generated token, "
            "and retires at its output budget — new arrivals join the running "
            "batch between steps.  Service times come from the cost model "
            "(latency x lanes + batch overhead, cold compile on the first "
            "step per bucket).  Reports tokens/s, mean lane concurrency, "
            "TTFT/ITL percentiles per SLO class, and per-worker plan-cache "
            "hit rates."
        ),
    )
    dec_p.add_argument("--sequences", type=int, default=64, help="total sequences (default 64)")
    dec_p.add_argument(
        "--rate", type=float, default=2000.0, help="sequence arrival rate in seq/s"
    )
    dec_p.add_argument("--workers", type=int, default=2, help="decode workers (default 2)")
    dec_p.add_argument(
        "--max-lanes", type=int, default=8, help="continuous-batch lanes per worker"
    )
    dec_p.add_argument("--prompt-min", type=int, default=4, help="shortest prompt")
    dec_p.add_argument("--prompt-max", type=int, default=48, help="longest prompt")
    dec_p.add_argument(
        "--mean-new-tokens",
        type=float,
        default=16.0,
        help="mean output budget (geometric draw)",
    )
    dec_p.add_argument(
        "--max-new-tokens", type=int, default=64, help="output budget cap"
    )
    dec_p.add_argument("--window", type=int, default=8, help="attention window width")
    dec_p.add_argument(
        "--global-token",
        action="append",
        type=int,
        metavar="POS",
        help="a global-attention token position (repeatable)",
    )
    dec_p.add_argument("--heads", type=int, default=2, help="attention heads")
    dec_p.add_argument("--head-dim", type=int, default=8, help="per-head width")
    dec_p.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    dec_p.add_argument(
        "--slo",
        action="append",
        metavar="NAME:TTFT_MS:ITL_MS:SHARE",
        help=(
            "a decode SLO class with first-token and inter-token budgets "
            "(either may be 'none'; repeatable; default: interactive/bulk)"
        ),
    )
    dec_p.add_argument(
        "--admission",
        choices=("admit-all", "queue-depth", "est-wait", "token-bucket"),
        default="admit-all",
        help="admission policy at the decode door (est-wait gates on TTFT "
        "feasibility via the lane-drain estimate)",
    )
    dec_p.add_argument(
        "--admission-depth",
        type=int,
        default=64,
        help="queue-depth admission: max sequences held by the routed worker",
    )
    dec_p.add_argument(
        "--admission-slack",
        type=float,
        default=1.0,
        help="est-wait admission: reject once the projected first-step wait "
        "exceeds this fraction of the TTFT budget",
    )
    dec_p.add_argument(
        "--admission-rate",
        type=float,
        default=None,
        help="token-bucket admission: per-class refill rate in seq/s "
        "(default: the offered rate split across classes)",
    )
    dec_p.add_argument(
        "--no-shed-lagging",
        action="store_true",
        help="keep lanes whose inter-token gap blew past their ITL budget "
        "(default: shed them; produced tokens stay completed)",
    )
    dec_p.add_argument(
        "--itl-shed-factor",
        type=float,
        default=4.0,
        help="shed a lane once its gap exceeds this multiple of its ITL budget",
    )
    dec_p.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="step-failure retry budget per sequence (default 3)",
    )
    dec_p.add_argument(
        "--fault-transient",
        type=float,
        default=None,
        metavar="PROB",
        help="per-step transient-error probability",
    )
    dec_p.add_argument(
        "--fault-worker",
        type=int,
        default=None,
        metavar="WID",
        help="restrict transient faults to one worker (default: all)",
    )
    dec_p.add_argument(
        "--fault-seed", type=int, default=0, help="fault injector RNG seed"
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in _ordered_names():
            print(name)
        return 0

    if args.command == "engines":
        return _cmd_engines(args)

    if args.command == "run":
        try:
            fn = get_experiment(args.experiment)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        kwargs = {}
        if args.backend is not None:
            # The serving experiments run the deterministic cost-model
            # clock, so the backend must both execute and estimate.
            rc = _validate_backend(
                args.backend, require_executing=True, require_cost_model=True
            )
            if rc:
                return rc
            if "backend" not in inspect.signature(fn).parameters:
                print(
                    f"experiment {args.experiment!r} has no execution-backend axis "
                    "(cost-model only); drop --backend",
                    file=sys.stderr,
                )
                return 2
            kwargs["backend"] = args.backend
        t0 = time.perf_counter()
        result = fn(fast=args.fast, **kwargs)
        print(result.render())
        print(f"\n[{args.experiment} finished in {time.perf_counter() - t0:.1f}s]")
        return 0

    if args.command == "serve":
        from .serving import TraceSpec, replay, synthetic_trace

        rc = _validate_backend(args.backend, require_executing=True)
        if rc:
            return rc
        spec = TraceSpec(
            num_requests=args.requests,
            n=args.n,
            window=args.window,
            heads=args.heads,
            head_dim=args.head_dim,
            mixed=not args.uniform,
            seed=args.seed,
        )
        t0 = time.perf_counter()
        report = replay(
            synthetic_trace(spec),
            max_batch_size=args.batch_size,
            compare_sequential=not args.no_baseline,
            backend=args.backend,
        )
        if args.json:
            import json as _json

            print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
            return 0
        print(report.render())
        print(f"\n[serve finished in {time.perf_counter() - t0:.1f}s]")
        return 0

    if args.command == "simulate":
        return _cmd_simulate(args)

    if args.command == "advise":
        return _cmd_advise(args)

    if args.command == "decode":
        return _cmd_decode(args)

    if args.command == "all":
        for name in _ordered_names():
            t0 = time.perf_counter()
            result = get_experiment(name)(fast=args.fast)
            print(result.render())
            print(f"[{name}: {time.perf_counter() - t0:.1f}s]\n")
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
