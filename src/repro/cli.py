"""Command-line interface: run the paper's experiments.

Usage::

    salo-repro list                      # enumerate experiments
    salo-repro run fig7a_speedup         # one experiment
    salo-repro run table3_quantization --fast
    salo-repro all [--fast]              # everything, in DESIGN.md order
    salo-repro serve --requests 64       # replay a synthetic serving trace
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import all_experiments, get_experiment

_ORDER = [
    "sec21_quadratic",
    "table1_synthesis",
    "table2_workloads",
    "fig7a_speedup",
    "fig7b_energy",
    "sec63_sanger",
    "table3_quantization",
    "ablation_pe_array",
    "ablation_splitting",
    "ablation_dataflow",
    "ablation_exp_lut",
    "ablation_global_tokens",
    "ablation_band_packing",
    "ablation_pipelining",
    "design_space",
    "seq_scaling",
]


def _ordered_names() -> List[str]:
    known = all_experiments()
    ordered = [n for n in _ORDER if n in known]
    ordered.extend(sorted(set(known) - set(ordered)))
    return ordered


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="salo-repro",
        description="Reproduction of SALO (DAC 2022): experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (see 'list')")
    run_p.add_argument("--fast", action="store_true", help="reduced problem sizes")

    all_p = sub.add_parser("all", help="run every experiment in paper order")
    all_p.add_argument("--fast", action="store_true", help="reduced problem sizes")

    serve_p = sub.add_parser(
        "serve",
        help="replay a synthetic request trace through the batching serving layer",
        description=(
            "Generates a synthetic multi-pattern request trace, serves it through "
            "the length-bucketed batch scheduler (one batched engine dispatch per "
            "batch) and reports throughput, latency percentiles and the speedup "
            "over one-call-per-request execution of the same work."
        ),
    )
    serve_p.add_argument("--requests", type=int, default=64, help="trace length (default 64)")
    serve_p.add_argument("--batch-size", type=int, default=8, help="max requests per batch")
    serve_p.add_argument("--n", type=int, default=256, help="base sequence length")
    serve_p.add_argument("--window", type=int, default=32, help="attention window width")
    serve_p.add_argument("--heads", type=int, default=2, help="attention heads")
    serve_p.add_argument("--head-dim", type=int, default=8, help="per-head width")
    serve_p.add_argument("--seed", type=int, default=0, help="trace RNG seed")
    serve_p.add_argument(
        "--uniform",
        action="store_true",
        help="single pattern family (default: mixed families and lengths)",
    )
    serve_p.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the sequential one-call-per-request comparison",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in _ordered_names():
            print(name)
        return 0

    if args.command == "run":
        try:
            fn = get_experiment(args.experiment)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        result = fn(fast=args.fast)
        print(result.render())
        print(f"\n[{args.experiment} finished in {time.perf_counter() - t0:.1f}s]")
        return 0

    if args.command == "serve":
        from .serving import TraceSpec, replay, synthetic_trace

        spec = TraceSpec(
            num_requests=args.requests,
            n=args.n,
            window=args.window,
            heads=args.heads,
            head_dim=args.head_dim,
            mixed=not args.uniform,
            seed=args.seed,
        )
        t0 = time.perf_counter()
        report = replay(
            synthetic_trace(spec),
            max_batch_size=args.batch_size,
            compare_sequential=not args.no_baseline,
        )
        print(report.render())
        print(f"\n[serve finished in {time.perf_counter() - t0:.1f}s]")
        return 0

    if args.command == "all":
        for name in _ordered_names():
            t0 = time.perf_counter()
            result = get_experiment(name)(fast=args.fast)
            print(result.render())
            print(f"[{name}: {time.perf_counter() - t0:.1f}s]\n")
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
