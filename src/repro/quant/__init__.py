"""Quantisation studies (paper Section 6.4 / Table 3)."""

from .calibration import ScoreRangeReport, calibrate_numerics, measure_score_range
from .error import QuantErrorReport, attention_quant_error, sqnr_db
from .qat import QuantStudyResult, run_quantization_study

__all__ = [
    "ScoreRangeReport",
    "measure_score_range",
    "calibrate_numerics",
    "QuantErrorReport",
    "attention_quant_error",
    "sqnr_db",
    "QuantStudyResult",
    "run_quantization_study",
]
