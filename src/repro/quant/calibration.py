"""Score-range calibration for the PWL exponential clamp.

The exponential unit clamps its input to ``[lo, hi]`` (Section 5.1); a
score above ``hi`` loses weight in the softmax and distorts the output —
the fixed-point analogue of activation-range calibration in any INT8
deployment.  This module measures the post-scaling score distribution of
a workload on sample data and sizes the clamp range (and the exp output
format's integer headroom) to a configurable percentile, mirroring how
QPyTorch-style deployments calibrate before quantising.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..core.config import NumericsConfig
from ..patterns.base import AttentionPattern

__all__ = ["ScoreRangeReport", "measure_score_range", "calibrate_numerics"]


@dataclass(frozen=True)
class ScoreRangeReport:
    """Distribution of attended attention scores on calibration data."""

    lo: float
    hi: float
    clip_fraction: float  # fraction of scores outside [lo, hi]
    score_min: float
    score_max: float
    num_scores: int


def _attended_scores(
    pattern: AttentionPattern,
    q: np.ndarray,
    k: np.ndarray,
    heads: int,
    scale: Optional[float],
    max_rows: int,
    rng: np.random.Generator,
) -> np.ndarray:
    n, hidden = q.shape
    d = hidden // heads
    if scale is None:
        scale = 1.0 / math.sqrt(d)
    rows = np.arange(n)
    if n > max_rows:
        rows = np.sort(rng.choice(rows, size=max_rows, replace=False))
    chunks = []
    for h in range(heads):
        sl = slice(h * d, (h + 1) * d)
        qh, kh = q[:, sl], k[:, sl]
        for i in rows:
            keys = pattern.row_keys(int(i))
            chunks.append((kh[keys] @ qh[i]) * scale)
    return np.concatenate(chunks)


def measure_score_range(
    pattern: AttentionPattern,
    q: np.ndarray,
    k: np.ndarray,
    heads: int = 1,
    scale: Optional[float] = None,
    lo_percentile: float = 0.005,
    hi_percentile: float = 99.999,
    headroom: float = 0.5,
    max_rows: int = 512,
    seed: int = 0,
) -> ScoreRangeReport:
    """Measure attended scores and propose a clamp range.

    ``headroom`` is added above/below the chosen percentiles so the clamp
    rarely binds on unseen data.  Only attended (pattern-selected) scores
    count — masked positions never reach the exponential.
    """
    scores = _attended_scores(
        pattern, np.asarray(q, float), np.asarray(k, float), heads, scale,
        max_rows, np.random.default_rng(seed),
    )
    lo = float(np.percentile(scores, lo_percentile)) - headroom
    hi = float(np.percentile(scores, hi_percentile)) + headroom
    clip = float(np.mean((scores < lo) | (scores > hi)))
    return ScoreRangeReport(
        lo=lo,
        hi=hi,
        clip_fraction=clip,
        score_min=float(scores.min()),
        score_max=float(scores.max()),
        num_scores=int(scores.size),
    )


def calibrate_numerics(
    pattern: AttentionPattern,
    q: np.ndarray,
    k: np.ndarray,
    heads: int = 1,
    base: Optional[NumericsConfig] = None,
    **measure_kwargs,
) -> Tuple[NumericsConfig, ScoreRangeReport]:
    """Produce a :class:`NumericsConfig` whose exp range fits the data.

    The exp output format keeps ``output_bits`` total and trades
    fractional bits for integer headroom so that ``exp(hi)`` is
    representable: ``frac = output_bits - ceil(log2(exp(hi))) - 1``.
    """
    if base is None:
        base = NumericsConfig()
    report = measure_score_range(pattern, q, k, heads=heads, **measure_kwargs)
    hi = max(report.hi, base.exp_input_lo + 1.0)
    # The exp output keeps at least one fractional bit, so the largest
    # representable exponential is (2^bits - 1) / 2; score distributions
    # beyond ln of that need input rescaling, not a wider clamp.
    hi_cap = math.log((2**base.output_bits - 1) / 2.0) - 1e-9
    hi = min(hi, hi_cap)
    lo = min(report.lo, hi - 1.0)
    int_bits = max(1, math.ceil(math.log2(math.exp(hi))) + 1)
    frac = max(1, base.output_bits - int_bits)
    numerics = replace(
        base,
        exp_input_lo=lo,
        exp_input_hi=hi,
        exp_frac_bits=frac,
    )
    return numerics, report
