"""Quantisation study harness: the Table 3 protocol.

The paper inserts QPyTorch quantisation layers into pretrained
Longformer/ViL attention, finetunes (quantisation-aware), and compares
accuracy against the float original.  :func:`run_quantization_study`
replays the protocol on our substrate:

1. train a float sparse-attention classifier on a synthetic task;
2. evaluate the float model ("Original");
3. swap every attention layer to the SALO fixed-point datapath and
   evaluate directly (post-training quantisation);
4. finetune briefly with straight-through gradients (QAT) and evaluate
   ("Quantized").

The claim under test is the paper's: the quantised accuracy lands within
a few tenths of a point of the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..core.config import NumericsConfig
from ..nn.attention import AttentionQuantizer
from ..nn.model import TransformerClassifier
from ..nn.training import evaluate_accuracy, train_classifier
from ..patterns.base import AttentionPattern

__all__ = ["QuantStudyResult", "run_quantization_study"]


@dataclass
class QuantStudyResult:
    """Accuracy triple of one quantisation study."""

    task_name: str
    original_accuracy: float
    ptq_accuracy: float  # post-training quantisation, no finetune
    qat_accuracy: float  # after quantisation-aware finetuning

    @property
    def degradation_points(self) -> float:
        """Original − quantised accuracy in percentage points (QAT)."""
        return (self.original_accuracy - self.qat_accuracy) * 100.0

    def row(self) -> dict:
        return {
            "task": self.task_name,
            "original_%": round(self.original_accuracy * 100.0, 2),
            "ptq_%": round(self.ptq_accuracy * 100.0, 2),
            "quantized_%": round(self.qat_accuracy * 100.0, 2),
            "degradation_pts": round(self.degradation_points, 2),
        }


def run_quantization_study(
    task_name: str,
    pattern: AttentionPattern,
    sampler: Callable[[int, int], Tuple[np.ndarray, np.ndarray]],
    *,
    vocab: Optional[int] = None,
    input_dim: Optional[int] = None,
    num_classes: int = 2,
    dim: int = 32,
    heads: int = 4,
    layers: int = 2,
    train_steps: int = 200,
    qat_steps: int = 40,
    batch: int = 16,
    lr: float = 3e-3,
    test_size: int = 256,
    seed: int = 0,
    numerics: Optional[NumericsConfig] = None,
) -> QuantStudyResult:
    """Run the full Table 3 protocol on one task."""
    model = TransformerClassifier(
        pattern,
        dim=dim,
        heads=heads,
        layers=layers,
        num_classes=num_classes,
        vocab=vocab,
        input_dim=input_dim,
        seed=seed,
    )
    test_x, test_y = sampler(test_size, 999_983)

    # 1-2: float training + evaluation.
    train_classifier(model, sampler, steps=train_steps, batch=batch, lr=lr)
    original = evaluate_accuracy(model, test_x, test_y)

    # 3: post-training quantisation.
    quantizer = AttentionQuantizer(numerics or NumericsConfig())
    model.set_quantizer(quantizer)
    ptq = evaluate_accuracy(model, test_x, test_y)

    # 4: quantisation-aware finetuning (STE gradients through quantisers).
    if qat_steps > 0:
        train_classifier(
            model, sampler, steps=qat_steps, batch=batch, lr=lr * 0.1, lr_decay=False
        )
    qat = evaluate_accuracy(model, test_x, test_y)
    return QuantStudyResult(
        task_name=task_name,
        original_accuracy=original,
        ptq_accuracy=ptq,
        qat_accuracy=qat,
    )
