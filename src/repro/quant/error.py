"""Quantisation error analysis of the attention datapath.

Quantifies, tensor by tensor, how much error SALO's fixed-point pipeline
introduces relative to float attention — the supporting analysis behind
Section 6.4's claim that Q8.4 inputs and 16-bit outputs do not hurt task
accuracy.  Reports signal-to-quantisation-noise ratio (SQNR) and max/mean
absolute error of the attention output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..baselines.sparse_reference import masked_attention
from ..core.config import HardwareConfig, NumericsConfig
from ..core.salo import SALO
from ..patterns.base import AttentionPattern

__all__ = ["QuantErrorReport", "attention_quant_error", "sqnr_db"]


def sqnr_db(reference: np.ndarray, approx: np.ndarray) -> float:
    """Signal-to-quantisation-noise ratio in dB."""
    reference = np.asarray(reference, dtype=np.float64)
    noise = reference - np.asarray(approx, dtype=np.float64)
    signal_power = float((reference**2).mean())
    noise_power = float((noise**2).mean())
    if noise_power == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)


@dataclass
class QuantErrorReport:
    """Error of the fixed-point datapath vs the float oracle."""

    sqnr_db: float
    max_abs_error: float
    mean_abs_error: float
    output_rms: float

    def acceptable(self, min_sqnr_db: float = 20.0) -> bool:
        """Rule of thumb: >20 dB SQNR leaves classification accuracy intact."""
        return self.sqnr_db >= min_sqnr_db


def attention_quant_error(
    pattern: AttentionPattern,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    heads: int = 1,
    config: Optional[HardwareConfig] = None,
    numerics: Optional[NumericsConfig] = None,
) -> QuantErrorReport:
    """Run the same inputs through float oracle and fixed-point SALO."""
    if config is None:
        config = HardwareConfig(pe_rows=8, pe_cols=8)
    if numerics is not None:
        config = config.with_numerics(numerics)
    salo = SALO(config)
    result = salo.attend(pattern, q, k, v, heads=heads)

    hidden = q.shape[1]
    d = hidden // heads
    ref_parts = []
    for h in range(heads):
        sl = slice(h * d, (h + 1) * d)
        ref_parts.append(masked_attention(q[:, sl], k[:, sl], v[:, sl], pattern))
    ref = np.concatenate(ref_parts, axis=1)

    err = np.abs(result.output - ref)
    return QuantErrorReport(
        sqnr_db=sqnr_db(ref, result.output),
        max_abs_error=float(err.max()),
        mean_abs_error=float(err.mean()),
        output_rms=float(np.sqrt((ref**2).mean())),
    )
