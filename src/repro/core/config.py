"""Hardware configuration of the SALO spatial accelerator (Table 1).

:class:`HardwareConfig` carries both the *architectural* parameters the
data scheduler needs (PE array geometry, global PE rows/columns) and the
*microarchitectural* parameters the timing, energy and synthesis models
need (stage latencies, buffer sizes, clock, bit widths).  The defaults
reproduce the synthesised configuration of Table 1: a 32 x 32 PE array,
one global PE row, one global PE column, a 33-entry weighted-sum module,
16/32/32/32 KB Q/K/V/output buffers, 1 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["HardwareConfig", "NumericsConfig", "ConfigError"]


class ConfigError(ValueError):
    """Raised when a hardware configuration is inconsistent."""


@dataclass(frozen=True)
class NumericsConfig:
    """Arithmetic behaviour of the PE datapath.

    The paper quantises Q, K and V to 8-bit fixed point with 4 fractional
    bits (Section 6.4) and produces 16-bit outputs; the exponential is a
    piece-wise linear approximation driven by slope/intercept LUTs
    (Softermax), and the reciprocal for the softmax denominator is a
    shift-normalise + LUT unit (Figure 5).

    ``quantize=False`` with ``exp_mode='exact'`` turns the datapath into an
    exact float engine — used by tests to isolate scheduling errors from
    arithmetic error.
    """

    quantize: bool = True
    input_bits: int = 8
    input_frac_bits: int = 4
    output_bits: int = 16
    output_frac_bits: int = 8
    acc_bits: int = 32
    exp_mode: str = "pwl"  # 'pwl' (LUT-driven piecewise linear) or 'exact'
    exp_lut_segments: int = 32
    exp_input_lo: float = -16.0
    exp_input_hi: float = 5.0
    exp_frac_bits: int = 8
    # 'pow2' = Softermax-style octave range reduction + shift (default);
    # 'direct' = uniform chords straight over the clamp range (ablation).
    exp_pwl_style: str = "pow2"
    # Direct-style slopes/intercepts need integer range up to
    # ~exp(hi) * |lo|, so they carry fewer fractional bits.
    exp_coeff_frac_bits: int = 6
    recip_lut_bits: int = 7
    recip_mode: str = "lut"  # 'lut' (shift-normalise + LUT) or 'exact'
    prob_frac_bits: int = 15

    def __post_init__(self) -> None:
        if self.exp_mode not in ("pwl", "exact"):
            raise ConfigError(f"exp_mode must be 'pwl' or 'exact', got {self.exp_mode!r}")
        if self.exp_pwl_style not in ("pow2", "direct"):
            raise ConfigError(
                f"exp_pwl_style must be 'pow2' or 'direct', got {self.exp_pwl_style!r}"
            )
        if self.recip_mode not in ("lut", "exact"):
            raise ConfigError(f"recip_mode must be 'lut' or 'exact', got {self.recip_mode!r}")
        if self.exp_input_hi <= self.exp_input_lo:
            raise ConfigError("exp input range is empty")
        if self.exp_lut_segments < 2:
            raise ConfigError("need at least 2 PWL segments")
        for name in ("input_bits", "output_bits", "acc_bits"):
            if getattr(self, name) < 2:
                raise ConfigError(f"{name} must be >= 2")

    @classmethod
    def exact(cls) -> "NumericsConfig":
        """Exact float datapath (no quantisation, exact exp/reciprocal)."""
        return cls(quantize=False, exp_mode="exact", recip_mode="exact")


@dataclass(frozen=True)
class HardwareConfig:
    """SALO accelerator instance.

    Attributes
    ----------
    pe_rows, pe_cols:
        PE array geometry; rows host queries, columns host window offsets.
    global_rows, global_cols:
        Number of global PE rows (global-token queries) and columns
        (global-token keys) attached to the array.
    frequency_hz:
        Clock frequency for cycle → time conversion.
    *_buffer_bytes:
        On-chip SRAM sizes (Table 1).
    stage2_exp_cycles, stage3_inv_cycles, stage3_bcast_cycles,
    weighted_sum_latency:
        Fixed per-pass latencies of the non-systolic stages of the 5-stage
        datapath (Figure 6).
    pack_bands:
        Scheduler optimisation: allow one tile pass to host several narrow
        band segments side by side (raises PE utilisation on multi-band
        patterns such as ViL's 15 x 15 window; see DESIGN.md A1/A5).
    lane_tile:
        Host-execution knob for the compiled functional engine: number of
        execution lanes (``batch x heads``) processed per tile of a
        window job, so each tile's gathered K/V streams stay
        cache-resident across stages 1–5.  ``0`` (default) derives the
        tile from the plan's per-block working set and ``tile_bytes``.
    tile_bytes:
        Target working-set bytes per lane tile when ``lane_tile`` is
        derived (roughly the host's last-level-cache share one tile
        should occupy).
    """

    pe_rows: int = 32
    pe_cols: int = 32
    global_rows: int = 1
    global_cols: int = 1
    frequency_hz: float = 1.0e9
    query_buffer_bytes: int = 16 * 1024
    key_buffer_bytes: int = 32 * 1024
    value_buffer_bytes: int = 32 * 1024
    output_buffer_bytes: int = 32 * 1024
    stage2_exp_cycles: int = 2
    stage3_inv_cycles: int = 4
    stage3_bcast_cycles: int = 1
    weighted_sum_latency: int = 2
    pack_bands: bool = True
    lane_tile: int = 0
    tile_bytes: int = 4 * 1024 * 1024
    numerics: NumericsConfig = field(default_factory=NumericsConfig)

    def __post_init__(self) -> None:
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ConfigError("PE array must be at least 1x1")
        if self.lane_tile < 0:
            raise ConfigError(f"lane_tile must be >= 0, got {self.lane_tile}")
        if self.tile_bytes < 1:
            raise ConfigError(f"tile_bytes must be positive, got {self.tile_bytes}")
        if self.global_rows < 0 or self.global_cols < 0:
            raise ConfigError("global PE counts must be >= 0")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        for name in (
            "query_buffer_bytes",
            "key_buffer_bytes",
            "value_buffer_bytes",
            "output_buffer_bytes",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be positive")

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        """PEs in the main array (excluding global row/column)."""
        return self.pe_rows * self.pe_cols

    @property
    def num_global_pes(self) -> int:
        return self.global_rows * self.pe_cols + self.global_cols * self.pe_rows

    @property
    def total_pes(self) -> int:
        return self.num_pes + self.num_global_pes

    @property
    def weighted_sum_entries(self) -> int:
        """Weighted-sum module lanes: one per PE row plus global rows.

        Table 1 lists 33 for the default 32 x 32 + 1 global row
        configuration.
        """
        return self.pe_rows + self.global_rows

    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    def with_numerics(self, numerics: NumericsConfig) -> "HardwareConfig":
        return replace(self, numerics=numerics)

    def exact(self) -> "HardwareConfig":
        """Copy of this config with an exact float datapath."""
        return self.with_numerics(NumericsConfig.exact())

    def max_global_tokens(self, n: int, window: int) -> int:
        """Paper Section 5.2: bound on global tokens per row/column.

        A single global PE row/column supports up to
        ``min(ceil(n / pe_rows), ceil(w / pe_cols))`` global tokens because
        data splitting streams every input vector through the array that
        many times.
        """
        import math

        per_row = math.ceil(n / self.pe_rows)
        per_col = math.ceil(max(1, window) / self.pe_cols)
        bound = min(per_row, per_col)
        # A global token needs both a row slot and a column slot.
        return bound * min(self.global_rows, self.global_cols)
