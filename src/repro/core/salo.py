"""Top-level SALO engine: schedule, simulate, account (Figure 3).

:class:`SALO` wires the framework together the way Figure 3 draws it: the
data scheduler turns pattern + hardware metadata into an execution plan;
the spatial accelerator executes it.  Two entry points:

* :meth:`SALO.attend` — run real data through the functional engine and
  return outputs plus full statistics;
* :meth:`SALO.estimate` — timing/energy/traffic only (no data), fast
  enough for the paper-scale workloads driving Figures 7a/7b.

Serving fast path
-----------------
Plans are structural: two calls with the same pattern geometry, hardware
config and head layout produce the same plan, the same compiled index
tensors and the same cost-model statistics.  :class:`SALO` therefore
keeps an LRU cache keyed by ``(pattern structure, config, heads,
head_dim)``; on a hit, :meth:`attend` skips scheduling, plan compilation,
buffer checking and the cost models entirely and goes straight to the
batched functional engine — the repeated-traffic scenario a deployed
simulator serves.  Different :class:`SALO` instances (e.g. different
hardware configs) never share cache entries because the config is part
of the key.  ``plan_cache_size=0`` disables caching; every cacheable
call then counts as a miss so hit-rate accounting stays meaningful.
``cache_info()`` exposes the counters.

Cross-request batching
----------------------
:meth:`attend` also accepts a leading batch axis ``(b, n, hidden)``: a
batch of independent same-pattern sequences executed by a single engine
dispatch (bit-identical to ``b`` separate calls).  The
:mod:`repro.serving` layer builds such batches from queued requests —
request → length bucket → batch → engine — and this is its entry point.

Engine backends
---------------
The execution engine behind :meth:`attend` is selected by name: the
default ``"functional"`` backend runs the compiled batched path,
``"functional-legacy"`` runs the per-pass reference path (what
``FunctionalEngine(use_compiled=False)`` used to spell), and
``"systolic"`` runs the cycle-accurate micro-simulator (small
configurations only; no batch axis, no ``valid_lens``).  All three share
the scheduler, the plan cache and the cost models — only the executor
differs — and all three are bit-identical on their common domain.  The
:mod:`repro.api` registry builds on this axis and adds the non-SALO
baselines (dense, sparse-reference, Sanger) behind the same protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..accelerator.buffers import BufferFit, check_buffer_fit, plan_traffic
from ..accelerator.energy import EnergyTable, plan_energy
from ..accelerator.functional import FunctionalEngine, FunctionalResult
from ..accelerator.synthesis import synthesize
from ..accelerator.timing import plan_timing
from ..patterns.base import AttentionPattern
from ..scheduler.plan import ExecutionPlan
from ..scheduler.scheduler import DataScheduler
from .config import HardwareConfig
from .stats import RunStats

__all__ = ["SALO", "AttentionResult", "pattern_structure_key", "ENGINE_BACKENDS"]


def _make_functional(plan: ExecutionPlan) -> FunctionalEngine:
    return FunctionalEngine(plan)


def _make_legacy(plan: ExecutionPlan) -> FunctionalEngine:
    return FunctionalEngine(plan, mode="legacy")


def _make_systolic(plan: ExecutionPlan):
    from ..accelerator.systolic import SystolicEngine

    return SystolicEngine(plan)


def _make_jit(plan: ExecutionPlan):
    from ..accelerator.jit import JitFunctionalEngine

    return JitFunctionalEngine(plan)


#: Plan-executing engine backends a :class:`SALO` instance can run.
#: name -> (engine factory, supports_batch, supports_valid_lens).  The
#: :mod:`repro.api` registry derives its SALO-backed adapters (and their
#: capability flags) from this table, so the two cannot drift.
ENGINE_BACKENDS = {
    "functional": (_make_functional, True, True),
    "functional-legacy": (_make_legacy, True, True),
    "systolic": (_make_systolic, False, False),
}

# The numba-fused engine is strictly optional: it only exists (here and
# in the repro.api registry, which derives from this table) when numba
# is importable, with the same capability flags as ``functional`` — the
# parity suite holds it to bit-identity with the rest of the quantised
# engine group.
from ..accelerator.jit import HAVE_NUMBA as _HAVE_NUMBA  # noqa: E402

if _HAVE_NUMBA:  # pragma: no cover - requires an image with numba
    ENGINE_BACKENDS["functional-jit"] = (_make_jit, True, True)


def pattern_structure_key(pattern: AttentionPattern) -> Optional[Tuple]:
    """Structural identity of a pattern, or ``None`` when opaque.

    Two patterns with equal keys are guaranteed to schedule to the same
    execution plan (given equal hardware config and head layout).  Both
    the SALO plan cache and the serving layer's batch grouping derive
    their keys from this single definition, so they can never drift
    apart.
    """
    bands = pattern.bands()
    if bands is None:
        return None
    return (pattern.n, tuple(bands), tuple(pattern.global_tokens()))


@dataclass
class AttentionResult:
    """Output of :meth:`SALO.attend`.

    ``stats`` is structural (per single sequence of the plan); for a
    batched call the accelerator would run the plan once per sequence,
    so whole-batch latency scales the per-sequence timing by ``b``.
    """

    output: np.ndarray
    stats: RunStats
    plan: ExecutionPlan
    functional: FunctionalResult


@dataclass
class _CacheEntry:
    """Everything reusable across identical ``attend``/``estimate`` calls.

    The engine is created lazily on the first ``attend`` so cost-model
    only paths (``schedule``/``estimate``) never build the execution
    schedule.
    """

    plan: ExecutionPlan
    engine: Optional[object] = None  # FunctionalEngine or SystolicEngine
    stats: Optional[RunStats] = None
    fit: Optional[BufferFit] = None


class SALO:
    """A SALO accelerator instance with its data scheduler.

    Parameters
    ----------
    config:
        Hardware configuration; defaults to the synthesised Table 1
        instance (32 x 32 PEs, one global row/column, 1 GHz, Q8.4 inputs).
    energy_table:
        45 nm per-event energy constants for the energy model.
    strict_global_bound:
        Enforce the Section 5.2 global-token bound during scheduling.
    plan_cache_size:
        Maximum number of compiled plans retained by the LRU serving
        cache; ``0`` disables caching.
    backend:
        Name of the plan-executing engine (see :data:`ENGINE_BACKENDS`):
        ``"functional"`` (compiled, batched — the default),
        ``"functional-legacy"`` (per-pass reference) or ``"systolic"``
        (cycle-accurate micro-simulator; single sequence only).
    """

    def __init__(
        self,
        config: Optional[HardwareConfig] = None,
        energy_table: EnergyTable = EnergyTable(),
        strict_global_bound: bool = True,
        plan_cache_size: int = 32,
        backend: str = "functional",
    ) -> None:
        if backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {backend!r}; known: {sorted(ENGINE_BACKENDS)}"
            )
        self.config = config if config is not None else HardwareConfig()
        self.energy_table = energy_table
        self.backend = backend
        self.scheduler = DataScheduler(self.config, strict_global_bound=strict_global_bound)
        self._area_mm2 = synthesize(self.config).area_mm2
        self.plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # per padded-length accounting: n -> [hits, misses].  Decode
        # compiles per length bucket, so these counters are what proves
        # (or disproves) amortisation across a bucket's steps.
        self._bucket_counters: "OrderedDict[int, list]" = OrderedDict()

    #: SALO schedules band/global structure; mask-only patterns are
    #: unservable (the oracle backends of :mod:`repro.api` set False).
    needs_structure = True

    @property
    def supports_batch(self) -> bool:
        """Whether this instance's engine accepts a leading batch axis."""
        return ENGINE_BACKENDS[self.backend][1]

    @property
    def supports_valid_lens(self) -> bool:
        """Whether this instance's engine masks padded tails."""
        return ENGINE_BACKENDS[self.backend][2]

    # ------------------------------------------------------------------
    def _plan_key(
        self, pattern: AttentionPattern, heads: int, head_dim: int
    ) -> Optional[Tuple]:
        """Structural cache key, or ``None`` when the pattern is opaque.

        A plan depends only on the band/global structure of the pattern
        (:func:`pattern_structure_key`), the hardware config and the head
        layout, so the key captures exactly those.  The config is a
        frozen dataclass and participates in equality, which makes
        entries from different configurations (or a replaced ``config``)
        unreachable rather than stale.
        """
        structure = pattern_structure_key(pattern)
        if structure is None:
            return None
        return structure + (self.config, heads, head_dim)

    def _lookup(
        self, pattern: AttentionPattern, heads: int, head_dim: int
    ) -> Tuple[Optional[Tuple], Optional[_CacheEntry]]:
        key = self._plan_key(pattern, heads, head_dim)
        if key is None:
            return key, None  # opaque pattern: uncacheable, not a miss
        if self.plan_cache_size <= 0:
            self.plan_cache_misses += 1
            self._count_bucket(pattern.n, hit=False)
            return key, None
        entry = self._plan_cache.get(key)
        if entry is not None:
            self._plan_cache.move_to_end(key)
            self.plan_cache_hits += 1
            self._count_bucket(pattern.n, hit=True)
            return key, entry
        self.plan_cache_misses += 1
        self._count_bucket(pattern.n, hit=False)
        return key, None

    def _count_bucket(self, n: int, hit: bool) -> None:
        counters = self._bucket_counters.get(n)
        if counters is None:
            counters = [0, 0]
            self._bucket_counters[n] = counters
        counters[0 if hit else 1] += 1

    def _store(self, key: Optional[Tuple], entry: _CacheEntry) -> None:
        if key is None or self.plan_cache_size <= 0:
            return
        self._plan_cache[key] = entry
        while len(self._plan_cache) > self.plan_cache_size:
            self._plan_cache.popitem(last=False)

    def _entry_for(
        self, pattern: AttentionPattern, heads: int, head_dim: int
    ) -> _CacheEntry:
        """Cached (plan, engine) for the pattern, compiling on a miss."""
        key, entry = self._lookup(pattern, heads, head_dim)
        if entry is None:
            plan = self.scheduler.schedule(pattern, heads=heads, head_dim=head_dim)
            entry = _CacheEntry(plan=plan)
            self._store(key, entry)
        return entry

    def clear_plan_cache(self) -> None:
        """Drop every cached plan (hit/miss counters are kept)."""
        self._plan_cache.clear()

    def cache_info(self) -> dict:
        """Serving-cache observability: size, capacity and hit statistics.

        ``buckets`` breaks hits/misses down by padded pattern length
        (the decode length bucket): a healthy decode run shows exactly
        one miss per (bucket, structure) and hits for every warm step.
        Only cacheable (structured) lookups are counted, mirroring the
        aggregate counters.
        """
        total = self.plan_cache_hits + self.plan_cache_misses
        return {
            "size": len(self._plan_cache),
            "capacity": self.plan_cache_size,
            "hits": self.plan_cache_hits,
            "misses": self.plan_cache_misses,
            "hit_rate": self.plan_cache_hits / total if total else 0.0,
            "buckets": {
                n: {"hits": h, "misses": m}
                for n, (h, m) in sorted(self._bucket_counters.items())
            },
        }

    # ------------------------------------------------------------------
    def schedule(
        self, pattern: AttentionPattern, heads: int = 1, head_dim: int = 64
    ) -> ExecutionPlan:
        """Run the data scheduler (through the plan cache)."""
        return self._entry_for(pattern, heads, head_dim).plan

    def stats_for(self, plan: ExecutionPlan) -> RunStats:
        """Timing, occupancy, traffic and energy for a plan."""
        return RunStats(
            timing=plan_timing(plan),
            plan=plan.stats(),
            traffic=plan_traffic(plan),
            energy=plan_energy(plan, table=self.energy_table, area_mm2=self._area_mm2),
        )

    def estimate(
        self, pattern: AttentionPattern, heads: int = 1, head_dim: int = 64
    ) -> RunStats:
        """Schedule + performance model without executing data."""
        entry = self._entry_for(pattern, heads, head_dim)
        if entry.stats is None:
            entry.stats = self.stats_for(entry.plan)
        return entry.stats

    def attend(
        self,
        pattern: AttentionPattern,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        heads: int = 1,
        scale: Optional[float] = None,
        check_buffers: bool = True,
        valid_lens: Optional[np.ndarray] = None,
    ) -> AttentionResult:
        """Compute sparse attention on the accelerator model.

        ``q``, ``k``, ``v`` have shape ``(n, hidden)`` — or, for a batch
        of independent same-pattern sequences, ``(b, n, hidden)`` — with
        ``hidden`` divisible by ``heads``; the output concatenates
        per-head results as in Figure 1 and follows the input rank.
        Batched outputs are bit-identical to ``b`` single-sequence calls.
        Repeated calls with the same pattern structure hit the plan cache
        and skip scheduling, compilation, buffer checks and the cost
        models (see module docstring).

        ``valid_lens`` (one int per sequence) marks zero-padded tails for
        cross-length batches: keys beyond a sequence's valid length are
        masked out of its softmax and the caller slices outputs back to
        the true lengths (the serving layer's ``pad_to_bucket`` mode).
        ``stats`` always describe the plan at the padded length.
        """
        q = np.asarray(q, dtype=np.float64)
        if q.ndim not in (2, 3):
            raise ValueError(f"q must be (n, hidden) or (b, n, hidden), got shape {q.shape}")
        n, hidden = q.shape[-2:]
        if hidden % heads != 0:
            raise ValueError(f"hidden size {hidden} not divisible by heads {heads}")
        head_dim = hidden // heads
        entry = self._entry_for(pattern, heads, head_dim)
        plan = entry.plan
        if check_buffers:
            if entry.fit is None:
                entry.fit = check_buffer_fit(plan)
            if not entry.fit.fits:
                raise ValueError(
                    "workload does not fit the on-chip buffers: "
                    + "; ".join(entry.fit.violations)
                )
        if entry.engine is None:
            entry.engine = ENGINE_BACKENDS[self.backend][0](plan)
        functional = entry.engine.run(q, k, v, scale=scale, valid_lens=valid_lens)
        if entry.stats is None:
            entry.stats = self.stats_for(plan)
        return AttentionResult(
            output=functional.output,
            stats=entry.stats,
            plan=plan,
            functional=functional,
        )
