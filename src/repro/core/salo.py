"""Top-level SALO engine: schedule, simulate, account (Figure 3).

:class:`SALO` wires the framework together the way Figure 3 draws it: the
data scheduler turns pattern + hardware metadata into an execution plan;
the spatial accelerator executes it.  Two entry points:

* :meth:`SALO.attend` — run real data through the functional engine and
  return outputs plus full statistics;
* :meth:`SALO.estimate` — timing/energy/traffic only (no data), fast
  enough for the paper-scale workloads driving Figures 7a/7b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..accelerator.buffers import check_buffer_fit, plan_traffic
from ..accelerator.energy import EnergyTable, plan_energy
from ..accelerator.functional import FunctionalEngine, FunctionalResult
from ..accelerator.synthesis import synthesize
from ..accelerator.timing import plan_timing
from ..patterns.base import AttentionPattern
from ..scheduler.plan import ExecutionPlan
from ..scheduler.scheduler import DataScheduler
from .config import HardwareConfig
from .stats import RunStats

__all__ = ["SALO", "AttentionResult"]


@dataclass
class AttentionResult:
    """Output of :meth:`SALO.attend`."""

    output: np.ndarray
    stats: RunStats
    plan: ExecutionPlan
    functional: FunctionalResult


class SALO:
    """A SALO accelerator instance with its data scheduler.

    Parameters
    ----------
    config:
        Hardware configuration; defaults to the synthesised Table 1
        instance (32 x 32 PEs, one global row/column, 1 GHz, Q8.4 inputs).
    energy_table:
        45 nm per-event energy constants for the energy model.
    strict_global_bound:
        Enforce the Section 5.2 global-token bound during scheduling.
    """

    def __init__(
        self,
        config: Optional[HardwareConfig] = None,
        energy_table: EnergyTable = EnergyTable(),
        strict_global_bound: bool = True,
    ) -> None:
        self.config = config if config is not None else HardwareConfig()
        self.energy_table = energy_table
        self.scheduler = DataScheduler(self.config, strict_global_bound=strict_global_bound)
        self._area_mm2 = synthesize(self.config).area_mm2

    # ------------------------------------------------------------------
    def schedule(
        self, pattern: AttentionPattern, heads: int = 1, head_dim: int = 64
    ) -> ExecutionPlan:
        """Run only the data scheduler."""
        return self.scheduler.schedule(pattern, heads=heads, head_dim=head_dim)

    def stats_for(self, plan: ExecutionPlan) -> RunStats:
        """Timing, occupancy, traffic and energy for a plan."""
        return RunStats(
            timing=plan_timing(plan),
            plan=plan.stats(),
            traffic=plan_traffic(plan),
            energy=plan_energy(plan, table=self.energy_table, area_mm2=self._area_mm2),
        )

    def estimate(
        self, pattern: AttentionPattern, heads: int = 1, head_dim: int = 64
    ) -> RunStats:
        """Schedule + performance model without executing data."""
        return self.stats_for(self.schedule(pattern, heads=heads, head_dim=head_dim))

    def attend(
        self,
        pattern: AttentionPattern,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        heads: int = 1,
        scale: Optional[float] = None,
        check_buffers: bool = True,
    ) -> AttentionResult:
        """Compute sparse attention on the accelerator model.

        ``q``, ``k``, ``v`` have shape ``(n, hidden)`` with ``hidden``
        divisible by ``heads``; the output concatenates per-head results as
        in Figure 1.
        """
        q = np.asarray(q, dtype=np.float64)
        n, hidden = q.shape
        if hidden % heads != 0:
            raise ValueError(f"hidden size {hidden} not divisible by heads {heads}")
        head_dim = hidden // heads
        plan = self.schedule(pattern, heads=heads, head_dim=head_dim)
        if check_buffers:
            fit = check_buffer_fit(plan)
            if not fit.fits:
                raise ValueError(
                    "workload does not fit the on-chip buffers: "
                    + "; ".join(fit.violations)
                )
        engine = FunctionalEngine(plan)
        functional = engine.run(q, k, v, scale=scale)
        return AttentionResult(
            output=functional.output,
            stats=self.stats_for(plan),
            plan=plan,
            functional=functional,
        )
