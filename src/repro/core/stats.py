"""Aggregate run statistics for a SALO execution."""

from __future__ import annotations

from dataclasses import dataclass

from ..accelerator.buffers import TrafficResult
from ..accelerator.energy import EnergyResult
from ..accelerator.timing import TimingResult
from ..scheduler.plan import PlanStats

__all__ = ["RunStats"]


@dataclass
class RunStats:
    """Latency, occupancy, traffic and energy of one attention execution."""

    timing: TimingResult
    plan: PlanStats
    traffic: TrafficResult
    energy: EnergyResult

    @property
    def latency_s(self) -> float:
        return self.timing.seconds

    @property
    def latency_ms(self) -> float:
        return self.timing.seconds * 1e3

    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def utilization(self) -> float:
        return self.timing.utilization

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"latency: {self.latency_ms:.4f} ms ({self.cycles} cycles)",
            f"passes: {self.timing.num_passes} ({self.plan.num_passes} structural)",
            f"PE utilization: {self.utilization:.1%}",
            f"MACs: {self.timing.total_macs:,} "
            f"({self.timing.effective_macs_per_cycle:.1f}/cycle)",
            f"DRAM traffic: {self.traffic.dram_total / 1024:.1f} KiB "
            f"(kv reuse {self.traffic.kv_reuse_factor:.1f}x)",
            f"energy: {self.energy_j * 1e3:.4f} mJ "
            f"(avg power {self.energy.average_power_w * 1e3:.1f} mW)",
        ]
        return "\n".join(lines)
