"""SALO core: hardware configuration and the top-level engine."""

from .config import ConfigError, HardwareConfig, NumericsConfig

__all__ = ["HardwareConfig", "NumericsConfig", "ConfigError"]
