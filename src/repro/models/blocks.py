"""Inference-only transformer blocks surrounding the accelerated attention.

Figure 3 of the paper: "the hardware output will be gathered and regarded
as the input of next block like FFN in Transformer".  These numpy blocks
implement that surrounding model — projections, residuals, layer norms and
feed-forward — so a whole encoder layer (or stack) can run with SALO
computing every attention.  Weights are plain arrays (inference only; the
trainable substrate for Table 3 lives in :mod:`repro.nn`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["LinearParams", "LayerNormParams", "FfnParams", "gelu", "init_linear", "init_layer_norm", "init_ffn"]


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximation GELU (BERT/Longformer convention)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


@dataclass
class LinearParams:
    """Affine projection ``y = x W + b``."""

    weight: np.ndarray  # (in, out)
    bias: np.ndarray  # (out,)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight + self.bias

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]


@dataclass
class LayerNormParams:
    """Layer normalisation over the last axis."""

    gamma: np.ndarray
    beta: np.ndarray
    eps: float = 1e-5

    def __call__(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mu) / np.sqrt(var + self.eps) * self.gamma + self.beta


@dataclass
class FfnParams:
    """Transformer feed-forward: Linear → GELU → Linear."""

    fc1: LinearParams
    fc2: LinearParams

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fc2(gelu(self.fc1(x)))

    @property
    def hidden(self) -> int:
        return self.fc1.out_features


def init_linear(rng: np.random.Generator, fan_in: int, fan_out: int) -> LinearParams:
    std = (2.0 / (fan_in + fan_out)) ** 0.5
    return LinearParams(
        weight=rng.standard_normal((fan_in, fan_out)) * std,
        bias=np.zeros(fan_out),
    )


def init_layer_norm(dim: int) -> LayerNormParams:
    return LayerNormParams(gamma=np.ones(dim), beta=np.zeros(dim))


def init_ffn(rng: np.random.Generator, dim: int, hidden: int) -> FfnParams:
    return FfnParams(fc1=init_linear(rng, dim, hidden), fc2=init_linear(rng, hidden, dim))
