"""End-to-end transformer encoder layers with SALO-accelerated attention.

:class:`SparseEncoderLayer` is one pre-LN transformer encoder layer whose
multi-head attention runs on the SALO accelerator model (functional
engine), with the Q/K/V/output projections, residuals and FFN computed on
the host — the system integration Figure 3 sketches.  A latency model
combines the accelerator cycles with a host-side projection/FFN estimate
so that whole-layer (rather than attention-only) performance can be
studied; the paper's evaluation isolates the attention, so the attention
split is also reported separately.

Both the layer and the stack accept a leading batch axis ``(b, n, dim)``:
the host blocks broadcast over it and the attention executes as one
batched SALO dispatch per layer, the serving-path configuration for
same-length traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.salo import SALO, AttentionResult
from ..patterns.base import AttentionPattern
from .blocks import (
    FfnParams,
    LayerNormParams,
    LinearParams,
    init_ffn,
    init_layer_norm,
    init_linear,
)

__all__ = ["SparseEncoderLayer", "SparseEncoder", "LayerRunResult"]


@dataclass
class LayerRunResult:
    """Output and accounting of one encoder-layer forward.

    For batched forwards both sides of the accounting scale with the
    batch: ``host_flops`` covers all ``batch`` sequences and
    ``attention_seconds`` multiplies the plan's per-sequence latency by
    ``batch`` (the accelerator runs the plan once per sequence), so
    Amdahl-style splits stay consistent at any batch size.
    """

    output: np.ndarray
    attention: AttentionResult
    host_flops: int
    batch: int = 1

    @property
    def attention_seconds(self) -> float:
        return self.batch * self.attention.stats.latency_s


class SparseEncoderLayer:
    """Pre-LN encoder layer: x + Attn(LN(x)); x + FFN(LN(x)).

    Attention — including softmax and both matmuls — executes on the SALO
    model; projections stay on the host, matching the system boundary of
    Figure 3 (the accelerator consumes Q/K/V and emits attention outputs).
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        pattern: AttentionPattern,
        salo: Optional[SALO] = None,
        ffn_hidden: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.heads = heads
        self.pattern = pattern
        self.salo = salo if salo is not None else SALO()
        self.ln1 = init_layer_norm(dim)
        self.ln2 = init_layer_norm(dim)
        self.wq = init_linear(rng, dim, dim)
        self.wk = init_linear(rng, dim, dim)
        self.wv = init_linear(rng, dim, dim)
        self.wo = init_linear(rng, dim, dim)
        self.ffn = init_ffn(rng, dim, ffn_hidden if ffn_hidden is not None else 4 * dim)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> LayerRunResult:
        """(n, dim) → (n, dim) through accelerator + host blocks.

        Also accepts a batch of same-length sequences ``(b, n, dim)``;
        the whole batch then runs as one batched accelerator dispatch
        (bit-identical to per-sequence forwards) and the output keeps
        the leading batch axis.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim not in (2, 3):
            raise ValueError(f"input must be (n, dim) or (b, n, dim), got shape {x.shape}")
        n, dim = x.shape[-2:]
        if dim != self.dim:
            raise ValueError(f"layer is dim={self.dim}, input has dim={dim}")
        h = self.ln1(x)
        attn = self.salo.attend(
            self.pattern, self.wq(h), self.wk(h), self.wv(h), heads=self.heads
        )
        x = x + self.wo(attn.output)
        x = x + self.ffn(self.ln2(x))
        batch = x.shape[0] if x.ndim == 3 else 1
        host_flops = batch * self.host_flops(n)
        return LayerRunResult(output=x, attention=attn, host_flops=host_flops, batch=batch)

    def host_flops(self, n: int) -> int:
        """Multiply-accumulate count of the host-side blocks."""
        proj = 4 * n * self.dim * self.dim  # wq, wk, wv, wo
        ffn = 2 * n * self.dim * self.ffn.hidden
        return 2 * (proj + ffn)

    def layer_latency_s(self, n: int, host_gflops: float = 50.0) -> dict:
        """Whole-layer latency estimate: SALO attention + host blocks.

        ``host_gflops`` models the projection/FFN provider (a modest GEMM
        engine); the paper accelerates only the attention, so this shows
        where the remaining time goes (Amdahl view).
        """
        stats = self.salo.estimate(self.pattern, heads=self.heads, head_dim=self.dim // self.heads)
        host_s = self.host_flops(n) / (host_gflops * 1e9)
        return {
            "attention_s": stats.latency_s,
            "host_s": host_s,
            "total_s": stats.latency_s + host_s,
            "attention_fraction": stats.latency_s / (stats.latency_s + host_s),
        }


class SparseEncoder:
    """A stack of :class:`SparseEncoderLayer` sharing one SALO instance."""

    def __init__(
        self,
        layers: int,
        dim: int,
        heads: int,
        pattern: AttentionPattern,
        salo: Optional[SALO] = None,
        seed: int = 0,
    ) -> None:
        if layers < 1:
            raise ValueError("need at least one layer")
        self.salo = salo if salo is not None else SALO()
        self.layers: List[SparseEncoderLayer] = [
            SparseEncoderLayer(dim, heads, pattern, salo=self.salo, seed=seed + i)
            for i in range(layers)
        ]

    def forward(self, x: np.ndarray) -> List[LayerRunResult]:
        """Run the stack on ``(n, dim)`` or batched ``(b, n, dim)`` input;
        returns per-layer results (last one holds the final hidden
        states)."""
        results: List[LayerRunResult] = []
        for layer in self.layers:
            res = layer.forward(x)
            results.append(res)
            x = res.output
        return results

    def total_attention_seconds(self, results: List[LayerRunResult]) -> float:
        return sum(r.attention_seconds for r in results)
