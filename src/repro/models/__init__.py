"""End-to-end inference models built around SALO-accelerated attention."""

from .blocks import (
    FfnParams,
    LayerNormParams,
    LinearParams,
    gelu,
    init_ffn,
    init_layer_norm,
    init_linear,
)
from .encoder import LayerRunResult, SparseEncoder, SparseEncoderLayer

__all__ = [
    "LinearParams",
    "LayerNormParams",
    "FfnParams",
    "gelu",
    "init_linear",
    "init_layer_norm",
    "init_ffn",
    "SparseEncoderLayer",
    "SparseEncoder",
    "LayerRunResult",
]
