"""repro.api — the unified runtime surface of the reproduction.

One typed protocol (:class:`AttentionBackend` + frozen
:class:`BackendCapabilities`), one string-keyed registry
(:func:`register_backend` / :func:`get_backend` / :func:`list_backends`)
and one facade (:class:`Runtime` configured by a frozen
:class:`RuntimeConfig`) over every execution engine and baseline model
in the repo.  Backend choice — previously a scatter of constructor
kwargs (``use_compiled``), hand-picked baseline functions and ad-hoc
CLI wiring — is a single extensible axis: the serving session, the
cluster simulator, the benches and the CLI all select backends by
registered name, and a new backend registered here shows up in all of
them at once.

Quickstart::

    from repro.api import Runtime, list_backends

    print(list_backends())
    # ['dense', 'functional', 'functional-legacy', 'sanger',
    #  'sparse-reference', 'systolic']

    rt = Runtime(backend="functional")
    result = rt.attend(pattern, q, k, v, heads=12)  # typed AttendResult
    cost = rt.estimate(pattern, heads=12)           # typed EstimateResult
"""

from .protocol import (
    AttendResult,
    AttentionBackend,
    BackendCapabilities,
    CapabilityError,
    EstimateResult,
)
from .registry import (
    BackendSpec,
    backend_spec,
    get_backend,
    list_backends,
    register_backend,
)
from .runtime import Runtime, RuntimeConfig

# Importing the adapters registers the built-in backends.
from . import backends as _backends  # noqa: F401
from .backends import engine_factory

__all__ = [
    "AttendResult",
    "AttentionBackend",
    "BackendCapabilities",
    "BackendSpec",
    "CapabilityError",
    "EstimateResult",
    "Runtime",
    "RuntimeConfig",
    "backend_spec",
    "engine_factory",
    "get_backend",
    "list_backends",
    "register_backend",
]
