"""The :class:`Runtime` facade: pattern -> plan -> backend -> typed result.

One object, one frozen config, one entry surface.  Where callers used to
juggle ``SALO(...)`` constructor kwargs, ``use_compiled`` booleans and
hand-picked baseline functions, a :class:`Runtime` is configured once by
a :class:`RuntimeConfig` (hashable, comparable, loggable) and then
serves :meth:`Runtime.attend` / :meth:`Runtime.estimate` against
whichever registered backend the config names::

    from repro.api import Runtime, RuntimeConfig

    rt = Runtime(RuntimeConfig(backend="functional"))
    result = rt.attend(pattern, q, k, v, heads=12)   # AttendResult
    cost = rt.estimate(pattern, heads=12, head_dim=64)  # EstimateResult

    Runtime(backend="dense").attend(pattern, q, k, v)   # kwarg shorthand

The facade adds nothing on the hot path beyond one attribute hop — the
``runtime_dispatch_overhead`` benchmark holds it to <5% over a direct
``SALO.attend`` call — and the backend instance is built once at
construction, so its warm state (plan caches) persists across calls
exactly as a bare engine's would.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..core.config import HardwareConfig
from ..patterns.base import AttentionPattern
from .protocol import AttendResult, AttentionBackend, BackendCapabilities, EstimateResult
from .registry import backend_spec

__all__ = ["Runtime", "RuntimeConfig"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Frozen configuration of one :class:`Runtime`.

    ``backend``
        Registered backend name (see
        :func:`repro.api.list_backends`).
    ``hardware``
        Hardware configuration for SALO-backed engines (``None``: the
        synthesised Table 1 instance).  Baseline backends that model no
        hardware ignore it (except Sanger, which scales to the published
        64 x 16 array regardless).
    ``plan_cache_size`` / ``strict_global_bound`` / ``check_buffers``
        Forwarded to the underlying SALO instance for engine backends;
        inert for oracle/model backends.
    """

    backend: str = "functional"
    hardware: Optional[HardwareConfig] = None
    plan_cache_size: int = 32
    strict_global_bound: bool = True
    check_buffers: bool = True


class Runtime:
    """Serve attention calls through one configured, registered backend."""

    def __init__(self, config: Optional[RuntimeConfig] = None, **overrides) -> None:
        """Build the runtime (and its backend instance) once.

        ``overrides`` are :class:`RuntimeConfig` field shorthands:
        ``Runtime(backend="systolic", hardware=cfg)`` is
        ``Runtime(RuntimeConfig(backend="systolic", hardware=cfg))``.
        """
        if config is None:
            config = RuntimeConfig()
        if overrides:
            config = replace(config, **overrides)
        self.config = config
        self._spec = backend_spec(config.backend)
        self.backend: AttentionBackend = self._spec.factory(config)

    # ------------------------------------------------------------------
    @property
    def capabilities(self) -> BackendCapabilities:
        return self.backend.capabilities

    def attend(
        self,
        pattern: AttentionPattern,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        heads: int = 1,
        scale: Optional[float] = None,
        valid_lens: Optional[np.ndarray] = None,
    ) -> AttendResult:
        """Execute sparse attention on the configured backend."""
        return self.backend.attend(
            pattern, q, k, v, heads=heads, scale=scale, valid_lens=valid_lens
        )

    def estimate(
        self, pattern: AttentionPattern, heads: int = 1, head_dim: int = 64
    ) -> EstimateResult:
        """Run the configured backend's cost model."""
        return self.backend.estimate(pattern, heads=heads, head_dim=head_dim)

    def warm(self, patterns, heads: int = 1, head_dim: int = 64) -> dict:
        """Pre-compile the plans for ``patterns`` (one tiny dispatch each).

        The plan cache keys on pattern structure, head count and head
        dim — not batch size or data — so a single zero-operand dispatch
        per pattern leaves the cache warm for any later batch of the
        same shape.  Worker processes call this during start-up so
        steady-state traffic never pays a cold compile; returns
        :meth:`cache_info` after warming.
        """
        hidden = heads * head_dim
        for pattern in patterns:
            zeros = np.zeros((pattern.n, hidden))
            self.attend(pattern, zeros, zeros, zeros, heads=heads)
        return self.cache_info()

    def cache_info(self) -> dict:
        """The backend's plan-cache counters (zeros when it has none)."""
        return self.backend.cache_info()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Runtime(backend={self.config.backend!r})"
