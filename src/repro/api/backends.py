"""Built-in backend adapters: every engine in the repo, one protocol.

Six backends register on import (``repro.api`` imports this module):

======================  ============================================
``functional``          Compiled batched SALO engine (the default).
``functional-legacy``   Per-pass SALO reference path (previously
                        spelled ``FunctionalEngine(use_compiled=False)``).
``systolic``            Cycle-accurate micro-simulator (small configs,
                        one sequence at a time).
``dense``               Dense masked-score float64 oracle, with the
                        paper's calibrated GTX 1080Ti dense-attention
                        latency model as its cost model.
``sparse-reference``    Row-streaming exact float64 oracle (O(n·w)
                        memory; serves mask-only patterns too).
``sanger``              Sanger (MICRO 2021) analytic performance model
                        — estimates only, never executes.
======================  ============================================

The three SALO-backed adapters derive their engine factory and their
batch/valid-lens capability flags from
:data:`repro.core.salo.ENGINE_BACKENDS`, so the engine table and the
registry cannot drift apart.  All three are ``bit_exact``: they share
one fixed-point datapath and must return identical arrays.  The oracles
compute exact float64 attention instead — they agree with the SALO
group only to quantisation tolerance (or to float round-off under an
``exact()`` hardware config), which is precisely what the parity suite
asserts.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..baselines.cpu_gpu_model import GPU_1080TI
from ..baselines.sanger import SangerModel
from ..baselines.sparse_reference import masked_attention, sparse_attention_rowwise
from ..core.salo import ENGINE_BACKENDS, SALO
from ..patterns.base import AttentionPattern
from .protocol import (
    AttendResult,
    AttentionBackend,
    BackendCapabilities,
    CapabilityError,
    EstimateResult,
)
from .registry import register_backend

__all__ = [
    "SALOEngineBackend",
    "OracleBackend",
    "DenseOracleBackend",
    "SparseReferenceBackend",
    "SangerBackend",
    "engine_factory",
]


class SALOEngineBackend(AttentionBackend):
    """Adapter over a :class:`~repro.core.salo.SALO` instance.

    One adapter class serves all three plan-executing engine backends;
    the engine choice is the wrapped instance's ``backend`` name.  The
    SALO plan cache, buffer checks and cost models ride along unchanged,
    so wrapping adds one attribute hop and a dataclass construction per
    call.
    """

    def __init__(self, name: str, capabilities: BackendCapabilities, salo: SALO) -> None:
        self.name = name
        self.capabilities = capabilities
        self.salo = salo
        self._check_buffers = True

    def _attend(self, pattern, q, k, v, heads, scale, valid_lens) -> AttendResult:
        result = self.salo.attend(
            pattern,
            q,
            k,
            v,
            heads=heads,
            scale=scale,
            check_buffers=self._check_buffers,
            valid_lens=valid_lens,
        )
        return AttendResult(
            output=result.output, backend=self.name, stats=result.stats, raw=result
        )

    def _estimate(self, pattern, heads, head_dim) -> EstimateResult:
        stats = self.salo.estimate(pattern, heads=heads, head_dim=head_dim)
        return EstimateResult(
            latency_s=stats.latency_s,
            backend=self.name,
            cycles=stats.cycles,
            energy_j=stats.energy_j,
            utilization=stats.utilization,
            raw=stats,
        )

    def cache_info(self) -> dict:
        return self.salo.cache_info()


class OracleBackend(AttentionBackend):
    """Shared shell of the exact float64 oracles.

    Subclasses provide ``_single(pattern, q, k, v, scale)`` for one
    ``(n, d)`` head; the shell handles multi-head splitting and the
    batch loop (oracles advertise ``supports_batch`` for convenience,
    implemented as a per-sequence loop — they are correctness
    references, not throughput engines).
    """

    def _single(
        self, pattern: AttentionPattern, q, k, v, scale: Optional[float]
    ) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def _sequence(self, pattern, q, k, v, heads: int, scale: Optional[float]) -> np.ndarray:
        hidden = q.shape[1]
        if heads < 1 or hidden % heads != 0:
            raise ValueError(f"hidden size {hidden} not divisible by heads {heads}")
        d = hidden // heads
        outs = [
            self._single(
                pattern,
                q[:, h * d : (h + 1) * d],
                k[:, h * d : (h + 1) * d],
                v[:, h * d : (h + 1) * d],
                scale,
            )
            for h in range(heads)
        ]
        return np.concatenate(outs, axis=1)

    def _attend(self, pattern, q, k, v, heads, scale, valid_lens) -> AttendResult:
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if q.ndim == 3:
            out = np.stack(
                [self._sequence(pattern, q[b], k[b], v[b], heads, scale) for b in range(q.shape[0])]
            )
        else:
            out = self._sequence(pattern, q, k, v, heads, scale)
        return AttendResult(output=out, backend=self.name, stats=None, raw=None)


class DenseOracleBackend(OracleBackend):
    """Dense masked-score oracle + the paper's GPU dense cost model.

    Executes the pattern exactly by materialising the dense score matrix
    and masking excluded cells (:func:`masked_attention` — O(n^2)
    memory, fully vectorised).  Its cost model is the calibrated GTX
    1080Ti dense-attention latency of
    :mod:`repro.baselines.cpu_gpu_model` — the Section 2.1 baseline the
    paper's speedups are quoted against, which charges the full
    quadratic cost regardless of sparsity.
    """

    name = "dense"
    capabilities = BackendCapabilities(
        supports_batch=True,
        supports_valid_lens=False,
        bit_exact=False,
        has_cost_model=True,
        can_execute=True,
        needs_structure=False,
    )

    def _single(self, pattern, q, k, v, scale):
        return masked_attention(q, k, v, pattern, scale=scale)

    def _estimate(self, pattern, heads, head_dim) -> EstimateResult:
        hidden = heads * head_dim
        latency = GPU_1080TI.dense_attention_latency_s(pattern.n, hidden)
        return EstimateResult(
            latency_s=latency,
            backend=self.name,
            energy_j=latency * GPU_1080TI.dense_power_w,
            raw=GPU_1080TI,
        )


class SparseReferenceBackend(OracleBackend):
    """Row-streaming exact oracle (O(n·w) memory, no cost model)."""

    name = "sparse-reference"
    capabilities = BackendCapabilities(
        supports_batch=True,
        supports_valid_lens=False,
        bit_exact=False,
        has_cost_model=False,
        can_execute=True,
        needs_structure=False,
    )

    def _single(self, pattern, q, k, v, scale):
        return sparse_attention_rowwise(q, k, v, pattern, scale=scale)


class SangerBackend(AttentionBackend):
    """Sanger (MICRO 2021) analytic model: estimates, never executes."""

    name = "sanger"
    capabilities = BackendCapabilities(
        supports_batch=False,
        supports_valid_lens=False,
        bit_exact=False,
        has_cost_model=True,
        can_execute=False,
        needs_structure=False,
    )

    def __init__(self, model: Optional[SangerModel] = None) -> None:
        self.model = model if model is not None else SangerModel()

    def _estimate(self, pattern, heads, head_dim) -> EstimateResult:
        est = self.model.estimate(
            n=pattern.n,
            nnz=pattern.nnz(),
            heads=heads,
            head_dim=head_dim,
            sparsity=pattern.sparsity(),
        )
        return EstimateResult(
            latency_s=est.latency_s,
            backend=self.name,
            cycles=est.cycles,
            utilization=est.utilization,
            raw=est,
        )


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------

def _salo_caps(mode: str) -> BackendCapabilities:
    _, batch, lens = ENGINE_BACKENDS[mode]
    return BackendCapabilities(
        supports_batch=batch,
        supports_valid_lens=lens,
        bit_exact=True,
        has_cost_model=True,
        can_execute=True,
        needs_structure=True,
    )


def _salo_factory(mode: str) -> Callable[..., SALOEngineBackend]:
    caps = _salo_caps(mode)

    def factory(config) -> SALOEngineBackend:
        salo = SALO(
            config=config.hardware,
            strict_global_bound=config.strict_global_bound,
            plan_cache_size=config.plan_cache_size,
            backend=mode,
        )
        adapter = SALOEngineBackend(mode, caps, salo)
        adapter._check_buffers = config.check_buffers
        return adapter

    return factory


def engine_factory(name: str) -> Callable[[], object]:
    """A zero-argument factory of serving engines for backend ``name``.

    The serving and cluster layers hold one warm engine per worker; this
    helper maps a registered backend name to the object a worker should
    own — a bare :class:`SALO` for the plan-executing engine backends
    (so existing plan-cache/affinity accounting sees the same type it
    always has), or the registered :class:`AttentionBackend` adapter for
    everything else.  Unknown names raise ``KeyError`` with the
    registered names listed.
    """
    from .registry import backend_spec, get_backend

    spec = backend_spec(name)  # raises KeyError for unknown names
    if name in ENGINE_BACKENDS:
        return lambda: SALO(backend=name)
    if not spec.capabilities.can_execute:
        raise CapabilityError(
            f"backend {name!r} cannot serve traffic (can_execute=False); "
            "it is an analytic cost model"
        )
    return lambda: get_backend(name)


register_backend(
    "functional",
    _salo_factory("functional"),
    _salo_caps("functional"),
    summary="compiled batched SALO engine (default)",
)
register_backend(
    "functional-legacy",
    _salo_factory("functional-legacy"),
    _salo_caps("functional-legacy"),
    summary="per-pass SALO reference engine (was use_compiled=False)",
)
register_backend(
    "systolic",
    _salo_factory("systolic"),
    _salo_caps("systolic"),
    summary="cycle-accurate micro-simulator (small configs, single sequence)",
)
if "functional-jit" in ENGINE_BACKENDS:  # pragma: no cover - requires numba
    # Present only when numba imports (see repro.accelerator.jit): the
    # registry — and therefore ``engines list`` — shows exactly the
    # backends that can actually run on this interpreter.
    register_backend(
        "functional-jit",
        _salo_factory("functional-jit"),
        _salo_caps("functional-jit"),
        summary="numba-fused tiled SALO engine (optional; requires numba)",
    )
register_backend(
    "dense",
    lambda config: DenseOracleBackend(),
    DenseOracleBackend.capabilities,
    summary="dense masked-score float64 oracle + GPU dense cost model",
)
register_backend(
    "sparse-reference",
    lambda config: SparseReferenceBackend(),
    SparseReferenceBackend.capabilities,
    summary="row-streaming exact float64 oracle",
)
register_backend(
    "sanger",
    lambda config: SangerBackend(),
    SangerBackend.capabilities,
    summary="Sanger (MICRO 2021) analytic performance model (estimate-only)",
)
