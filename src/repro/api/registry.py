"""String-keyed backend registry: one extensible axis for engine choice.

Every execution engine and baseline model in the repo registers here
under a stable name; everything above this layer — the
:class:`~repro.api.runtime.Runtime` facade, the serving session, the
cluster simulator, the CLI's ``--backend`` flags and ``engines list``
subcommand, the cross-backend parity suite — selects backends by that
name instead of hand-wiring classes.  Adding a backend is one
:func:`register_backend` call; it then shows up everywhere at once.

A registration is a :class:`BackendSpec`: the factory (taking the
:class:`~repro.api.runtime.RuntimeConfig` it should build against), the
backend's static :class:`~repro.api.protocol.BackendCapabilities` (so
tooling can tabulate capabilities without instantiating engines) and a
one-line summary for the CLI table.  The built-in backends are
registered on import of :mod:`repro.api` (see
:mod:`repro.api.backends`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .protocol import AttentionBackend, BackendCapabilities

__all__ = [
    "BackendSpec",
    "register_backend",
    "get_backend",
    "backend_spec",
    "list_backends",
]


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry: how to build a backend, and what it can do."""

    name: str
    factory: Callable[..., AttentionBackend]  # factory(config: RuntimeConfig)
    capabilities: BackendCapabilities
    summary: str = ""


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    factory: Callable[..., AttentionBackend],
    capabilities: BackendCapabilities,
    summary: str = "",
    replace: bool = False,
) -> BackendSpec:
    """Register a backend factory under a stable string name.

    ``factory`` receives the :class:`~repro.api.runtime.RuntimeConfig`
    the caller is building against and returns a fresh
    :class:`~repro.api.protocol.AttentionBackend`.  Registering an
    existing name raises unless ``replace=True`` — accidental shadowing
    of a built-in backend should be loud.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True to override"
        )
    spec = BackendSpec(
        name=name, factory=factory, capabilities=capabilities, summary=summary
    )
    _REGISTRY[name] = spec
    return spec


def backend_spec(name: str) -> BackendSpec:
    """The registered spec for ``name`` (raises ``KeyError`` if unknown)."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown backend {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def get_backend(name: str, config: Optional[object] = None) -> AttentionBackend:
    """Instantiate a registered backend.

    ``config`` is a :class:`~repro.api.runtime.RuntimeConfig` (defaults
    are used when ``None``).  Each call builds a *fresh* backend —
    engines carry warm state (plan caches), so sharing is the caller's
    decision, typically via one :class:`~repro.api.runtime.Runtime`.
    """
    spec = backend_spec(name)
    if config is None:
        from .runtime import RuntimeConfig

        config = RuntimeConfig(backend=name)
    return spec.factory(config)


def list_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)
