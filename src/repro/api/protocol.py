"""The attention-backend protocol: one typed contract for every engine.

Everything that can answer an attention request in this repo — the
compiled functional engine, its per-pass legacy reference, the
cycle-accurate systolic micro-simulator, the exact float oracles and the
analytic baseline models — implements :class:`AttentionBackend`:

* :meth:`AttentionBackend.attend` executes real data and returns a typed
  :class:`AttendResult`;
* :meth:`AttentionBackend.estimate` runs the backend's cost model (no
  data) and returns a typed :class:`EstimateResult`.

Backends differ in what they can do, and the protocol makes that
explicit instead of implicit: every backend carries a frozen
:class:`BackendCapabilities` record, and calls outside the declared
envelope fail with a :class:`CapabilityError` *before* any compute —
a batched tensor handed to a single-sequence engine is an API error,
not a garbage answer.  The parity suite
(``tests/api/test_parity.py``) holds backends to their flags: outputs
must agree across backends (bit-exact within the ``bit_exact`` group,
float-tight otherwise) and every advertised limitation must actually be
enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..patterns.base import AttentionPattern

__all__ = [
    "AttendResult",
    "AttentionBackend",
    "BackendCapabilities",
    "CapabilityError",
    "EstimateResult",
]


class CapabilityError(RuntimeError):
    """A call asked a backend for something its capabilities exclude."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can (and cannot) be asked to do.

    ``supports_batch``
        Accepts a leading batch axis ``(b, n, hidden)`` in one call.
        The serving layer falls back to a per-request loop for backends
        without it.
    ``supports_valid_lens``
        Masks zero-padded tails out of the softmax (the serving layer's
        ``pad_to_bucket`` cross-length batching).
    ``bit_exact``
        Reproduces the SALO fixed-point datapath bit for bit: all
        ``bit_exact`` backends must return *identical* arrays on the
        same inputs.  Float oracles (dense, sparse-reference) are exact
        mathematics instead and agree only to quantisation tolerance.
    ``has_cost_model``
        :meth:`AttentionBackend.estimate` works (latency/cycle model).
    ``can_execute``
        :meth:`AttentionBackend.attend` works.  Analytic models (the
        Sanger comparison model) estimate but never execute.
    ``needs_structure``
        Requires patterns with a band/global decomposition (everything
        that schedules through SALO).  Mask-only (opaque) patterns are
        servable by oracle backends, which set this ``False``.
    """

    supports_batch: bool = False
    supports_valid_lens: bool = False
    bit_exact: bool = False
    has_cost_model: bool = False
    can_execute: bool = True
    needs_structure: bool = True


@dataclass
class AttendResult:
    """Typed outcome of one :meth:`AttentionBackend.attend` call.

    ``output`` follows the input rank: ``(n, hidden)`` for a single
    sequence, ``(b, n, hidden)`` for a batch.  ``stats`` carries the
    backend's cost-model accounting for the executed plan when it has
    one (:class:`~repro.core.stats.RunStats` for SALO engines, ``None``
    for oracles).  ``raw`` keeps the backend-native result object
    (e.g. :class:`~repro.core.salo.AttentionResult`) for callers that
    need engine internals; portable code should not touch it.
    """

    output: np.ndarray
    backend: str
    stats: Optional[object] = None
    raw: object = field(default=None, repr=False)


@dataclass
class EstimateResult:
    """Typed outcome of one :meth:`AttentionBackend.estimate` call.

    ``latency_s`` is always present (it is what serving clocks and
    admission policies consume); ``cycles`` / ``energy_j`` /
    ``utilization`` are filled when the backend's model provides them.
    ``raw`` keeps the model-native record (``RunStats``,
    ``SangerEstimate``, ...).
    """

    latency_s: float
    backend: str
    cycles: Optional[int] = None
    energy_j: Optional[float] = None
    utilization: Optional[float] = None
    raw: object = field(default=None, repr=False)


class AttentionBackend:
    """Base class for attention backends (the runtime execution surface).

    Subclasses set :attr:`name` and :attr:`capabilities` and implement
    :meth:`_attend` / :meth:`_estimate`; the public entry points enforce
    the capability envelope first, so every backend rejects unsupported
    calls the same way (:class:`CapabilityError` with the backend name
    and the missing capability spelled out).
    """

    name: str = "abstract"
    capabilities: BackendCapabilities = BackendCapabilities()

    # ------------------------------------------------------------------
    def attend(
        self,
        pattern: AttentionPattern,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        heads: int = 1,
        scale: Optional[float] = None,
        valid_lens: Optional[np.ndarray] = None,
    ) -> AttendResult:
        """Execute sparse attention; see :class:`AttendResult`."""
        caps = self.capabilities
        if not caps.can_execute:
            raise CapabilityError(
                f"backend {self.name!r} is an analytic model (can_execute=False); "
                "it estimates cost but cannot execute data"
            )
        q = np.asarray(q, dtype=np.float64)
        if q.ndim not in (2, 3):
            raise ValueError(
                f"q must be (n, hidden) or (b, n, hidden), got shape {q.shape}"
            )
        if q.ndim == 3 and not caps.supports_batch:
            raise CapabilityError(
                f"backend {self.name!r} does not support a batch axis "
                "(supports_batch=False); call it once per sequence"
            )
        if valid_lens is not None and not caps.supports_valid_lens:
            raise CapabilityError(
                f"backend {self.name!r} does not support valid_lens "
                "(supports_valid_lens=False)"
            )
        if caps.needs_structure and pattern.bands() is None:
            raise CapabilityError(
                f"backend {self.name!r} requires band/global pattern structure "
                "(needs_structure=True); this pattern is mask-only"
            )
        return self._attend(pattern, q, k, v, heads=heads, scale=scale, valid_lens=valid_lens)

    def estimate(
        self,
        pattern: AttentionPattern,
        heads: int = 1,
        head_dim: int = 64,
    ) -> EstimateResult:
        """Run the backend's cost model; see :class:`EstimateResult`."""
        caps = self.capabilities
        if not caps.has_cost_model:
            raise CapabilityError(
                f"backend {self.name!r} has no cost model (has_cost_model=False)"
            )
        if caps.needs_structure and pattern.bands() is None:
            raise CapabilityError(
                f"backend {self.name!r} requires band/global pattern structure "
                "(needs_structure=True); this pattern is mask-only"
            )
        return self._estimate(pattern, heads=heads, head_dim=head_dim)

    # ------------------------------------------------------------------
    def _attend(
        self,
        pattern: AttentionPattern,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        heads: int,
        scale: Optional[float],
        valid_lens: Optional[np.ndarray],
    ) -> AttendResult:
        raise NotImplementedError  # pragma: no cover - abstract

    def _estimate(
        self, pattern: AttentionPattern, heads: int, head_dim: int
    ) -> EstimateResult:
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    # Capability shorthands: the serving layer probes engines through
    # these names (duck-typed with SALO, which exposes the same ones).
    @property
    def supports_batch(self) -> bool:
        return self.capabilities.supports_batch

    @property
    def supports_valid_lens(self) -> bool:
        return self.capabilities.supports_valid_lens

    @property
    def needs_structure(self) -> bool:
        return self.capabilities.needs_structure

    # ------------------------------------------------------------------
    def cache_info(self) -> dict:
        """Plan-cache counters; zeros for backends without a plan cache."""
        return {"size": 0, "capacity": 0, "hits": 0, "misses": 0, "hit_rate": 0.0}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
