"""Batched multi-sequence serving layer (request -> bucket -> batch -> engine).

The reproduction's serving path for repeated-structure traffic: queued
:class:`AttentionRequest` objects are grouped by execution-plan key and
length bucket (:class:`BatchScheduler`), stacked into same-plan batches,
and executed as single batched engine dispatches by a
:class:`ServingSession` — amortising scheduling, plan compilation and
per-job dispatch across requests while keeping outputs bit-identical to
per-request calls.  :mod:`repro.serving.admission` guards the door
under overload (the cluster layer consumes it too).
"""

from .admission import (
    ADMISSIONS,
    AdmissionContext,
    AdmissionPolicy,
    AdmitAll,
    EstimatedWaitCap,
    QueueDepthCap,
    TokenBucketAdmission,
    make_admission,
    queue_drain_estimate,
)
from .batching import Batch, BatchScheduler, length_bucket
from .request import AttentionRequest, RequestResult
from .session import ServingSession, ServingStats, execute_batch
from .trace import ArrivalSpec, ReplayReport, TraceSpec, replay, synthetic_trace

__all__ = [
    "AttentionRequest",
    "RequestResult",
    "Batch",
    "BatchScheduler",
    "length_bucket",
    "ServingSession",
    "ServingStats",
    "execute_batch",
    "ArrivalSpec",
    "TraceSpec",
    "ReplayReport",
    "replay",
    "synthetic_trace",
    "AdmissionContext",
    "AdmissionPolicy",
    "AdmitAll",
    "QueueDepthCap",
    "EstimatedWaitCap",
    "TokenBucketAdmission",
    "ADMISSIONS",
    "make_admission",
    "queue_drain_estimate",
]
