"""Synthetic request traces for serving experiments and the CLI.

A trace models the repeated-structure traffic a deployed accelerator
serves: a small set of pattern families (window, window+global, dilated)
at a few sequence-length buckets, hit by many requests with fresh data.
:func:`replay` pushes a trace through a :class:`ServingSession` and —
optionally — through the sequential one-call-per-request baseline, so
the batching win is measured on identical work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.salo import SALO
from ..patterns.base import AttentionPattern, Band
from ..patterns.hybrid import HybridSparsePattern
from ..patterns.library import longformer_pattern
from .request import AttentionRequest
from .session import ServingSession, ServingStats

__all__ = ["ArrivalSpec", "TraceSpec", "synthetic_trace", "replay", "ReplayReport"]


@dataclass(frozen=True)
class ArrivalSpec:
    """How a synthetic trace's arrival timestamps are drawn.

    Either a Poisson ``rate_rps`` (exponential inter-arrivals) or a
    custom ``sampler`` drawing one inter-arrival gap per call from the
    trace RNG.  Timestamps start at 0 and accumulate, so a recorded
    trace carries realistic relative arrival times instead of the
    submit-time wall clock — the bridge the cluster simulator replays.
    """

    rate_rps: Optional[float] = None
    sampler: Optional[Callable[[np.random.Generator], float]] = None

    def __post_init__(self) -> None:
        if (self.rate_rps is None) == (self.sampler is None):
            raise ValueError("specify exactly one of rate_rps or sampler")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    def inter_arrival(self, rng: np.random.Generator) -> float:
        if self.sampler is not None:
            gap = float(self.sampler(rng))
        else:
            gap = float(rng.exponential(1.0 / self.rate_rps))
        if gap < 0:
            raise ValueError(f"inter-arrival gap must be >= 0, got {gap}")
        return gap


@dataclass(frozen=True)
class TraceSpec:
    """Shape of a synthetic trace."""

    num_requests: int = 64
    n: int = 512
    window: int = 64
    heads: int = 4
    head_dim: int = 16
    global_tokens: Tuple[int, ...] = (0,)
    mixed: bool = True  # draw from several pattern families / lengths
    seed: int = 0
    arrival: Optional[ArrivalSpec] = None  # None: all requests at t=0


def pattern_families(spec: TraceSpec) -> List[AttentionPattern]:
    """The pattern families a mixed trace samples from.

    Shared with the cluster workload generator
    (:mod:`repro.cluster.arrivals`), so simulated traffic and the serve
    CLI's traces draw from the same structural mix.
    """
    families: List[AttentionPattern] = [
        longformer_pattern(spec.n, spec.window, spec.global_tokens)
    ]
    if spec.mixed:
        half = spec.n // 2
        families.append(longformer_pattern(half, max(8, spec.window // 2), spec.global_tokens))
        dil = max(2, spec.window // 8)
        families.append(
            HybridSparsePattern(
                spec.n, [Band(-spec.window * dil // 2, spec.window * dil // 2, dil)], ()
            )
        )
    return families


def synthetic_trace(spec: TraceSpec) -> List[AttentionRequest]:
    """Generate ``num_requests`` requests over the spec's families.

    With ``spec.arrival`` set, requests carry accumulated synthetic
    arrival timestamps (starting at 0) instead of the default 0.0 —
    :func:`replay` forwards them into the session and the cluster
    simulator replays them as its arrival events.
    """
    rng = np.random.default_rng(spec.seed)
    families = pattern_families(spec)
    hidden = spec.heads * spec.head_dim
    requests: List[AttentionRequest] = []
    t = 0.0
    for i in range(spec.num_requests):
        pattern = families[int(rng.integers(len(families)))]
        q, k, v = (rng.standard_normal((pattern.n, hidden)) for _ in range(3))
        if spec.arrival is not None:
            t += spec.arrival.inter_arrival(rng)
        requests.append(
            AttentionRequest(
                request_id=i, pattern=pattern, q=q, k=k, v=v, heads=spec.heads,
                arrival_s=t,
            )
        )
    return requests


@dataclass
class ReplayReport:
    """Outcome of replaying one trace through the serving layer."""

    stats: ServingStats
    sequential_s: Optional[float]  # baseline wall time (None if skipped)
    batched_s: float

    @property
    def speedup(self) -> Optional[float]:
        if self.sequential_s is None or self.batched_s <= 0:
            return None
        return self.sequential_s / self.batched_s

    def to_dict(self) -> dict:
        """JSON-ready view: serving stats plus the baseline comparison."""
        return {
            "stats": self.stats.to_dict(),
            "sequential_s": self.sequential_s,
            "batched_s": self.batched_s,
            "speedup": self.speedup,
        }

    def render(self) -> str:
        lines = [self.stats.render()]
        if self.sequential_s is not None:
            lines.append(f"sequential baseline  {self.sequential_s * 1e3:.1f} ms")
            lines.append(f"batched speedup      {self.speedup:.2f}x")
        return "\n".join(lines)


def replay(
    requests: Sequence[AttentionRequest],
    salo: Optional[SALO] = None,
    max_batch_size: int = 8,
    compare_sequential: bool = True,
    backend: Optional[str] = None,
) -> ReplayReport:
    """Serve a trace; optionally time the sequential baseline on a
    fresh engine with the same configuration.  Both sides warm their
    plan caches at the scheduling level and then pay one plan compile +
    engine build per pattern family inside their timed region —
    symmetric costs, so the comparison isolates batching.

    ``backend`` selects a registered execution backend by name (the
    ``serve --backend`` CLI path); mutually exclusive with ``salo``.
    Backends without a plan-level ``schedule`` (the float oracles) skip
    the warm step on both sides — still symmetric.
    """
    if salo is not None and backend is not None:
        raise ValueError("pass either a salo/engine instance or a backend name, not both")
    if backend is not None:
        from ..api import engine_factory

        make_engine = engine_factory(backend)
        salo = make_engine()
    elif salo is None:
        salo = SALO()
        make_engine = SALO
    else:
        engine = salo

        def make_engine():
            inner = engine.salo if hasattr(engine, "salo") else engine
            if isinstance(inner, SALO):
                fresh = SALO(
                    config=inner.config,
                    energy_table=inner.energy_table,
                    strict_global_bound=inner.scheduler.strict_global_bound,
                    plan_cache_size=inner.plan_cache_size,
                    backend=inner.backend,
                )
                if inner is engine:
                    return fresh
                clone = type(engine)(engine.name, engine.capabilities, fresh)
                clone._check_buffers = engine._check_buffers
                return clone
            return type(engine)()  # fresh oracle adapters are stateless

    sequential_s: Optional[float] = None
    outputs_seq: Dict[object, np.ndarray] = {}

    def warm(target) -> None:
        schedule = getattr(target, "schedule", None)
        if schedule is None:
            return
        for req in requests:
            schedule(req.pattern, heads=req.heads, head_dim=req.head_dim)

    if compare_sequential:
        baseline = make_engine()
        warm(baseline)  # schedule-level warm (compile stays timed, as for the session)
        t0 = time.perf_counter()
        for req in requests:
            res = baseline.attend(req.pattern, req.q, req.k, req.v, heads=req.heads)
            outputs_seq[req.request_id] = res.output
        sequential_s = time.perf_counter() - t0

    session = ServingSession(salo=salo, max_batch_size=max_batch_size)
    warm(salo)  # schedule-level warm, symmetric with the baseline
    # A trace recorded with synthetic arrival timestamps replays them:
    # queueing delay is then measured from trace time (rebased onto the
    # session clock), not from the submit call.
    has_arrivals = any(req.arrival_s > 0 for req in requests)
    t0 = time.perf_counter()
    for req in requests:
        session.submit(
            req.pattern,
            req.q,
            req.k,
            req.v,
            heads=req.heads,
            request_id=req.request_id,
            arrival_s=t0 + req.arrival_s if has_arrivals else None,
            deadline_s=req.deadline_s,
            slo_class=req.slo_class,
        )
    session.drain()
    batched_s = time.perf_counter() - t0

    if compare_sequential:
        for req in requests:
            if not np.array_equal(session.results[req.request_id].output, outputs_seq[req.request_id]):
                raise AssertionError(
                    f"batched output diverged from sequential for request {req.request_id}"
                )
    return ReplayReport(stats=session.stats(), sequential_s=sequential_s, batched_s=batched_s)
