"""Attention requests: the unit of work the serving layer queues.

An :class:`AttentionRequest` is one sequence's sparse-attention call —
pattern, Q/K/V operands and head layout — plus the arrival timestamp the
latency accounting is anchored to.  The serving layer batches requests
that share an execution plan (same pattern structure, head layout and
hardware config) into a single engine dispatch; see
:mod:`repro.serving.batching`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

import numpy as np

from ..patterns.base import AttentionPattern

__all__ = ["AttentionRequest", "RequestResult"]


@dataclass
class AttentionRequest:
    """One queued sparse-attention call.

    ``q``, ``k``, ``v`` have shape ``(n, hidden)`` with ``n`` equal to
    the pattern's sequence length and ``hidden`` divisible by ``heads``.
    ``arrival_s`` is the submission timestamp (session clock) queueing
    delay is measured from.  ``deadline_s`` is a latency budget relative
    to arrival (the request meets its SLO when it completes by
    ``arrival_s + deadline_s``); ``slo_class`` labels the request for
    per-class latency accounting and deadline-aware batch policies.
    ``client_id`` optionally identifies the submitting tenant within its
    SLO class — per-client admission quotas (composite token-bucket
    keys) are keyed on ``(slo_class, client_id)``.
    """

    request_id: Hashable
    pattern: AttentionPattern
    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    heads: int = 1
    arrival_s: float = 0.0
    deadline_s: Optional[float] = None
    slo_class: str = "default"
    client_id: Optional[Hashable] = None

    def __post_init__(self) -> None:
        self.q = np.asarray(self.q, dtype=np.float64)
        self.k = np.asarray(self.k, dtype=np.float64)
        self.v = np.asarray(self.v, dtype=np.float64)
        if self.q.ndim != 2:
            raise ValueError(f"request q must be (n, hidden), got shape {self.q.shape}")
        if self.k.shape != self.q.shape or self.v.shape != self.q.shape:
            raise ValueError("request q, k, v must share shape (n, hidden)")
        if self.q.shape[0] != self.pattern.n:
            raise ValueError(
                f"pattern is for n={self.pattern.n}, request data has n={self.q.shape[0]}"
            )
        if self.heads < 1 or self.q.shape[1] % self.heads != 0:
            raise ValueError(
                f"hidden size {self.q.shape[1]} not divisible by heads {self.heads}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")

    @property
    def absolute_deadline_s(self) -> float:
        """Completion time the SLO requires (``inf`` without a deadline)."""
        if self.deadline_s is None:
            return float("inf")
        return self.arrival_s + self.deadline_s

    @property
    def n(self) -> int:
        return self.q.shape[0]

    @property
    def hidden(self) -> int:
        return self.q.shape[1]

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads


@dataclass
class RequestResult:
    """Per-request outcome and latency split recorded by the session."""

    request_id: Hashable
    output: np.ndarray  # (n, hidden)
    batch_size: int  # size of the batch this request executed in
    queue_s: float  # submit -> batch dispatch
    service_s: float  # batch dispatch -> outputs ready (shared by the batch)
    stats: object = field(default=None, repr=False)  # RunStats of the plan

    @property
    def latency_s(self) -> float:
        """End-to-end latency: queueing delay plus service time."""
        return self.queue_s + self.service_s
