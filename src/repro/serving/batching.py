"""Length bucketing and plan-keyed batch formation.

The batch scheduler turns a stream of :class:`AttentionRequest` objects
into same-plan batches the engine can execute as one dispatch:

* **Group key** — requests batch together only when they are guaranteed
  to produce the same execution plan: identical pattern structure (band
  geometry, global tokens, sequence length), head count and hidden size.
  The structural part mirrors ``SALO._plan_key``, so every request of a
  batch hits the same plan-cache entry.  Opaque patterns (no band
  decomposition) cannot prove structural equality, so the scheduler
  queues them as singleton batches — note that
  :meth:`~repro.serving.session.ServingSession.submit` rejects them up
  front, since SALO cannot schedule a pattern without band structure.
* **Length bucket** — queues are additionally labelled with the
  power-of-two bucket of the sequence length.  Buckets make queue
  observability explicit: ``pending_by_bucket`` reports queue depth per
  (structure, bucket).
* **Cross-length padding** (``pad_to_bucket=True``) — the group key
  drops the exact sequence length, so same-band-structure requests of
  different lengths share a queue within their bucket.  Mixed-length
  batches execute under one bucket-length plan with zero-padded tails
  masked out of the softmax (``SALO.attend(valid_lens=...)``) and
  outputs sliced back — raising batch occupancy under long-tail length
  distributions at the cost of padded-lane compute.
* **FIFO fairness** — :meth:`BatchScheduler.next_batch` always serves
  the queue whose head request arrived earliest, taking up to
  ``max_batch_size`` requests from it; within a queue, order is arrival
  order.  Deadline- or size-aware policies (:mod:`repro.cluster.policy`)
  instead inspect queues via :meth:`BatchScheduler.group_items` and pop
  specific members via :meth:`BatchScheduler.take`.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

from ..core.salo import pattern_structure_key
from ..patterns.hybrid import HybridSparsePattern
from .request import AttentionRequest

__all__ = ["length_bucket", "Batch", "BatchScheduler"]


def length_bucket(n: int, floor: int = 16) -> int:
    """Smallest power of two >= ``n`` (at least ``floor``).

    Used to label scheduler queues by sequence-length class; requests
    only ever batch within a bucket (their plan keys pin the exact
    length unless ``pad_to_bucket`` relaxes it).
    """
    if n < 1:
        raise ValueError(f"sequence length must be >= 1, got {n}")
    bucket = floor
    while bucket < n:
        bucket *= 2
    return bucket


class Batch:
    """A group of requests guaranteed to share one execution plan.

    ``pad_to`` is the bucket length mixed-length members are padded to
    (``None`` for exact-length batches); :meth:`padded_pattern` rebuilds
    the shared band structure at that length.
    """

    def __init__(
        self,
        requests: List[AttentionRequest],
        key: Hashable,
        bucket: int,
        pad_to: Optional[int] = None,
    ) -> None:
        if not requests:
            raise ValueError("a batch needs at least one request")
        self.requests = list(requests)
        self.key = key
        self.bucket = bucket
        self.pad_to = pad_to

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def pattern(self):
        return self.requests[0].pattern

    @property
    def heads(self) -> int:
        return self.requests[0].heads

    @property
    def n(self) -> int:
        return self.requests[0].n

    @property
    def mixed_lengths(self) -> bool:
        """True when members differ in sequence length (padding needed)."""
        first = self.requests[0].n
        return any(r.n != first for r in self.requests)

    def execution_pattern(self):
        """The pattern the engine dispatch runs.

        Exact-length (or uniform-length) batches run the members' own
        pattern; mixed-length padded batches run the shared band
        structure rebuilt at the ``pad_to`` bucket length.
        """
        if self.pad_to is None or not self.mixed_lengths:
            return self.requests[0].pattern
        return self.padded_pattern()

    def padded_pattern(self) -> HybridSparsePattern:
        """The members' band structure at the ``pad_to`` bucket length."""
        if self.pad_to is None:
            raise ValueError("batch was not formed in pad_to_bucket mode")
        first = self.requests[0].pattern
        return HybridSparsePattern(self.pad_to, first.bands(), first.global_tokens())

    def plan_key(self) -> Tuple:
        """Identity of the SALO plan this batch's dispatch compiles to.

        Finer than the group key in ``pad_to_bucket`` mode: one padded
        group key covers both the exact-length plan (uniform-length
        batches) and the bucket-length plan (mixed ones), and warm-plan
        accounting must tell them apart.
        """
        first = self.requests[0]
        return (
            pattern_structure_key(self.execution_pattern()),
            first.heads,
            first.head_dim,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Batch(size={self.size}, n={self.n}, bucket={self.bucket})"


class BatchScheduler:
    """Groups queued requests by plan key and length bucket (FIFO)."""

    def __init__(
        self,
        max_batch_size: int = 8,
        bucket_floor: int = 16,
        pad_to_bucket: bool = False,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.bucket_floor = bucket_floor
        self.pad_to_bucket = pad_to_bucket
        self._queues: "OrderedDict[Tuple, Deque[AttentionRequest]]" = OrderedDict()

    # ------------------------------------------------------------------
    def group_key(self, request: AttentionRequest) -> Tuple:
        """(structural plan key, length bucket) for a request.

        The structural part is :func:`~repro.core.salo.pattern_structure_key`
        — the same definition the SALO plan cache keys on — so two
        requests with equal keys are guaranteed to compile to the same
        plan and may execute as one batched engine dispatch.  In
        ``pad_to_bucket`` mode the exact sequence length is dropped from
        the key (only bands, globals and the bucket remain): members may
        then differ in length and batch via padded tails.
        """
        bucket = length_bucket(request.n, self.bucket_floor)
        structure = pattern_structure_key(request.pattern)
        if structure is None:
            # Opaque pattern: structural equality is unprovable, so the
            # request gets a private queue (and a singleton batch).  The
            # request's identity keeps the key pure and repeatable; the
            # queue only lives while the request is queued.
            return ("opaque", id(request), bucket)
        if self.pad_to_bucket:
            _, bands, globals_ = structure
            return ("padded", bands, globals_, request.heads, request.hidden, bucket)
        return structure + (request.heads, request.hidden, bucket)

    def enqueue(self, request: AttentionRequest) -> Tuple:
        """Queue a request; returns its group key."""
        key = self.group_key(request)
        self._queues.setdefault(key, deque()).append(request)
        return key

    def _make_batch(self, key: Tuple, members: List[AttentionRequest]) -> Batch:
        bucket = key[-1]
        pad_to = bucket if (self.pad_to_bucket and key[0] == "padded") else None
        return Batch(members, key=key, bucket=bucket, pad_to=pad_to)

    def next_batch(self) -> Optional[Batch]:
        """Pop the next batch, or ``None`` when nothing is queued.

        Serves the queue whose head request has waited longest, so no
        pattern family can starve another under mixed traffic.
        """
        best_key = None
        best_arrival = None
        for key, queue in self._queues.items():
            if not queue:
                continue
            arrival = queue[0].arrival_s
            if best_arrival is None or arrival < best_arrival:
                best_key, best_arrival = key, arrival
        if best_key is None:
            return None
        return self.take(best_key)

    # ------------------------------------------------------------------
    # Policy interface: peek queues, pop selected members
    # ------------------------------------------------------------------
    def group_items(self) -> List[Tuple[Tuple, Tuple[AttentionRequest, ...]]]:
        """Read-only snapshot of the non-empty queues (key, members)."""
        return [(key, tuple(q)) for key, q in self._queues.items() if q]

    def take(
        self,
        key: Tuple,
        count: Optional[int] = None,
        order: Optional[Callable[[AttentionRequest], float]] = None,
    ) -> Optional[Batch]:
        """Pop up to ``count`` requests of one group as a batch.

        ``count`` defaults to (and is capped by) ``max_batch_size``.
        Without ``order`` the queue head is served (arrival order); with
        ``order`` the ``count`` members minimising the sort key are
        popped instead — deadline-aware policies use this to serve the
        most urgent members first — keeping the remaining members in
        arrival order.
        """
        queue = self._queues.get(key)
        if not queue:
            return None
        count = self.max_batch_size if count is None else min(count, self.max_batch_size)
        count = min(count, len(queue))
        if order is None:
            members = [queue.popleft() for _ in range(count)]
        else:
            indexed = sorted(range(len(queue)), key=lambda i: (order(queue[i]), i))
            chosen = set(indexed[:count])
            members = [queue[i] for i in sorted(chosen)]
            remaining = [queue[i] for i in range(len(queue)) if i not in chosen]
            queue.clear()
            queue.extend(remaining)
        if not queue:
            del self._queues[key]
        return self._make_batch(key, members)

    def prune(self, predicate: Callable[[AttentionRequest], bool]) -> List[AttentionRequest]:
        """Remove and return every queued request matching ``predicate``.

        Load-shedding hook: a ``drop_expired`` policy sweeps out requests
        whose deadline can no longer be met before closing a batch.
        Survivors keep their queue and their relative order; emptied
        queues are deleted.  The removed requests are returned in queue
        insertion order (then arrival order within a queue) so callers
        can account for them deterministically.
        """
        removed: List[AttentionRequest] = []
        for key in list(self._queues):
            queue = self._queues[key]
            kept: List[AttentionRequest] = []
            hit = False
            for request in queue:
                if predicate(request):
                    removed.append(request)
                    hit = True
                else:
                    kept.append(request)
            if not hit:
                continue
            if kept:
                self._queues[key] = deque(kept)
            else:
                del self._queues[key]
        return removed

    def steal(self, count: int) -> List[AttentionRequest]:
        """Pop up to ``count`` requests from the back of the deepest queue.

        Work-stealing donor side: the stolen requests are the ones this
        scheduler would have reached last (its deepest group's tail), in
        arrival order, ready to :meth:`requeue` on the thief.
        """
        if count < 1:
            return []
        victim_key = None
        for key, queue in self._queues.items():
            if queue and (victim_key is None or len(queue) > len(self._queues[victim_key])):
                victim_key = key
        if victim_key is None:
            return []
        queue = self._queues[victim_key]
        take = min(count, len(queue))
        stolen = [queue.pop() for _ in range(take)][::-1]
        if not queue:
            del self._queues[victim_key]
        return stolen

    def requeue(self, requests: List[AttentionRequest]) -> None:
        """Give requests (back) to this scheduler — work stealing path."""
        for request in requests:
            self._queues.setdefault(self.group_key(request), deque()).append(request)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queued requests."""
        return sum(len(q) for q in self._queues.values())

    def __len__(self) -> int:
        return self.pending

    def pending_by_bucket(self) -> Dict[int, int]:
        """Queue depth per length bucket (observability)."""
        depths: Dict[int, int] = {}
        for key, queue in self._queues.items():
            bucket = key[-1]
            depths[bucket] = depths.get(bucket, 0) + len(queue)
        return depths
