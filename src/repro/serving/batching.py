"""Length bucketing and plan-keyed batch formation.

The batch scheduler turns a stream of :class:`AttentionRequest` objects
into same-plan batches the engine can execute as one dispatch:

* **Group key** — requests batch together only when they are guaranteed
  to produce the same execution plan: identical pattern structure (band
  geometry, global tokens, sequence length), head count and hidden size.
  The structural part mirrors ``SALO._plan_key``, so every request of a
  batch hits the same plan-cache entry.  Opaque patterns (no band
  decomposition) cannot prove structural equality, so the scheduler
  queues them as singleton batches — note that
  :meth:`~repro.serving.session.ServingSession.submit` rejects them up
  front, since SALO cannot schedule a pattern without band structure.
* **Length bucket** — queues are additionally labelled with the
  power-of-two bucket of the sequence length.  Buckets make queue
  observability (and any future cross-length padding policy) explicit:
  ``pending_by_bucket`` reports queue depth per (structure, bucket).
* **FIFO fairness** — :meth:`BatchScheduler.next_batch` always serves
  the queue whose head request arrived earliest, taking up to
  ``max_batch_size`` requests from it; within a queue, order is arrival
  order.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from ..core.salo import pattern_structure_key
from .request import AttentionRequest

__all__ = ["length_bucket", "Batch", "BatchScheduler"]


def length_bucket(n: int, floor: int = 16) -> int:
    """Smallest power of two >= ``n`` (at least ``floor``).

    Used to label scheduler queues by sequence-length class; requests
    only ever batch within a bucket (their plan keys pin the exact
    length, so a bucket can hold several distinct queues).
    """
    if n < 1:
        raise ValueError(f"sequence length must be >= 1, got {n}")
    bucket = floor
    while bucket < n:
        bucket *= 2
    return bucket


class Batch:
    """A group of requests guaranteed to share one execution plan."""

    def __init__(self, requests: List[AttentionRequest], key: Hashable, bucket: int) -> None:
        if not requests:
            raise ValueError("a batch needs at least one request")
        self.requests = list(requests)
        self.key = key
        self.bucket = bucket

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def pattern(self):
        return self.requests[0].pattern

    @property
    def heads(self) -> int:
        return self.requests[0].heads

    @property
    def n(self) -> int:
        return self.requests[0].n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Batch(size={self.size}, n={self.n}, bucket={self.bucket})"


class BatchScheduler:
    """Groups queued requests by plan key and length bucket (FIFO)."""

    def __init__(self, max_batch_size: int = 8, bucket_floor: int = 16) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.bucket_floor = bucket_floor
        self._queues: "OrderedDict[Tuple, Deque[AttentionRequest]]" = OrderedDict()

    # ------------------------------------------------------------------
    def group_key(self, request: AttentionRequest) -> Tuple:
        """(structural plan key, length bucket) for a request.

        The structural part is :func:`~repro.core.salo.pattern_structure_key`
        — the same definition the SALO plan cache keys on — so two
        requests with equal keys are guaranteed to compile to the same
        plan and may execute as one batched engine dispatch.
        """
        bucket = length_bucket(request.n, self.bucket_floor)
        structure = pattern_structure_key(request.pattern)
        if structure is None:
            # Opaque pattern: structural equality is unprovable, so the
            # request gets a private queue (and a singleton batch).  The
            # request's identity keeps the key pure and repeatable; the
            # queue only lives while the request is queued.
            return ("opaque", id(request), bucket)
        return structure + (request.heads, request.hidden, bucket)

    def enqueue(self, request: AttentionRequest) -> Tuple:
        """Queue a request; returns its group key."""
        key = self.group_key(request)
        self._queues.setdefault(key, deque()).append(request)
        return key

    def next_batch(self) -> Optional[Batch]:
        """Pop the next batch, or ``None`` when nothing is queued.

        Serves the queue whose head request has waited longest, so no
        pattern family can starve another under mixed traffic.
        """
        best_key = None
        best_arrival = None
        for key, queue in self._queues.items():
            if not queue:
                continue
            arrival = queue[0].arrival_s
            if best_arrival is None or arrival < best_arrival:
                best_key, best_arrival = key, arrival
        if best_key is None:
            return None
        queue = self._queues[best_key]
        members = [queue.popleft() for _ in range(min(self.max_batch_size, len(queue)))]
        if not queue:
            del self._queues[best_key]
        return Batch(members, key=best_key, bucket=best_key[-1])

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queued requests."""
        return sum(len(q) for q in self._queues.values())

    def __len__(self) -> int:
        return self.pending

    def pending_by_bucket(self) -> Dict[int, int]:
        """Queue depth per length bucket (observability)."""
        depths: Dict[int, int] = {}
        for key, queue in self._queues.items():
            bucket = key[-1]
            depths[bucket] = depths.get(bucket, 0) + len(queue)
        return depths
