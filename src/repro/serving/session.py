"""Serving session: queue -> bucket -> batch -> batched engine dispatch.

:class:`ServingSession` is the facade a driver (the CLI ``serve``
command, a benchmark, a test) talks to: submit requests, then
:meth:`ServingSession.step` or :meth:`ServingSession.drain` them through
the :class:`~repro.serving.batching.BatchScheduler` and a shared
:class:`~repro.core.salo.SALO` instance.  Each batch becomes one
``SALO.attend`` call with a leading batch axis — same-plan sequences
share scheduling, compilation and the engine's per-job dispatch cost,
while outputs stay bit-identical to per-request calls.  In
``pad_to_bucket`` mode, same-structure requests of different lengths
batch under one bucket-length plan with masked tails (outputs are sliced
back to each request's true length; see :mod:`repro.serving.batching`).

Accounting: every request's queueing delay (submit -> batch dispatch)
and service time (its batch's engine wall time) are recorded, and
:meth:`ServingSession.stats` reduces them to throughput plus latency
percentiles — the numbers a capacity study of the "heavy traffic"
scenario needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.salo import SALO, AttentionResult, pattern_structure_key
from ..patterns.base import AttentionPattern
from .admission import AdmissionContext, AdmissionPolicy
from .batching import Batch, BatchScheduler
from .request import AttentionRequest, RequestResult

__all__ = ["ServingSession", "ServingStats", "execute_batch"]


def execute_batch(salo: SALO, batch: Batch) -> Tuple[List[np.ndarray], AttentionResult]:
    """One engine dispatch for a batch; returns per-request outputs.

    Uniform-length batches stack members on a leading batch axis
    (bit-identical to per-request calls); mixed-length padded batches
    zero-pad members to the bucket length, mask the tails via
    ``valid_lens`` and slice outputs back.  This is the single execution
    path shared by :class:`ServingSession` and the cluster simulator's
    measured-clock workers.
    """
    requests = batch.requests
    if batch.size == 1:
        req = requests[0]
        result = salo.attend(req.pattern, req.q, req.k, req.v, heads=req.heads)
        return [result.output], result
    pattern = batch.execution_pattern()
    if not batch.mixed_lengths:
        q = np.stack([r.q for r in requests])
        k = np.stack([r.k for r in requests])
        v = np.stack([r.v for r in requests])
        result = salo.attend(pattern, q, k, v, heads=batch.heads)
        return [result.output[i] for i in range(batch.size)], result
    # Padded cross-length batch: one bucket-length plan, masked tails.
    n_pad, hidden = pattern.n, requests[0].hidden
    q = np.zeros((batch.size, n_pad, hidden))
    k = np.zeros((batch.size, n_pad, hidden))
    v = np.zeros((batch.size, n_pad, hidden))
    lens = np.asarray([r.n for r in requests], dtype=np.int64)
    for i, req in enumerate(requests):
        q[i, : req.n] = req.q
        k[i, : req.n] = req.k
        v[i, : req.n] = req.v
    result = salo.attend(pattern, q, k, v, heads=batch.heads, valid_lens=lens)
    return [result.output[i, : requests[i].n] for i in range(batch.size)], result


@dataclass
class ServingStats:
    """Aggregate queue/latency/throughput accounting of a session."""

    completed: int
    batches: int
    wall_s: float
    throughput_rps: float
    mean_batch_size: float
    queue_p50_ms: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    plan_cache: dict
    rejected: int = 0  # turned away by the session's admission policy

    def render(self) -> str:
        lines = [
            f"requests completed   {self.completed} (rejected {self.rejected})",
            f"batches executed     {self.batches}",
            f"mean batch size      {self.mean_batch_size:.2f}",
            f"wall time            {self.wall_s * 1e3:.1f} ms",
            f"throughput           {self.throughput_rps:.1f} req/s",
            f"queue p50            {self.queue_p50_ms:.2f} ms",
            f"latency p50/p90/p99  {self.latency_p50_ms:.2f} / "
            f"{self.latency_p90_ms:.2f} / {self.latency_p99_ms:.2f} ms",
            f"plan cache           {self.plan_cache['hits']} hits / "
            f"{self.plan_cache['misses']} misses "
            f"(hit rate {self.plan_cache['hit_rate']:.0%})",
        ]
        return "\n".join(lines)


class ServingSession:
    """Multi-request serving facade over one :class:`SALO` instance.

    Parameters
    ----------
    salo:
        The accelerator instance (shared plan cache); defaults to a
        fresh Table 1 configuration.
    max_batch_size:
        Upper bound on requests per engine dispatch.
    pad_to_bucket:
        Batch same-structure requests of different lengths under one
        bucket-length plan with masked tails (higher occupancy, outputs
        equivalent up to partial-softmax regrouping — no longer
        guaranteed bit-identical to per-request calls).
    admission:
        Optional :class:`~repro.serving.admission.AdmissionPolicy`
        consulted at :meth:`submit`; a rejected submission returns
        ``None`` instead of a request id and is tallied per SLO class in
        :attr:`rejected` (overload back-pressure at the session door).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        salo: Optional[SALO] = None,
        max_batch_size: int = 8,
        bucket_floor: int = 16,
        pad_to_bucket: bool = False,
        admission: Optional[AdmissionPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.salo = salo if salo is not None else SALO()
        self.scheduler = BatchScheduler(
            max_batch_size=max_batch_size,
            bucket_floor=bucket_floor,
            pad_to_bucket=pad_to_bucket,
        )
        self.admission = admission
        self.rejected: Dict[str, int] = {}  # slo_class -> rejection count
        self.clock = clock
        self.results: Dict[Hashable, RequestResult] = {}
        self.batches_executed = 0
        self._batch_sizes: List[int] = []
        self._service_s_total = 0.0  # summed per-batch engine time
        self._serial = 0
        self._known_ids: set = set()  # pending + completed (collision guard)
        self._first_submit_s: Optional[float] = None
        self._last_complete_s: Optional[float] = None

    # ------------------------------------------------------------------
    def submit(
        self,
        pattern: AttentionPattern,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        heads: int = 1,
        request_id: Optional[Hashable] = None,
        arrival_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        slo_class: str = "default",
    ) -> Optional[Hashable]:
        """Queue one attention request; returns its id.

        ``arrival_s`` overrides the arrival timestamp (trace replay with
        recorded arrivals — queueing delay is then measured from trace
        time, not the submit call).  ``deadline_s``/``slo_class`` ride
        along for deadline-aware schedulers and per-class accounting.

        With an ``admission`` policy configured, an over-capacity
        submission is turned away: it returns ``None``, counts in
        :attr:`rejected` under its SLO class, and nothing is queued.

        Rejects patterns without band structure up front: SALO cannot
        schedule them, and failing at submit keeps one bad request from
        crashing a drain with other requests queued.
        """
        if pattern_structure_key(pattern) is None:
            raise ValueError(
                "pattern does not expose band structure; SALO serves hybrid "
                "sparse patterns (bands + global tokens) only"
            )
        if request_id is None:
            self._serial += 1
            while self._serial in self._known_ids:  # skip user-taken ints
                self._serial += 1
            request_id = self._serial
        elif request_id in self._known_ids:
            raise ValueError(f"request id {request_id!r} already in use")
        self._known_ids.add(request_id)
        now = self.clock()
        if self._first_submit_s is None:
            self._first_submit_s = now
        request = AttentionRequest(
            request_id=request_id,
            pattern=pattern,
            q=q,
            k=k,
            v=v,
            heads=heads,
            arrival_s=now if arrival_s is None else arrival_s,
            deadline_s=deadline_s,
            slo_class=slo_class,
        )
        if self.admission is not None:
            ctx = self._admission_context(request, now)
            if not self.admission.admit(request, ctx):
                self.rejected[slo_class] = self.rejected.get(slo_class, 0) + 1
                self._known_ids.discard(request_id)  # the id stays usable
                return None
        self.scheduler.enqueue(request)
        return request_id

    def _admission_context(self, request: AttentionRequest, now: float) -> AdmissionContext:
        """Session-door admission view: queue depth + cost-model wait.

        ``now`` is the *session clock* reading, not the request's
        (possibly replayed) ``arrival_s``: stateful admission policies
        like the token bucket need one monotone clock domain, and a
        trace replay that mixes recorded arrivals with live submissions
        would otherwise run the bucket arithmetic backwards.  The wait
        estimate is the queue depth times the request's own cost-model
        latency — coarse, but deterministic and cheap (the SALO stats
        cache absorbs repeat structures), and lazy so depth-only
        policies never trigger an estimate.
        """

        def estimate() -> Tuple[float, float]:
            unit = self.salo.estimate(
                request.pattern, heads=request.heads, head_dim=request.head_dim
            ).latency_s
            return (self.scheduler.pending * unit, unit)

        return AdmissionContext(
            now=now, depth=self.scheduler.pending, estimator=estimate
        )

    # ------------------------------------------------------------------
    def step(self) -> Optional[Batch]:
        """Execute the next batch; returns it (or ``None`` if idle).

        The batch's sequences are stacked on a leading axis and run as a
        single ``SALO.attend`` dispatch; outputs are bit-identical to
        per-request calls (equivalent up to partial-softmax regrouping
        for padded cross-length batches), so batching is a throughput
        decision.
        """
        batch = self.scheduler.next_batch()
        if batch is None:
            return None
        start = self.clock()
        outputs, result = execute_batch(self.salo, batch)
        end = self.clock()
        service_s = end - start
        for i, req in enumerate(batch.requests):
            self.results[req.request_id] = RequestResult(
                request_id=req.request_id,
                output=outputs[i],
                batch_size=batch.size,
                queue_s=max(0.0, start - req.arrival_s),
                service_s=service_s,
                stats=result.stats,
            )
        self.batches_executed += 1
        self._batch_sizes.append(batch.size)
        self._service_s_total += service_s
        self._last_complete_s = end
        return batch

    def drain(self) -> Dict[Hashable, RequestResult]:
        """Execute batches until the queue is empty; returns all results."""
        while self.step() is not None:
            pass
        return self.results

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return self.scheduler.pending

    def stats(self) -> ServingStats:
        """Reduce per-request accounting to throughput and percentiles.

        Safe on the edge cases a capacity script hits first: an empty
        session (no requests yet) and a single-request session with an
        arbitrarily coarse clock both return finite, renderable numbers
        — never a division by zero or an ``inf`` throughput.
        """
        completed = len(self.results)
        rejected = sum(self.rejected.values())
        if completed == 0:
            return ServingStats(
                completed=0,
                batches=0,
                wall_s=0.0,
                throughput_rps=0.0,
                mean_batch_size=0.0,
                queue_p50_ms=0.0,
                latency_p50_ms=0.0,
                latency_p90_ms=0.0,
                latency_p99_ms=0.0,
                plan_cache=self.salo.cache_info(),
                rejected=rejected,
            )
        latencies = np.asarray([r.latency_s for r in self.results.values()])
        queues = np.asarray([r.queue_s for r in self.results.values()])
        wall_s = max(self._last_complete_s - self._first_submit_s, 0.0)
        if wall_s <= 0.0:
            # Degenerate clock (frozen test clock, sub-resolution run):
            # fall back to the summed per-batch engine time — counted
            # once per batch, not once per member — so throughput stays
            # finite; 0.0 when even that is zero.
            throughput = (
                completed / self._service_s_total if self._service_s_total > 0 else 0.0
            )
        else:
            throughput = completed / wall_s
        p50, p90, p99 = np.percentile(latencies, [50, 90, 99])
        return ServingStats(
            completed=completed,
            batches=self.batches_executed,
            wall_s=wall_s,
            throughput_rps=throughput,
            mean_batch_size=float(np.mean(self._batch_sizes)) if self._batch_sizes else 0.0,
            queue_p50_ms=float(np.percentile(queues, 50)) * 1e3,
            latency_p50_ms=float(p50) * 1e3,
            latency_p90_ms=float(p90) * 1e3,
            latency_p99_ms=float(p99) * 1e3,
            plan_cache=self.salo.cache_info(),
            rejected=rejected,
        )
