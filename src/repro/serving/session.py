"""Serving session: queue -> bucket -> batch -> batched engine dispatch.

:class:`ServingSession` is the facade a driver (the CLI ``serve``
command, a benchmark, a test) talks to: submit requests, then
:meth:`ServingSession.step` or :meth:`ServingSession.drain` them through
the :class:`~repro.serving.batching.BatchScheduler` and a shared
:class:`~repro.core.salo.SALO` instance.  Each batch becomes one
``SALO.attend`` call with a leading batch axis — same-plan sequences
share scheduling, compilation and the engine's per-job dispatch cost,
while outputs stay bit-identical to per-request calls.  In
``pad_to_bucket`` mode, same-structure requests of different lengths
batch under one bucket-length plan with masked tails (outputs are sliced
back to each request's true length; see :mod:`repro.serving.batching`).

Accounting: every request's queueing delay (submit -> batch dispatch)
and service time (its batch's engine wall time) are recorded, and
:meth:`ServingSession.stats` reduces them to throughput plus latency
percentiles — the numbers a capacity study of the "heavy traffic"
scenario needs.

Backend threading
-----------------
The engine behind a session is selected by registered backend name
(``ServingSession(backend="functional-legacy")``): SALO engine backends
get a warm :class:`~repro.core.salo.SALO` instance, oracle backends get
their :class:`~repro.api.protocol.AttentionBackend` adapter.  The
execution path adapts to the engine's capabilities — backends without a
batch axis are served by a per-request loop inside
:func:`execute_batch` (batching still amortises queueing and policy
work, just not the dispatch), and backends that serve mask-only
patterns (``needs_structure=False``) accept opaque submissions the
SALO-backed sessions must reject.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.salo import SALO, pattern_structure_key
from ..patterns.base import AttentionPattern
from .admission import AdmissionContext, AdmissionPolicy, queue_drain_estimate
from .batching import Batch, BatchScheduler
from .request import AttentionRequest, RequestResult

__all__ = ["ServingSession", "ServingStats", "execute_batch", "stack_batch_operands"]


def stack_batch_operands(
    requests, pattern: AttentionPattern
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Stack member operands into one ``(b, n, hidden)`` dispatch shape.

    Uniform-length members stack directly (``valid_lens`` is ``None``);
    mixed-length members are zero-padded to ``pattern.n`` (the batch's
    execution length) with their true lengths returned as ``valid_lens``
    for tail masking.  This is the *single* packing used by both the
    local dispatch path (:func:`execute_batch`) and the transport wire
    format (:func:`repro.transport.base.stacked_operands` re-exports
    it), so what ships over shared memory cannot drift from what a
    same-process engine would see.
    """
    lens = [r.n for r in requests]
    if all(n == pattern.n for n in lens):
        q = np.stack([r.q for r in requests])
        k = np.stack([r.k for r in requests])
        v = np.stack([r.v for r in requests])
        return q, k, v, None
    hidden = requests[0].hidden
    b, n_pad = len(requests), pattern.n
    q = np.zeros((b, n_pad, hidden))
    k = np.zeros((b, n_pad, hidden))
    v = np.zeros((b, n_pad, hidden))
    for i, req in enumerate(requests):
        q[i, : req.n] = req.q
        k[i, : req.n] = req.k
        v[i, : req.n] = req.v
    return q, k, v, np.asarray(lens, dtype=np.int64)


def execute_batch(engine, batch: Batch) -> Tuple[List[np.ndarray], List[object]]:
    """One engine dispatch for a batch; returns per-request outputs.

    ``engine`` is anything with the attend contract — a
    :class:`~repro.core.salo.SALO` instance or a
    :class:`~repro.api.protocol.AttentionBackend` adapter.  Uniform-length
    batches stack members on a leading batch axis (bit-identical to
    per-request calls); mixed-length padded batches zero-pad members to
    the bucket length, mask the tails via ``valid_lens`` and slice
    outputs back.  Engines without a batch axis (``supports_batch``
    False, e.g. the systolic micro-simulator) fall back to a per-request
    loop — arithmetic identical to the stacked dispatch, minus the
    amortisation.  This is the single execution path shared by
    :class:`ServingSession` and the cluster simulator's measured-clock
    workers.

    Returns ``(outputs, results)``, one entry per request.  A single
    batched dispatch repeats its one result object for every member
    (they genuinely share plan and stats); the serial fallback keeps
    each request's own result, whose stats describe that request's
    exact-length plan.
    """
    requests = batch.requests
    supports_batch = getattr(engine, "supports_batch", True)
    supports_lens = getattr(engine, "supports_valid_lens", True)
    serial = (
        batch.size == 1
        or not supports_batch
        or (batch.mixed_lengths and not supports_lens)
    )
    if serial:
        # Per-request loop: each member runs its own exact-length
        # pattern, so no padding (and no valid_lens support) is needed.
        results = [
            engine.attend(r.pattern, r.q, r.k, r.v, heads=r.heads) for r in requests
        ]
        return [res.output for res in results], results
    pattern = batch.execution_pattern()
    q, k, v, lens = stack_batch_operands(requests, pattern)
    if lens is None:
        result = engine.attend(pattern, q, k, v, heads=batch.heads)
        return [result.output[i] for i in range(batch.size)], [result] * batch.size
    # Padded cross-length batch: one bucket-length plan, masked tails.
    result = engine.attend(pattern, q, k, v, heads=batch.heads, valid_lens=lens)
    outputs = [result.output[i, : requests[i].n] for i in range(batch.size)]
    return outputs, [result] * batch.size


@dataclass
class ServingStats:
    """Aggregate queue/latency/throughput accounting of a session."""

    completed: int
    batches: int
    wall_s: float
    throughput_rps: float
    mean_batch_size: float
    queue_p50_ms: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    plan_cache: dict
    rejected: int = 0  # turned away by the session's admission policy

    def to_dict(self) -> dict:
        """JSON-ready view (the ``serve --json`` payload core)."""
        from dataclasses import asdict

        return asdict(self)

    def render(self) -> str:
        lines = [
            f"requests completed   {self.completed} (rejected {self.rejected})",
            f"batches executed     {self.batches}",
            f"mean batch size      {self.mean_batch_size:.2f}",
            f"wall time            {self.wall_s * 1e3:.1f} ms",
            f"throughput           {self.throughput_rps:.1f} req/s",
            f"queue p50            {self.queue_p50_ms:.2f} ms",
            f"latency p50/p90/p99  {self.latency_p50_ms:.2f} / "
            f"{self.latency_p90_ms:.2f} / {self.latency_p99_ms:.2f} ms",
            f"plan cache           {self.plan_cache['hits']} hits / "
            f"{self.plan_cache['misses']} misses "
            f"(hit rate {self.plan_cache['hit_rate']:.0%})",
        ]
        return "\n".join(lines)


class ServingSession:
    """Multi-request serving facade over one :class:`SALO` instance.

    Parameters
    ----------
    salo:
        The serving engine (shared plan cache): a
        :class:`~repro.core.salo.SALO` instance or any
        :class:`~repro.api.protocol.AttentionBackend`; defaults to a
        fresh Table 1 SALO.  Mutually exclusive with ``backend``.
    backend:
        Registered backend name (see :func:`repro.api.list_backends`);
        the session builds a fresh engine for it via
        :func:`repro.api.engine_factory`.  Non-executing backends
        (``sanger``) are rejected at construction.
    max_batch_size:
        Upper bound on requests per engine dispatch.
    pad_to_bucket:
        Batch same-structure requests of different lengths under one
        bucket-length plan with masked tails (higher occupancy, outputs
        equivalent up to partial-softmax regrouping — no longer
        guaranteed bit-identical to per-request calls).
    admission:
        Optional :class:`~repro.serving.admission.AdmissionPolicy`
        consulted at :meth:`submit`; a rejected submission returns
        ``None`` instead of a request id and is tallied per SLO class in
        :attr:`rejected` (overload back-pressure at the session door).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        salo=None,
        max_batch_size: int = 8,
        bucket_floor: int = 16,
        pad_to_bucket: bool = False,
        admission: Optional[AdmissionPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
        backend: Optional[str] = None,
    ) -> None:
        if salo is not None and backend is not None:
            raise ValueError("pass either a salo/engine instance or a backend name, not both")
        if backend is not None:
            from ..api import engine_factory

            salo = engine_factory(backend)()
        self.salo = salo if salo is not None else SALO()
        self.scheduler = BatchScheduler(
            max_batch_size=max_batch_size,
            bucket_floor=bucket_floor,
            pad_to_bucket=pad_to_bucket,
        )
        self.admission = admission
        self.rejected: Dict[str, int] = {}  # slo_class -> rejection count
        self.clock = clock
        self.results: Dict[Hashable, RequestResult] = {}
        self.batches_executed = 0
        self._batch_sizes: List[int] = []
        self._service_s_total = 0.0  # summed per-batch engine time
        self._serial = 0
        self._known_ids: set = set()  # pending + completed (collision guard)
        self._first_submit_s: Optional[float] = None
        self._last_complete_s: Optional[float] = None

    # ------------------------------------------------------------------
    def submit(
        self,
        pattern: AttentionPattern,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        heads: int = 1,
        request_id: Optional[Hashable] = None,
        arrival_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        slo_class: str = "default",
        client_id: Optional[Hashable] = None,
    ) -> Optional[Hashable]:
        """Queue one attention request; returns its id.

        ``arrival_s`` overrides the arrival timestamp (trace replay with
        recorded arrivals — queueing delay is then measured from trace
        time, not the submit call).  ``deadline_s``/``slo_class`` ride
        along for deadline-aware schedulers and per-class accounting;
        ``client_id`` identifies the submitting tenant for per-client
        admission quotas (composite token-bucket keys).

        With an ``admission`` policy configured, an over-capacity
        submission is turned away: it returns ``None``, counts in
        :attr:`rejected` under its SLO class, and nothing is queued.

        For engines that schedule band structure (every SALO backend),
        patterns without it are rejected up front — failing at submit
        keeps one bad request from crashing a drain with other requests
        queued.  Oracle backends (``needs_structure`` False) accept
        mask-only patterns; they queue as singleton batches.
        """
        if pattern_structure_key(pattern) is None and getattr(
            self.salo, "needs_structure", True
        ):
            raise ValueError(
                "pattern does not expose band structure; SALO serves hybrid "
                "sparse patterns (bands + global tokens) only (oracle "
                "backends with needs_structure=False accept mask-only "
                "patterns)"
            )
        if request_id is None:
            self._serial += 1
            while self._serial in self._known_ids:  # skip user-taken ints
                self._serial += 1
            request_id = self._serial
        elif request_id in self._known_ids:
            raise ValueError(f"request id {request_id!r} already in use")
        self._known_ids.add(request_id)
        now = self.clock()
        if self._first_submit_s is None:
            self._first_submit_s = now
        request = AttentionRequest(
            request_id=request_id,
            pattern=pattern,
            q=q,
            k=k,
            v=v,
            heads=heads,
            arrival_s=now if arrival_s is None else arrival_s,
            deadline_s=deadline_s,
            slo_class=slo_class,
            client_id=client_id,
        )
        if self.admission is not None:
            ctx = self._admission_context(request, now)
            if not self.admission.admit(request, ctx):
                self.rejected[slo_class] = self.rejected.get(slo_class, 0) + 1
                self._known_ids.discard(request_id)  # the id stays usable
                return None
        self.scheduler.enqueue(request)
        return request_id

    def _admission_context(self, request: AttentionRequest, now: float) -> AdmissionContext:
        """Session-door admission view: queue depth + cost-model wait.

        ``now`` is the *session clock* reading, not the request's
        (possibly replayed) ``arrival_s``: stateful admission policies
        like the token bucket need one monotone clock domain, and a
        trace replay that mixes recorded arrivals with live submissions
        would otherwise run the bucket arithmetic backwards.  The wait
        estimate is the queue-drain model over the pending backlog with
        the request's own cost-model latency as the unit (the session
        door has no batch-overhead clock, so the drain reduces to
        depth x unit here) — deterministic, cheap (the SALO stats cache
        absorbs repeat structures), and lazy so depth-only policies
        never trigger an estimate.
        """

        def estimate() -> Tuple[float, float]:
            unit = self.salo.estimate(
                request.pattern, heads=request.heads, head_dim=request.head_dim
            ).latency_s
            wait = queue_drain_estimate(
                self.scheduler.pending,
                unit,
                max_batch_size=self.scheduler.max_batch_size,
            )
            return (wait, unit)

        return AdmissionContext(
            now=now, depth=self.scheduler.pending, estimator=estimate
        )

    # ------------------------------------------------------------------
    def step(self) -> Optional[Batch]:
        """Execute the next batch; returns it (or ``None`` if idle).

        The batch's sequences are stacked on a leading axis and run as a
        single ``SALO.attend`` dispatch; outputs are bit-identical to
        per-request calls (equivalent up to partial-softmax regrouping
        for padded cross-length batches), so batching is a throughput
        decision.
        """
        batch = self.scheduler.next_batch()
        if batch is None:
            return None
        start = self.clock()
        outputs, results = execute_batch(self.salo, batch)
        end = self.clock()
        service_s = end - start
        for i, req in enumerate(batch.requests):
            self.results[req.request_id] = RequestResult(
                request_id=req.request_id,
                output=outputs[i],
                batch_size=batch.size,
                queue_s=max(0.0, start - req.arrival_s),
                service_s=service_s,
                stats=results[i].stats,
            )
        self.batches_executed += 1
        self._batch_sizes.append(batch.size)
        self._service_s_total += service_s
        self._last_complete_s = end
        return batch

    def drain(self) -> Dict[Hashable, RequestResult]:
        """Execute batches until the queue is empty; returns all results."""
        while self.step() is not None:
            pass
        return self.results

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return self.scheduler.pending

    def stats(self) -> ServingStats:
        """Reduce per-request accounting to throughput and percentiles.

        Safe on the edge cases a capacity script hits first: an empty
        session (no requests yet) and a single-request session with an
        arbitrarily coarse clock both return finite, renderable numbers
        — never a division by zero or an ``inf`` throughput.
        """
        completed = len(self.results)
        rejected = sum(self.rejected.values())
        if completed == 0:
            return ServingStats(
                completed=0,
                batches=0,
                wall_s=0.0,
                throughput_rps=0.0,
                mean_batch_size=0.0,
                queue_p50_ms=0.0,
                latency_p50_ms=0.0,
                latency_p90_ms=0.0,
                latency_p99_ms=0.0,
                plan_cache=self.salo.cache_info(),
                rejected=rejected,
            )
        latencies = np.asarray([r.latency_s for r in self.results.values()])
        queues = np.asarray([r.queue_s for r in self.results.values()])
        wall_s = max(self._last_complete_s - self._first_submit_s, 0.0)
        if wall_s <= 0.0:
            # Degenerate clock (frozen test clock, sub-resolution run):
            # fall back to the summed per-batch engine time — counted
            # once per batch, not once per member — so throughput stays
            # finite; 0.0 when even that is zero.
            throughput = (
                completed / self._service_s_total if self._service_s_total > 0 else 0.0
            )
        else:
            throughput = completed / wall_s
        p50, p90, p99 = np.percentile(latencies, [50, 90, 99])
        return ServingStats(
            completed=completed,
            batches=self.batches_executed,
            wall_s=wall_s,
            throughput_rps=throughput,
            mean_batch_size=float(np.mean(self._batch_sizes)) if self._batch_sizes else 0.0,
            queue_p50_ms=float(np.percentile(queues, 50)) * 1e3,
            latency_p50_ms=float(p50) * 1e3,
            latency_p90_ms=float(p90) * 1e3,
            latency_p99_ms=float(p99) * 1e3,
            plan_cache=self.salo.cache_info(),
            rejected=rejected,
        )
