"""Admission control: decide at arrival whether a request enters at all.

Under sustained overload (offered load rho > 1) every queue-only system
degenerates the same way: backlogs grow without bound, every request
waits longer than its deadline, and goodput collapses even though the
engines never idle.  Admission control converts that collapse into an
explicit, accounted *rejection* at arrival time — the request is turned
away while the refusal is still cheap, instead of being served late when
it is worthless.

An :class:`AdmissionPolicy` is consulted once per arrival with an
:class:`AdmissionContext` describing the admitting entity's state —
queue depth, and a lazy cost-model estimate of the wait the request
would face.  The context is *lazy* on purpose: the estimate runs
``SALO.estimate`` (cheap after the plan cache warms, but not free), and
policies that never look at it (admit-all, queue-depth, token-bucket)
must not pay for it.

The module lives in the serving layer because both doors consume it —
:meth:`ServingSession.submit` at a single engine's queue and the cluster
simulator's arrival handler across a pool — and serving sits below
cluster in the layering (``repro.cluster`` re-exports everything here).

Policies
--------
* :class:`AdmitAll` — the null policy; the pre-overload-control
  behaviour, kept explicit so sweeps can name it.
* :class:`QueueDepthCap` — classic bounded buffer: reject once the
  admitting entity already holds ``max_depth`` requests (queued plus
  executing).  Bounds memory and worst-case wait by construction.
* :class:`EstimatedWaitCap` — deadline-aware: reject a request whose
  estimated wait plus own service already exceeds its latency budget
  (it is *doomed at arrival* — admitting it only adds queueing delay to
  everyone behind it).  An optional absolute ``max_wait_s`` also bounds
  deadline-free traffic.
* :class:`TokenBucketAdmission` — per-SLO-class rate limiting (the
  multi-tenant quota): each class owns a token bucket refilled at its
  contracted rate; a class bursting above its quota is rejected without
  touching the others' capacity.

All policies are deterministic: their decisions depend only on the
request, the context, and (for the token bucket) their own arithmetic
state — never on a wall clock or an RNG — so simulations that use them
stay replayable.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional, Tuple, Type

from .request import AttentionRequest

__all__ = [
    "AdmissionContext",
    "AdmissionPolicy",
    "AdmitAll",
    "QueueDepthCap",
    "EstimatedWaitCap",
    "TokenBucketAdmission",
    "ADMISSIONS",
    "make_admission",
    "queue_drain_estimate",
]


def queue_drain_estimate(
    depth: int,
    unit_s: float,
    batch_overhead_s: float = 0.0,
    max_batch_size: Optional[int] = None,
) -> float:
    """Cost-model time to drain a backlog of ``depth`` requests.

    The batch-amortisation-aware wait model: the backlog is served in
    batches of at most ``max_batch_size``, and under the cost model a
    batch of ``B`` costs ``B * unit_s + batch_overhead_s``.  Draining
    ``depth`` requests therefore takes

        ``depth * unit_s + ceil(depth / max_batch_size) * batch_overhead_s``

    which is what an arriving request actually waits before a batch slot
    opens.  The previous ``depth * unit + overhead`` shorthand charged
    one overhead regardless of backlog, so under deep queues it
    under-estimated the wait by ``(ceil(depth/B) - 1) * overhead`` and
    doom-admitted requests the drain model correctly turns away; with an
    empty queue it charged an overhead no request would wait for.  The
    drain estimate is exact for a FIFO backlog of equal-cost requests,
    and still O(1) and deterministic.

    ``max_batch_size`` is **required**: every admission door knows its
    scheduler's cap, and an uncapped call silently degenerated to the
    single-overhead shorthand this function exists to replace (one batch
    overhead charged for any depth — monotone-in-depth only by luck of
    the ``unit_s`` term, wrong by ``(ceil(depth/B) - 1) * overhead``
    under deep queues).
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if max_batch_size is None or max_batch_size < 1:
        raise ValueError(
            f"max_batch_size must be a positive batch cap, got {max_batch_size!r}; "
            "pass the admitting scheduler's max_batch_size"
        )
    if depth == 0:
        return 0.0
    batches = -(-depth // max_batch_size)  # ceil
    return depth * unit_s + batches * batch_overhead_s


class AdmissionContext:
    """State of the admitting entity at one arrival.

    ``depth`` is the number of requests the entity already holds (queued
    plus executing).  ``estimated_wait_s`` / ``estimated_service_s`` come
    from a lazily-invoked estimator — ``(wait, service)`` in seconds from
    the cost model — evaluated at most once, and only when a policy
    actually reads them.
    """

    def __init__(
        self,
        now: float,
        depth: int,
        estimator: Callable[[], Tuple[float, float]],
    ) -> None:
        self.now = now
        self.depth = depth
        self._estimator = estimator
        self._estimate: Optional[Tuple[float, float]] = None

    def _ensure(self) -> Tuple[float, float]:
        if self._estimate is None:
            self._estimate = self._estimator()
        return self._estimate

    @property
    def estimated_wait_s(self) -> float:
        """Cost-model wait before the request would start service."""
        return self._ensure()[0]

    @property
    def estimated_service_s(self) -> float:
        """Cost-model service time of the request itself."""
        return self._ensure()[1]


class AdmissionPolicy:
    """Accepts or rejects one request at arrival time."""

    name = "abstract"

    def admit(self, request: AttentionRequest, ctx: AdmissionContext) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class AdmitAll(AdmissionPolicy):
    """No admission control (the pre-overload-control behaviour)."""

    name = "admit-all"

    def admit(self, request: AttentionRequest, ctx: AdmissionContext) -> bool:
        return True


class QueueDepthCap(AdmissionPolicy):
    """Reject once the admitting entity holds ``max_depth`` requests."""

    name = "queue-depth"

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth

    def admit(self, request: AttentionRequest, ctx: AdmissionContext) -> bool:
        return ctx.depth < self.max_depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_depth={self.max_depth})"


class EstimatedWaitCap(AdmissionPolicy):
    """Reject requests the cost model says are already doomed.

    A deadlined request is rejected when its estimated wait plus its own
    service time exceeds ``slack`` times its latency budget — serving it
    could only produce a deadline miss, so the batch slots it would burn
    are better spent on feasible work.  ``max_wait_s`` (optional) bounds
    the estimated wait of *any* request, deadline or not, which is how
    deadline-free bulk traffic gets back-pressure too.
    """

    name = "est-wait"

    def __init__(self, slack: float = 1.0, max_wait_s: Optional[float] = None) -> None:
        # NaN-safe comparisons: `not (x > 0)` rejects NaN, `x <= 0` doesn't.
        if not (slack > 0) or not math.isfinite(slack):
            raise ValueError(f"slack must be positive and finite, got {slack}")
        if max_wait_s is not None and not (max_wait_s >= 0):
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.slack = slack
        self.max_wait_s = max_wait_s

    def admit(self, request: AttentionRequest, ctx: AdmissionContext) -> bool:
        if self.max_wait_s is not None and ctx.estimated_wait_s > self.max_wait_s:
            return False
        if request.deadline_s is not None:
            budget = self.slack * request.deadline_s
            if ctx.estimated_wait_s + ctx.estimated_service_s > budget:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(slack={self.slack}, max_wait_s={self.max_wait_s})"


class TokenBucketAdmission(AdmissionPolicy):
    """Per-SLO-class (and per-client) token buckets: multi-tenant quotas.

    ``rates`` keys are either a class name ``"bulk"`` — one bucket
    *shared* by every client of the class — or a composite
    ``("bulk", "tenant-a")`` key giving that client of that class its
    own dedicated bucket.  Each bucket refills at its contracted rate
    (requests per second) up to ``burst`` tokens; an arrival spends one
    token from its bucket or is rejected.  Quota lookup is most-specific
    first: the exact ``(slo_class, client_id)`` key, then the class-wide
    key, then ``default_rate`` (``None`` meaning unlimited).  With
    ``per_client=True`` a class-wide or default rate is applied *per
    client* — every ``(class, client)`` pair gets its own bucket at that
    rate — which is how one flooding client is shed without touching its
    well-behaved neighbours in the same class.

    A tenant exceeding its quota is shed at its own gate — it cannot
    crowd out another bucket's capacity, which is the isolation property
    per-tenant SLOs need.  The bucket state advances on the *caller's*
    clock (``ctx.now``), so inside the deterministic simulator the
    policy is as replayable as the event loop driving it.
    """

    name = "token-bucket"

    def __init__(
        self,
        rates: Optional[Mapping[object, float]] = None,
        default_rate: Optional[float] = None,
        burst: float = 4.0,
        per_client: bool = False,
    ) -> None:
        rates = dict(rates or {})
        for key, rate in rates.items():
            if isinstance(key, tuple):
                if len(key) != 2 or not isinstance(key[0], str):
                    raise ValueError(
                        "composite rate keys must be (slo_class, client_id) "
                        f"2-tuples, got {key!r}"
                    )
            elif not isinstance(key, str):
                raise ValueError(
                    f"rate keys must be a class name or (class, client) tuple, got {key!r}"
                )
            if not (rate > 0) or not math.isfinite(rate):
                raise ValueError(
                    f"rate for {key!r} must be positive and finite, got {rate}"
                )
        if default_rate is not None and (
            not (default_rate > 0) or not math.isfinite(default_rate)
        ):
            raise ValueError(f"default_rate must be positive and finite, got {default_rate}")
        if not (burst >= 1) or not math.isfinite(burst):
            raise ValueError(f"burst must be >= 1 and finite, got {burst}")
        self.rates = rates
        self.default_rate = default_rate
        self.burst = burst
        self.per_client = per_client
        # bucket key -> (tokens, last_t); keys mirror _resolve()'s choice
        self._buckets: Dict[object, Tuple[float, float]] = {}

    def _resolve(
        self, request: AttentionRequest
    ) -> Tuple[object, Optional[float]]:
        """(bucket key, rate) for a request — most-specific quota first."""
        composite = (request.slo_class, request.client_id)
        if request.client_id is not None and composite in self.rates:
            return composite, self.rates[composite]
        rate = self.rates.get(request.slo_class, self.default_rate)
        if self.per_client:
            return composite, rate
        return request.slo_class, rate

    def admit(self, request: AttentionRequest, ctx: AdmissionContext) -> bool:
        key, rate = self._resolve(request)
        if rate is None:
            return True  # no quota contracted for this class/client
        tokens, last = self._buckets.get(key, (self.burst, ctx.now))
        tokens = min(self.burst, tokens + max(ctx.now - last, 0.0) * rate)
        if tokens >= 1.0:
            self._buckets[key] = (tokens - 1.0, ctx.now)
            return True
        self._buckets[key] = (tokens, ctx.now)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rates={self.rates}, burst={self.burst})"


ADMISSIONS: Dict[str, Type[AdmissionPolicy]] = {
    AdmitAll.name: AdmitAll,
    QueueDepthCap.name: QueueDepthCap,
    EstimatedWaitCap.name: EstimatedWaitCap,
    TokenBucketAdmission.name: TokenBucketAdmission,
}


def make_admission(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate an admission policy by registry name (CLI / sweeps)."""
    if name not in ADMISSIONS:
        raise KeyError(f"unknown admission policy {name!r}; known: {sorted(ADMISSIONS)}")
    return ADMISSIONS[name](**kwargs)
