"""Design-space exploration over SALO hardware configurations.

The paper picks one operating point (32 x 32 at 1 GHz, Table 1) without
showing the surrounding design space.  This explorer sweeps PE-array
geometry (and optionally frequency), evaluates each candidate with the
same scheduler + timing + synthesis + energy models used everywhere else,
and reports latency/area/power/energy-delay trade-offs with a Pareto
filter — the analysis an architect would run before freezing Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..accelerator.energy import EnergyTable, plan_energy
from ..accelerator.synthesis import synthesize
from ..accelerator.timing import plan_timing
from ..core.config import HardwareConfig
from ..scheduler.scheduler import DataScheduler, SchedulerError
from ..workloads.configs import AttentionWorkload

__all__ = ["DesignPoint", "sweep_designs", "pareto_front", "best_design"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated hardware candidate."""

    config: HardwareConfig
    latency_s: float
    area_mm2: float
    power_w: float
    energy_j: float
    utilization: float

    @property
    def pe_geometry(self) -> str:
        return f"{self.config.pe_rows}x{self.config.pe_cols}"

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s)."""
        return self.energy_j * self.latency_s

    @property
    def area_delay(self) -> float:
        """Area-delay product (mm²·s)."""
        return self.area_mm2 * self.latency_s

    def metric(self, name: str) -> float:
        if name == "edp":
            return self.edp
        if name == "area_delay":
            return self.area_delay
        return float(getattr(self, name))


def sweep_designs(
    workload: AttentionWorkload,
    pe_rows_options: Sequence[int] = (16, 32, 64),
    pe_cols_options: Sequence[int] = (16, 32, 64),
    frequencies_hz: Sequence[float] = (1.0e9,),
    base: Optional[HardwareConfig] = None,
    energy_table: EnergyTable = EnergyTable(),
) -> List[DesignPoint]:
    """Evaluate every (rows, cols, frequency) candidate on a workload.

    Candidates whose global-token bound cannot host the workload are
    skipped (they are simply infeasible designs for it).
    """
    if base is None:
        base = HardwareConfig()
    pattern = workload.pattern()
    points: List[DesignPoint] = []
    for rows in pe_rows_options:
        for cols in pe_cols_options:
            for freq in frequencies_hz:
                config = replace(base, pe_rows=rows, pe_cols=cols, frequency_hz=freq)
                scheduler = DataScheduler(config)
                try:
                    plan = scheduler.schedule(
                        pattern, heads=workload.heads, head_dim=workload.head_dim
                    )
                except SchedulerError:
                    continue
                timing = plan_timing(plan)
                report = synthesize(config)
                energy = plan_energy(plan, table=energy_table, area_mm2=report.area_mm2)
                points.append(
                    DesignPoint(
                        config=config,
                        latency_s=timing.seconds,
                        area_mm2=report.area_mm2,
                        power_w=report.power_w,
                        energy_j=energy.total_j,
                        utilization=timing.utilization,
                    )
                )
    return points


def pareto_front(
    points: Iterable[DesignPoint],
    objectives: Tuple[str, str] = ("latency_s", "area_mm2"),
) -> List[DesignPoint]:
    """Non-dominated points under two minimisation objectives."""
    pts = list(points)
    front = []
    for p in pts:
        dominated = any(
            (q.metric(objectives[0]) <= p.metric(objectives[0])
             and q.metric(objectives[1]) <= p.metric(objectives[1])
             and (q.metric(objectives[0]) < p.metric(objectives[0])
                  or q.metric(objectives[1]) < p.metric(objectives[1])))
            for q in pts
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.metric(objectives[0]))


def best_design(
    points: Iterable[DesignPoint], metric: str = "edp"
) -> DesignPoint:
    """The candidate minimising a scalar figure of merit."""
    pts = list(points)
    if not pts:
        raise ValueError("no design points to choose from")
    return min(pts, key=lambda p: p.metric(metric))
