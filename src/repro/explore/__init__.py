"""Design-space exploration tools around the SALO models."""

from .design_space import DesignPoint, best_design, pareto_front, sweep_designs

__all__ = ["DesignPoint", "sweep_designs", "pareto_front", "best_design"]
