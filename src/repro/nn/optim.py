"""Optimisers and loss functions for the NN substrate."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .autograd import Tensor

__all__ = ["SGD", "Adam", "cross_entropy", "clip_grad_norm"]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        self.params: List[Tensor] = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam with decoupled weight decay (AdamW)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params: List[Tensor] = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1**self._t
        b2c = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            update = (m / b1c) / (np.sqrt(v / b2c) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of ``(batch, classes)`` logits vs integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    batch = logits.shape[0]
    shifted = logits - logits.max(axis=-1, keepdims=True).detach()
    log_z = shifted.exp().sum(axis=-1, keepdims=True).log()
    log_probs = shifted - log_z
    picked = log_probs[np.arange(batch), labels]
    return -picked.mean()


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip global gradient norm in place; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
