"""Synthetic classification tasks standing in for the paper's datasets.

The paper's Table 3 measures accuracy on IMDB, Hyperpartisan and
ImageNet-1K — none available offline — so we substitute synthetic tasks
that exercise the same attention mechanisms (see DESIGN.md §2):

* :class:`SentimentTask` ("IMDB-like"): the label is the majority polarity
  of sentiment-bearing tokens scattered through a long neutral sequence.
  Solving it requires *global aggregation*, the job of the global CLS
  token.
* :class:`PhraseTask` ("Hyperpartisan-like"): the label marks documents
  containing a trigger bigram within a small distance, i.e. a *local*
  co-occurrence — the job of sliding-window attention.
* :class:`ShapesTask` ("ImageNet-like"): patch grids rendering one of
  several blob/stripe textures with noise; classification needs 2-D local
  context, the job of ViL's windowed attention.

All tasks are seeded and generate (train, test) splits on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SentimentTask", "PhraseTask", "ShapesTask"]


@dataclass
class SentimentTask:
    """Global-counting binary task over token sequences.

    Token ids: 0 = CLS, 1 = padding/neutral filler, ``2 .. 2+polar-1`` =
    positive words, ``2+polar .. 2+2*polar-1`` = negative words.  Each
    sequence carries ``k_pos`` positive and ``k_neg`` negative tokens at
    random positions with ``|k_pos - k_neg| >= margin``; the label is
    ``k_pos > k_neg``.
    """

    n: int = 128
    vocab_polar: int = 8
    max_polar_tokens: int = 24
    margin: int = 4
    seed: int = 0

    @property
    def vocab(self) -> int:
        return 2 + 2 * self.vocab_polar

    @property
    def num_classes(self) -> int:
        return 2

    def sample(self, count: int, seed_offset: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed + seed_offset)
        xs = np.full((count, self.n), 1, dtype=np.int64)
        xs[:, 0] = 0  # CLS
        ys = rng.integers(0, 2, size=count)
        for i in range(count):
            lo = self.margin
            hi = self.max_polar_tokens
            big = int(rng.integers(lo, hi + 1))
            small = int(rng.integers(0, big - self.margin + 1))
            k_pos, k_neg = (big, small) if ys[i] == 1 else (small, big)
            slots = rng.choice(np.arange(1, self.n), size=k_pos + k_neg, replace=False)
            pos_ids = rng.integers(2, 2 + self.vocab_polar, size=k_pos)
            neg_ids = rng.integers(2 + self.vocab_polar, 2 + 2 * self.vocab_polar, size=k_neg)
            xs[i, slots[:k_pos]] = pos_ids
            xs[i, slots[k_pos:]] = neg_ids
        return xs, ys


@dataclass
class PhraseTask:
    """Local co-occurrence binary task over token sequences.

    Positive documents contain at least one trigger bigram: token ``A``
    followed by token ``B`` within ``max_gap`` positions.  Negative
    documents contain the same unigrams but never in proximity, so only a
    model with local context can separate the classes.
    """

    n: int = 128
    vocab_body: int = 16
    max_gap: int = 3
    occurrences: int = 3
    seed: int = 0

    @property
    def vocab(self) -> int:
        return 2 + self.vocab_body + 2  # CLS, filler, body, A, B

    @property
    def token_a(self) -> int:
        return 2 + self.vocab_body

    @property
    def token_b(self) -> int:
        return 3 + self.vocab_body

    @property
    def num_classes(self) -> int:
        return 2

    def sample(self, count: int, seed_offset: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed + seed_offset)
        xs = rng.integers(2, 2 + self.vocab_body, size=(count, self.n))
        xs[:, 0] = 0  # CLS
        ys = rng.integers(0, 2, size=count)
        min_spacing = self.max_gap + 2
        for i in range(count):
            positions = rng.choice(
                np.arange(1, self.n - self.max_gap - 1, min_spacing * 2),
                size=self.occurrences,
                replace=False,
            )
            for p in positions:
                if ys[i] == 1:
                    gap = int(rng.integers(1, self.max_gap + 1))
                    xs[i, p] = self.token_a
                    xs[i, p + gap] = self.token_b
                else:
                    # Same unigrams, but B is placed far from every A.
                    xs[i, p] = self.token_a
                    far = (p + self.n // 2) % (self.n - 2) + 1
                    xs[i, far] = self.token_b
        return xs, ys


@dataclass
class ShapesTask:
    """Texture-classification task on patch grids (ImageNet stand-in).

    Each sample is a ``grid x grid`` image of ``feat``-dimensional patch
    features rendering one of ``num_classes`` textures (horizontal
    stripes, vertical stripes, blob, checkerboard) plus Gaussian noise.
    Patch (0, 0) doubles as the global token.
    """

    grid: int = 12
    feat: int = 8
    noise: float = 0.8
    seed: int = 0
    num_classes: int = 4

    def __post_init__(self) -> None:
        # The texture → feature projection is a fixed property of the
        # task (like a dataset's feature extractor), not of the split.
        rng = np.random.default_rng(self.seed ^ 0x5A10)
        direction = rng.standard_normal(self.feat)
        self.direction = direction / np.linalg.norm(direction)

    @property
    def n(self) -> int:
        return self.grid * self.grid

    def _texture(self, label: int, rng: np.random.Generator) -> np.ndarray:
        g = self.grid
        r = np.arange(g)[:, None]
        c = np.arange(g)[None, :]
        period = int(rng.integers(2, 5))
        phase = int(rng.integers(0, period))
        if label == 0:  # horizontal stripes
            base = np.broadcast_to(((r + phase) // period) % 2, (g, g))
        elif label == 1:  # vertical stripes
            base = np.broadcast_to(((c + phase) // period) % 2, (g, g))
        elif label == 2:  # centred blob
            cy, cx = rng.integers(g // 4, 3 * g // 4, size=2)
            radius = g / 4
            base = (((r - cy) ** 2 + (c - cx) ** 2) < radius**2).astype(float)
        else:  # checkerboard
            base = (((r + phase) // period) + ((c + phase) // period)) % 2
        return base.astype(np.float64)

    def sample(self, count: int, seed_offset: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed + seed_offset)
        ys = rng.integers(0, self.num_classes, size=count)
        xs = np.empty((count, self.n, self.feat), dtype=np.float64)
        for i in range(count):
            base = self._texture(int(ys[i]), rng).reshape(-1, 1)
            signal = (2.0 * base - 1.0) @ self.direction[None, :]
            xs[i] = signal + self.noise * rng.standard_normal((self.n, self.feat))
        return xs, ys
