"""Sparse multi-head attention modules for the NN substrate.

:class:`SparseMultiHeadAttention` implements the hybrid sparse attention of
the paper's workloads as a trainable layer: the pattern's mask restricts
the score matrix, so the layer computes exactly what SALO accelerates.  An
optional :class:`AttentionQuantizer` reroutes the forward pass through the
accelerator's fixed-point datapath (Q8.4 operands, PWL exponential, LUT
reciprocal, quantised probabilities and outputs) with smooth surrogate
gradients — the mechanism behind the Table 3 quantisation study, mirroring
the paper's QPyTorch-instrumented layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..accelerator.datapath import Datapath
from ..core.config import NumericsConfig
from ..patterns.base import AttentionPattern
from .autograd import Tensor
from .layers import Dropout, Linear, Module

__all__ = ["AttentionQuantizer", "SparseMultiHeadAttention"]

_NEG_INF = -1.0e9


@dataclass
class AttentionQuantizer:
    """Routes an attention forward pass through the SALO datapath.

    ``numerics`` defaults to the paper's deployment precision (8-bit Q/K/V
    with 4 fractional bits, 16-bit outputs, PWL exp, LUT reciprocal).
    """

    numerics: NumericsConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.numerics is None:
            self.numerics = NumericsConfig()
        self.datapath = Datapath(self.numerics)

    # -- quantisers with straight-through gradients ---------------------
    def quant_input(self, x: Tensor) -> Tensor:
        return x.fake_quant(self.datapath.quantize_input)

    def quant_prob(self, p: Tensor) -> Tensor:
        return p.fake_quant(self.datapath.quantize_prob)

    def quant_output(self, o: Tensor) -> Tensor:
        return o.fake_quant(self.datapath.quantize_output)

    # -- hardware special functions with surrogate gradients ------------
    def exp(self, s: Tensor, mask: np.ndarray) -> Tensor:
        """PWL exponential; masked cells emit 0 and receive no gradient."""
        datapath = self.datapath
        lo = self.numerics.exp_input_lo
        hi = self.numerics.exp_input_hi

        def forward(x: np.ndarray) -> np.ndarray:
            return np.where(mask, datapath.exp(x), 0.0)

        def grad(x: np.ndarray, y: np.ndarray, g: np.ndarray) -> np.ndarray:
            inside = (x >= lo) & (x <= hi) & mask
            return g * np.exp(np.clip(x, lo, hi)) * inside

        return s.custom_unary(forward, grad)

    def recip(self, w: Tensor) -> Tensor:
        """LUT reciprocal with the exact ``-1/w^2`` surrogate gradient."""
        datapath = self.datapath

        def forward(x: np.ndarray) -> np.ndarray:
            return datapath.recip(np.maximum(x, 1e-30))

        def grad(x: np.ndarray, y: np.ndarray, g: np.ndarray) -> np.ndarray:
            return -g / np.maximum(x, 1e-30) ** 2

        return w.custom_unary(forward, grad)


class SparseMultiHeadAttention(Module):
    """Multi-head attention restricted to a sparse pattern.

    Parameters
    ----------
    dim, heads:
        Model width and number of heads (``dim % heads == 0``).
    pattern:
        The hybrid sparse attention pattern (its mask gates the scores).
    rng:
        Initialisation source.
    dropout:
        Attention-output dropout probability.
    quantizer:
        When set, the forward pass uses the SALO fixed-point datapath.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        pattern: AttentionPattern,
        rng: np.random.Generator,
        dropout: float = 0.0,
        quantizer: Optional[AttentionQuantizer] = None,
    ) -> None:
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.pattern = pattern
        self.mask = pattern.mask()  # (n, n) boolean
        self.wq = Linear(dim, dim, rng)
        self.wk = Linear(dim, dim, rng)
        self.wv = Linear(dim, dim, rng)
        self.wo = Linear(dim, dim, rng)
        self.drop = Dropout(dropout, rng)
        self.quantizer = quantizer

    # ------------------------------------------------------------------
    def set_quantizer(self, quantizer: Optional[AttentionQuantizer]) -> None:
        """Swap the numeric mode (None = float)."""
        self.quantizer = quantizer

    def _split_heads(self, x: Tensor, batch: int, n: int) -> Tensor:
        return x.reshape(batch, n, self.heads, self.head_dim).transpose(1, 2)

    def forward(self, x: Tensor) -> Tensor:
        """(batch, n, dim) → (batch, n, dim); also accepts unbatched
        ``(n, dim)`` input, which is routed through the batched path as a
        batch of one and returned unbatched."""
        if x.ndim == 2:
            n, dim = x.shape
            return self.forward(x.reshape(1, n, dim)).reshape(n, dim)
        batch, n, _ = x.shape
        if n != self.pattern.n:
            raise ValueError(f"pattern is for n={self.pattern.n}, input has n={n}")
        q = self._split_heads(self.wq(x), batch, n)
        k = self._split_heads(self.wk(x), batch, n)
        v = self._split_heads(self.wv(x), batch, n)
        scale = 1.0 / np.sqrt(self.head_dim)

        if self.quantizer is None:
            scores = (q @ k.transpose(-1, -2)) * scale
            scores = scores.masked_fill(~self.mask, _NEG_INF)
            probs = scores.softmax(axis=-1)
            ctx = probs @ v
        else:
            qz = self.quantizer.quant_input(q)
            kz = self.quantizer.quant_input(k)
            vz = self.quantizer.quant_input(v)
            scores = (qz @ kz.transpose(-1, -2)) * scale
            e = self.quantizer.exp(scores, self.mask)
            w = e.sum(axis=-1, keepdims=True)
            inv = self.quantizer.recip(w)
            probs = self.quantizer.quant_prob(e * inv)
            ctx = self.quantizer.quant_output(probs @ vz)

        ctx = ctx.transpose(1, 2).reshape(batch, n, self.dim)
        return self.drop(self.wo(ctx))
