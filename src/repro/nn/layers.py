"""Neural-network layers on top of the autograd substrate.

Enough of a transformer toolbox to train the Table 3 classifiers: linear,
layer norm, embeddings, dropout, a feed-forward block, and parameter
management.  Initialisation follows standard transformer practice
(truncated-normal-ish weights, zero biases).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .autograd import Tensor

__all__ = ["Module", "Linear", "LayerNorm", "Embedding", "Dropout", "FeedForward", "Sequential"]


class Module:
    """Base class with parameter discovery and train/eval modes."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        """All trainable tensors, found recursively."""
        seen = set()
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad and id(value) not in seen:
                seen.add(id(value))
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for key, value in self.__dict__.items():
            name = f"{prefix}{key}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)[:4]}")
        for name, value in state.items():
            if name in params:
                params[name].data[...] = value

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        std = (2.0 / (in_features + out_features)) ** 0.5
        self.weight = Tensor(rng.standard_normal((in_features, out_features)) * std, requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centred = x - mu
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normed = centred * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta


class Embedding(Module):
    """Token-id → vector lookup table."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.weight = Tensor(rng.standard_normal((vocab, dim)) * 0.02, requires_grad=True)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        return self.weight[ids]


class Dropout(Module):
    """Inverted dropout (active only in training mode)."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(keep)


class FeedForward(Module):
    """Transformer FFN: Linear → GELU → Linear."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator, dropout: float = 0.0) -> None:
        super().__init__()
        self.fc1 = Linear(dim, hidden, rng)
        self.fc2 = Linear(hidden, dim, rng)
        self.drop = Dropout(dropout, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(self.fc1(x).gelu()))


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x):
        for m in self.modules:
            x = m(x)
        return x
