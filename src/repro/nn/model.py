"""Transformer classifiers built on the sparse-attention layer.

Two model families mirror the paper's accuracy benchmarks at laptop scale:
a Longformer-style text classifier (token inputs, sliding window + global
CLS) and a ViL-style image classifier (patch-feature inputs, 2-D local
window + global token).  Both read their classification logits from the
global token (index 0), the token whose global attention row aggregates
the whole sequence — exactly the mechanism Longformer/ViL rely on.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..patterns.base import AttentionPattern
from .attention import AttentionQuantizer, SparseMultiHeadAttention
from .autograd import Tensor
from .layers import Embedding, FeedForward, LayerNorm, Linear, Module

__all__ = ["EncoderBlock", "TransformerClassifier"]


class EncoderBlock(Module):
    """Pre-LN transformer encoder block with sparse attention."""

    def __init__(
        self,
        dim: int,
        heads: int,
        ffn_hidden: int,
        pattern: AttentionPattern,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = SparseMultiHeadAttention(dim, heads, pattern, rng, dropout=dropout)
        self.ln2 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_hidden, rng, dropout=dropout)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        return x + self.ffn(self.ln2(x))


class TransformerClassifier(Module):
    """Sequence classifier with hybrid sparse attention.

    Parameters
    ----------
    pattern:
        Sparse attention pattern shared by all layers; token 0 should be a
        global token (the classification readout position).
    vocab:
        Vocabulary size for token inputs, or ``None`` for continuous
        patch-feature inputs of width ``input_dim``.
    """

    def __init__(
        self,
        pattern: AttentionPattern,
        dim: int = 64,
        heads: int = 4,
        layers: int = 2,
        num_classes: int = 2,
        vocab: Optional[int] = None,
        input_dim: Optional[int] = None,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.pattern = pattern
        n = pattern.n
        if vocab is not None:
            self.embed: Optional[Embedding] = Embedding(vocab, dim, rng)
            self.input_proj = None
        elif input_dim is not None:
            self.embed = None
            self.input_proj = Linear(input_dim, dim, rng)
        else:
            raise ValueError("provide either vocab (tokens) or input_dim (features)")
        self.pos = Tensor(rng.standard_normal((n, dim)) * 0.02, requires_grad=True)
        self.blocks = [
            EncoderBlock(dim, heads, 4 * dim, pattern, rng, dropout=dropout)
            for _ in range(layers)
        ]
        self.ln_f = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng)

    # ------------------------------------------------------------------
    def attention_modules(self) -> List[SparseMultiHeadAttention]:
        return [b.attn for b in self.blocks]

    def set_quantizer(self, quantizer: Optional[AttentionQuantizer]) -> None:
        """Switch every attention layer between float and SALO numerics."""
        for attn in self.attention_modules():
            attn.set_quantizer(quantizer)

    def forward(self, inputs) -> Tensor:
        """Token ids ``(batch, n)`` or features ``(batch, n, input_dim)`` → logits."""
        if self.embed is not None:
            x = self.embed(np.asarray(inputs))
        else:
            x = self.input_proj(inputs if isinstance(inputs, Tensor) else Tensor(inputs))
        x = x + self.pos
        for block in self.blocks:
            x = block(x)
        x = self.ln_f(x)
        cls = x[:, 0, :]  # the global token aggregates the sequence
        return self.head(cls)
