"""NN substrate: numpy autograd, transformer layers, training loops.

Built for the Table 3 quantisation study: train sparse-attention
classifiers in float, swap the attention datapath to SALO's fixed-point
numerics, optionally finetune (quantisation-aware), and compare accuracy.
"""

from .attention import AttentionQuantizer, SparseMultiHeadAttention
from .autograd import Tensor, no_grad
from .data import PhraseTask, SentimentTask, ShapesTask
from .layers import (
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    Sequential,
)
from .model import EncoderBlock, TransformerClassifier
from .optim import SGD, Adam, clip_grad_norm, cross_entropy
from .training import TrainResult, evaluate_accuracy, train_classifier

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "FeedForward",
    "Sequential",
    "SparseMultiHeadAttention",
    "AttentionQuantizer",
    "EncoderBlock",
    "TransformerClassifier",
    "SGD",
    "Adam",
    "cross_entropy",
    "clip_grad_norm",
    "SentimentTask",
    "PhraseTask",
    "ShapesTask",
    "TrainResult",
    "evaluate_accuracy",
    "train_classifier",
]
