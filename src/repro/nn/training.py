"""Training and evaluation loops for the Table 3 classifiers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .autograd import Tensor, no_grad
from .model import TransformerClassifier
from .optim import Adam, clip_grad_norm, cross_entropy

__all__ = ["TrainResult", "train_classifier", "evaluate_accuracy"]


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of one training run."""

    losses: List[float] = field(default_factory=list)
    eval_steps: List[int] = field(default_factory=list)
    eval_accuracies: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.eval_accuracies[-1] if self.eval_accuracies else float("nan")


def evaluate_accuracy(model: TransformerClassifier, xs, ys: np.ndarray, batch: int = 32) -> float:
    """Classification accuracy over a dataset."""
    model.eval()
    correct = 0
    total = len(ys)
    with no_grad():
        for start in range(0, total, batch):
            xb = xs[start : start + batch]
            logits = model(xb).numpy()
            correct += int((logits.argmax(axis=-1) == ys[start : start + batch]).sum())
    model.train()
    return correct / total


def train_classifier(
    model: TransformerClassifier,
    sampler: Callable[[int, int], Tuple[np.ndarray, np.ndarray]],
    steps: int = 300,
    batch: int = 16,
    lr: float = 3e-3,
    weight_decay: float = 1e-4,
    grad_clip: float = 1.0,
    eval_every: int = 0,
    eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    lr_decay: bool = True,
) -> TrainResult:
    """Train with Adam on freshly sampled batches.

    ``sampler(count, seed_offset)`` draws a batch; a distinct
    ``seed_offset`` per step makes every batch fresh (infinite-data
    regime, so train accuracy tracks generalisation).
    """
    opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    result = TrainResult()
    model.train()
    for step in range(steps):
        if lr_decay:
            opt.lr = lr * 0.5 * (1.0 + np.cos(np.pi * step / max(1, steps)))
        xb, yb = sampler(batch, step + 1)
        logits = model(xb)
        loss = cross_entropy(logits, yb)
        opt.zero_grad()
        loss.backward()
        clip_grad_norm(model.parameters(), grad_clip)
        opt.step()
        result.losses.append(loss.item())
        if eval_every and eval_data is not None and (step + 1) % eval_every == 0:
            acc = evaluate_accuracy(model, eval_data[0], eval_data[1])
            result.eval_steps.append(step + 1)
            result.eval_accuracies.append(acc)
    if eval_data is not None and (not result.eval_steps or result.eval_steps[-1] != steps):
        result.eval_steps.append(steps)
        result.eval_accuracies.append(evaluate_accuracy(model, eval_data[0], eval_data[1]))
    return result
