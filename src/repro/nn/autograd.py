"""Minimal reverse-mode automatic differentiation over numpy.

The Table 3 experiment needs trained transformer classifiers whose
attention layers can be swapped between float and SALO's fixed-point
datapath.  With no deep-learning framework available offline, this module
provides a small but complete tape-based autograd: a :class:`Tensor`
records the operations producing it; :meth:`Tensor.backward` topologically
sorts the tape and accumulates gradients.

Broadcasting follows numpy semantics; gradients of broadcast operands are
summed back to the operand's shape (:func:`_unbroadcast`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling tape recording (for evaluation loops)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


ArrayLike = Union[np.ndarray, float, int, "Tensor"]


class Tensor:
    """A numpy array with an optional gradient tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor without grad")
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        seen: Set[int] = set()

        def visit(t: "Tensor") -> None:
            stack = [(t, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    topo.append(node)
                    continue
                if id(node) in seen or not node.requires_grad:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                for p in node._parents:
                    stack.append((p, False))

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(x: ArrayLike) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def __add__(self, other: ArrayLike) -> "Tensor":
        a, b = self, Tensor._coerce(other)
        out_data = a.data + b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(-grad)

        return Tensor._make(-a.data, (a,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        a, b = self, Tensor._coerce(other)
        out_data = a.data * b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * b.data, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * a.data, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        a, b = self, Tensor._coerce(other)
        out_data = a.data / b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad / b.data, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-grad * a.data / (b.data**2), b.shape))

        return Tensor._make(out_data, (a, b), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        a = self
        out_data = a.data**exponent

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * exponent * a.data ** (exponent - 1))

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Linear algebra and shaping
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        a, b = self, Tensor._coerce(other)
        out_data = a.data @ b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                ga = grad @ np.swapaxes(b.data, -1, -2)
                a._accumulate(_unbroadcast(ga, a.shape))
            if b.requires_grad:
                gb = np.swapaxes(a.data, -1, -2) @ grad
                b._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __matmul__ = matmul

    def transpose(self, axis1: int = -2, axis2: int = -1) -> "Tensor":
        a = self
        out_data = np.swapaxes(a.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(out_data, (a,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        a = self
        out_data = a.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad.reshape(a.shape))

        return Tensor._make(out_data, (a,), backward)

    def __getitem__(self, idx) -> "Tensor":
        a = self
        out_data = a.data[idx]

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                full = np.zeros_like(a.data)
                np.add.at(full, idx, grad)
                a._accumulate(full)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not a.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            a._accumulate(np.broadcast_to(g, a.shape).copy())

        return Tensor._make(out_data, (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        count = a.size if axis is None else a.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not a.requires_grad:
                return
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = a.data == expanded
            counts = mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims else np.expand_dims(grad, axis)
            a._accumulate(mask * g / counts)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * out_data)

        return Tensor._make(out_data, (a,), backward)

    def log(self) -> "Tensor":
        a = self
        out_data = np.log(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad / a.data)

        return Tensor._make(out_data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        out_data = np.maximum(a.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * (a.data > 0))

        return Tensor._make(out_data, (a,), backward)

    def gelu(self) -> "Tensor":
        """Tanh-approximation GELU (as used by BERT/Longformer)."""
        a = self
        c = np.sqrt(2.0 / np.pi)
        inner = c * (a.data + 0.044715 * a.data**3)
        t = np.tanh(inner)
        out_data = 0.5 * a.data * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            if not a.requires_grad:
                return
            dinner = c * (1.0 + 3 * 0.044715 * a.data**2)
            da = 0.5 * (1.0 + t) + 0.5 * a.data * (1.0 - t**2) * dinner
            a._accumulate(grad * da)

        return Tensor._make(out_data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Composite ops used by attention
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        e = shifted.exp()
        return e / e.sum(axis=axis, keepdims=True)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Set positions where ``mask`` is True to ``value`` (no grad there)."""
        a = self
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(np.where(mask, 0.0, grad))

        return Tensor._make(out_data, (a,), backward)

    def fake_quant(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Tensor":
        """Apply a quantiser in the forward pass, identity gradient (STE)."""
        a = self
        out_data = fn(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad)

        return Tensor._make(out_data, (a,), backward)

    def custom_unary(
        self,
        forward_fn: Callable[[np.ndarray], np.ndarray],
        grad_fn: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> "Tensor":
        """Elementwise op with a hand-written gradient.

        ``forward_fn(x)`` produces the output; ``grad_fn(x, y, g)`` maps the
        upstream gradient ``g`` (with access to input ``x`` and output
        ``y``) to the input gradient.  Used to give hardware-approximate
        functions (PWL exp, LUT reciprocal) smooth surrogate gradients
        during quantisation-aware finetuning.
        """
        a = self
        out_data = forward_fn(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad_fn(a.data, out_data, grad))

        return Tensor._make(out_data, (a,), backward)

    def clamp(self, lo: float, hi: float) -> "Tensor":
        """Clip to ``[lo, hi]``; gradient is zero outside the range."""
        a = self
        out_data = np.clip(a.data, lo, hi)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                inside = (a.data >= lo) & (a.data <= hi)
                a._accumulate(grad * inside)

        return Tensor._make(out_data, (a,), backward)
