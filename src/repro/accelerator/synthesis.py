"""Analytic synthesis model: area and power of a SALO instance (Table 1).

The paper implements SALO in Chisel and synthesises with Synopsys DC on
FreePDK 45 nm, reporting 4.56 mm² and 532.66 mW at 1 GHz for the default
32 x 32 configuration.  Without a synthesis flow we model area/power
bottom-up from component counts — PEs (MAC + registers + two PWL LUTs),
weighted-sum lanes, SRAM macros, control overhead — with 45 nm
per-component constants calibrated once against the published Table 1
figures.  The model then extrapolates to other configurations for the
design-space ablations (DESIGN.md A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.config import HardwareConfig

__all__ = ["SynthesisReport", "SynthesisConstants", "synthesize", "TABLE1"]


@dataclass(frozen=True)
class SynthesisConstants:
    """45 nm per-component area/power constants (calibrated to Table 1)."""

    pe_area_um2: float = 3200.0  # fixed-point MAC, regs, exp LUTs, control
    ws_lane_area_um2: float = 2100.0  # two multipliers + adder + weight regs
    sram_area_um2_per_byte: float = 7.4  # 6T cell + array overhead
    control_area_fraction: float = 0.045  # global control / NoC share of logic

    pe_power_uw: float = 312.0  # average dynamic power per PE at 1 GHz, full load
    ws_lane_power_uw: float = 300.0
    sram_power_uw_per_kb: float = 260.0
    control_power_fraction: float = 0.05
    leakage_w_per_mm2: float = 0.030


@dataclass
class SynthesisReport:
    """Synthesis summary in the units of Table 1."""

    frequency_hz: float
    area_mm2: float
    power_w: float
    area_breakdown_mm2: Dict[str, float]
    power_breakdown_w: Dict[str, float]

    @property
    def power_mw(self) -> float:
        return self.power_w * 1e3


#: Published Table 1 values (the calibration target).
TABLE1 = {
    "pe_array": (32, 32),
    "global_pe_columns": 1,
    "global_pe_rows": 1,
    "weighted_sum_entries": 33,
    "query_buffer_bytes": 16 * 1024,
    "key_buffer_bytes": 32 * 1024,
    "value_buffer_bytes": 32 * 1024,
    "output_buffer_bytes": 32 * 1024,
    "frequency_hz": 1.0e9,
    "power_mw": 532.66,
    "area_mm2": 4.56,
}


def synthesize(
    config: HardwareConfig, constants: SynthesisConstants = SynthesisConstants()
) -> SynthesisReport:
    """Estimate area and power of a SALO instance."""
    n_pe = config.num_pes + config.num_global_pes
    n_ws = config.weighted_sum_entries
    sram_bytes = (
        config.query_buffer_bytes
        + config.key_buffer_bytes
        + config.value_buffer_bytes
        + config.output_buffer_bytes
    )

    pe_area = n_pe * constants.pe_area_um2 * 1e-6
    ws_area = n_ws * constants.ws_lane_area_um2 * 1e-6
    sram_area = sram_bytes * constants.sram_area_um2_per_byte * 1e-6
    control_area = (pe_area + ws_area) * constants.control_area_fraction
    area_breakdown = {
        "pe_array": pe_area,
        "weighted_sum": ws_area,
        "sram": sram_area,
        "control": control_area,
    }
    area = sum(area_breakdown.values())

    freq_scale = config.frequency_hz / 1.0e9
    pe_power = n_pe * constants.pe_power_uw * 1e-6 * freq_scale
    ws_power = n_ws * constants.ws_lane_power_uw * 1e-6 * freq_scale
    sram_power = (sram_bytes / 1024.0) * constants.sram_power_uw_per_kb * 1e-6 * freq_scale
    control_power = (pe_power + ws_power) * constants.control_power_fraction
    leakage = constants.leakage_w_per_mm2 * area
    power_breakdown = {
        "pe_array": pe_power,
        "weighted_sum": ws_power,
        "sram": sram_power,
        "control": control_power,
        "leakage": leakage,
    }
    power = sum(power_breakdown.values())
    return SynthesisReport(
        frequency_hz=config.frequency_hz,
        area_mm2=area,
        power_w=power,
        area_breakdown_mm2=area_breakdown,
        power_breakdown_w=power_breakdown,
    )
