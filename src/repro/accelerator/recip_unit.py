"""Reciprocal unit for the softmax denominator (paper Section 5.1, stage 3).

Dividers are expensive, so SALO computes the inverse of the exponential sum
once per row and broadcasts it back (Figure 5 shows the ``Shift``/``Frac``
LUT structure).  The unit normalises the operand to a mantissa in
``[1, 2)`` with a leading-one detector (a shift), looks the mantissa's
reciprocal up in a small LUT, and denormalises with the opposite shift:

    ``w = m * 2^e``  →  ``1/w ≈ LUT[m] * 2^-e``.

The LUT holds midpoint reciprocals of ``2**bits`` uniform mantissa bins,
quantised to the probability format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import NumericsConfig
from .fixed_point import FixedPointFormat

__all__ = ["ReciprocalUnit"]


@dataclass
class ReciprocalUnit:
    """Shift-normalise + LUT reciprocal approximation."""

    lut_bits: int
    mantissa_format: FixedPointFormat
    table: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.lut_bits < 1:
            raise ValueError("lut_bits must be >= 1")
        bins = 1 << self.lut_bits
        mid = 1.0 + (np.arange(bins) + 0.5) / bins
        self.table = self.mantissa_format.quantize(1.0 / mid)

    @classmethod
    def from_numerics(cls, numerics: NumericsConfig) -> "ReciprocalUnit":
        fmt = FixedPointFormat(numerics.output_bits, numerics.prob_frac_bits, signed=False)
        return cls(lut_bits=numerics.recip_lut_bits, mantissa_format=fmt)

    def __call__(self, w: np.ndarray) -> np.ndarray:
        """Approximate ``1 / w`` for strictly positive ``w``."""
        w = np.asarray(w, dtype=np.float64)
        if np.any(w <= 0):
            raise ValueError("reciprocal unit requires strictly positive inputs")
        mant, exp = np.frexp(w)  # w = mant * 2**exp, mant in [0.5, 1)
        m = mant * 2.0  # [1, 2)
        e = exp - 1
        idx = np.minimum(
            ((m - 1.0) * (1 << self.lut_bits)).astype(np.int64),
            (1 << self.lut_bits) - 1,
        )
        # Exact shift by 2^-e (the denormalise step), identical to
        # multiplying by np.power(2.0, -e) but without the pow call.
        return np.ldexp(self.table[idx], -e)

    def max_relative_error(self, samples: int = 8192) -> float:
        """Worst-case relative error over one mantissa octave."""
        w = np.linspace(1.0, 2.0, samples, endpoint=False)
        approx = self(w)
        return float(np.max(np.abs(approx * w - 1.0)))
