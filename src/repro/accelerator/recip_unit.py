"""Reciprocal unit for the softmax denominator (paper Section 5.1, stage 3).

Dividers are expensive, so SALO computes the inverse of the exponential sum
once per row and broadcasts it back (Figure 5 shows the ``Shift``/``Frac``
LUT structure).  The unit normalises the operand to a mantissa in
``[1, 2)`` with a leading-one detector (a shift), looks the mantissa's
reciprocal up in a small LUT, and denormalises with the opposite shift:

    ``w = m * 2^e``  →  ``1/w ≈ LUT[m] * 2^-e``.

The LUT holds midpoint reciprocals of ``2**bits`` uniform mantissa bins,
quantised to the probability format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import NumericsConfig
from .fixed_point import FixedPointFormat

__all__ = ["ReciprocalUnit"]


@dataclass
class ReciprocalUnit:
    """Shift-normalise + LUT reciprocal approximation."""

    lut_bits: int
    mantissa_format: FixedPointFormat
    table: np.ndarray = field(init=False, repr=False)
    _scratch: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.lut_bits < 1:
            raise ValueError("lut_bits must be >= 1")
        bins = 1 << self.lut_bits
        mid = 1.0 + (np.arange(bins) + 0.5) / bins
        self.table = self.mantissa_format.quantize(1.0 / mid)

    @classmethod
    def from_numerics(cls, numerics: NumericsConfig) -> "ReciprocalUnit":
        fmt = FixedPointFormat(numerics.output_bits, numerics.prob_frac_bits, signed=False)
        return cls(lut_bits=numerics.recip_lut_bits, mantissa_format=fmt)

    def __call__(self, w: np.ndarray) -> np.ndarray:
        """Approximate ``1 / w`` for strictly positive ``w``."""
        w = np.asarray(w, dtype=np.float64)
        if np.any(w <= 0):
            raise ValueError("reciprocal unit requires strictly positive inputs")
        mant, exp = np.frexp(w)  # w = mant * 2**exp, mant in [0.5, 1)
        m = mant * 2.0  # [1, 2)
        e = exp - 1
        idx = np.minimum(
            ((m - 1.0) * (1 << self.lut_bits)).astype(np.int64),
            (1 << self.lut_bits) - 1,
        )
        # Exact shift by 2^-e (the denormalise step), identical to
        # multiplying by np.power(2.0, -e) but without the pow call.
        return np.ldexp(self.table[idx], -e)

    def into(self, w: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Allocation-free :meth:`__call__` (after the first call per shape).

        Same elementwise shift-normalise / LUT / denormalise sequence as
        :meth:`__call__`, so bit-identical — but the positivity check is
        the *caller's* contract (the fused epilogue substitutes a safe
        operand into empty rows before calling).  ``w`` may alias ``out``.
        Not thread-safe.
        """
        sc = self._scratch.get(w.shape)
        if sc is None:
            sc = (
                np.empty(w.shape, dtype=np.float64),  # mantissa
                np.empty(w.shape, dtype=np.intc),  # exponent
                np.empty(w.shape, dtype=np.int64),  # LUT index
            )
            self._scratch[w.shape] = sc
        mant, e, idx = sc
        np.frexp(w, mant, e)  # w = mant * 2**e, mant in [0.5, 1)
        np.multiply(mant, 2.0, out=mant)  # [1, 2)
        np.subtract(e, 1, out=e)
        np.subtract(mant, 1.0, out=mant)
        np.multiply(mant, float(1 << self.lut_bits), out=mant)
        np.copyto(idx, mant, casting="unsafe")  # C cast == .astype(int64)
        np.minimum(idx, (1 << self.lut_bits) - 1, out=idx)
        np.take(self.table, idx, out=out, mode="clip")
        np.negative(e, out=e)
        np.ldexp(out, e, out=out)
        return out

    def max_relative_error(self, samples: int = 8192) -> float:
        """Worst-case relative error over one mantissa octave."""
        w = np.linspace(1.0, 2.0, samples, endpoint=False)
        approx = self(w)
        return float(np.max(np.abs(approx * w - 1.0)))
