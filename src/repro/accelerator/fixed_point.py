"""Fixed-point arithmetic for the SALO datapath (paper Section 6.4).

SALO quantises Q, K and V to 8-bit fixed point with 4 fractional bits and
produces 16-bit outputs.  This module models fixed-point values as float64
arrays holding exact multiples of ``2**-frac_bits`` — products and sums of
such values are exact in double precision for the bit widths involved
(< 53 bits), so the representation is bit-faithful while staying fully
vectorised.

Rounding is round-half-to-even (``np.rint``), saturation clips to the
format's representable range; both behaviours are what a synthesised
rounding/saturating quantiser produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "FixedPointError"]


class FixedPointError(ValueError):
    """Raised for invalid fixed-point format specifications."""


@dataclass(frozen=True)
class FixedPointFormat:
    """A two's-complement (or unsigned) fixed-point format.

    ``total_bits`` includes the sign bit for signed formats.  The value of
    the integer code ``i`` is ``i * 2**-frac_bits``.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise FixedPointError(f"total_bits must be >= 1, got {self.total_bits}")
        if self.frac_bits < 0:
            raise FixedPointError(f"frac_bits must be >= 0, got {self.frac_bits}")
        if self.signed and self.total_bits < 2:
            raise FixedPointError("signed formats need at least 2 bits")

    # ------------------------------------------------------------------
    @property
    def resolution(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** -self.frac_bits

    @property
    def max_code(self) -> int:
        return (1 << (self.total_bits - 1)) - 1 if self.signed else (1 << self.total_bits) - 1

    @property
    def min_code(self) -> int:
        return -(1 << (self.total_bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> float:
        return self.max_code * self.resolution

    @property
    def min_value(self) -> float:
        return self.min_code * self.resolution

    # ------------------------------------------------------------------
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` to the nearest representable value, saturating."""
        codes = np.rint(np.asarray(x, dtype=np.float64) * (1 << self.frac_bits))
        codes = np.clip(codes, self.min_code, self.max_code)
        return codes * self.resolution

    def quantize_into(
        self, x: np.ndarray, out: np.ndarray, saturate: bool = True
    ) -> np.ndarray:
        """Allocation-free :meth:`quantize`; ``x`` may alias ``out``.

        Bit-identical to :meth:`quantize`: the same elementwise
        scale / round-half-even / saturate / rescale sequence, written
        through ``out`` without temporaries.  ``saturate=False`` skips
        the clip pass — only valid when the caller proves every input
        already lies inside the representable range (``rint`` of an
        in-range scaled value is in-range, so the clip is the identity).
        """
        np.multiply(x, float(1 << self.frac_bits), out=out)
        np.rint(out, out=out)
        if saturate:
            np.clip(out, self.min_code, self.max_code, out=out)
        np.multiply(out, self.resolution, out=out)
        return out

    def to_codes(self, values: np.ndarray) -> np.ndarray:
        """Integer codes of already-quantised values."""
        codes = np.rint(np.asarray(values, dtype=np.float64) * (1 << self.frac_bits))
        if np.any(codes > self.max_code) or np.any(codes < self.min_code):
            raise FixedPointError("values out of range for this format")
        return codes.astype(np.int64)

    def from_codes(self, codes: np.ndarray) -> np.ndarray:
        """Values of integer codes."""
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes > self.max_code) or np.any(codes < self.min_code):
            raise FixedPointError("codes out of range for this format")
        return codes.astype(np.float64) * self.resolution

    def is_representable(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of values exactly representable in this format."""
        v = np.asarray(values, dtype=np.float64)
        scaled = v * (1 << self.frac_bits)
        return (
            (scaled == np.rint(scaled))
            & (v <= self.max_value)
            & (v >= self.min_value)
        )

    def quantization_error_bound(self) -> float:
        """Worst-case rounding error (half an LSB), ignoring saturation."""
        return 0.5 * self.resolution

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sign = "s" if self.signed else "u"
        return f"Q{sign}{self.total_bits - self.frac_bits}.{self.frac_bits}"
