"""Optional numba-fused variant of the tiled functional engine.

The tiled compiled path of :class:`~repro.accelerator.functional.
FunctionalEngine` is already allocation-free and GEMM-dominated, but its
epilogue still walks each score band several times (grid-code mapping,
table gather, masking, row reduction).  When `numba <https://numba.
pydata.org>`_ is importable, :class:`JitFunctionalEngine` fuses those
walks into single compiled loops that perform *the same float64
operations in the same order*, so its results remain bit-identical to
the plain engine — the parity suite asserts exactly that on the
quantised backend group.

The dependency is strictly optional and never shipped with the repo:
importing this module is always safe, :data:`HAVE_NUMBA` reports the
probe result, and the ``functional-jit`` backend only registers with
:mod:`repro.api` (and :data:`repro.core.salo.ENGINE_BACKENDS`) when the
probe succeeds.  Without numba the module stays inert — no stub engine,
no half-working fallback — so ``engines list`` simply doesn't show the
backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .functional import FunctionalEngine

__all__ = ["HAVE_NUMBA", "JitFunctionalEngine"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common case in CI images
    numba = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True, fastmath=False)
    def _fused_exp_rowsum(band, table, cmul, off, w):
        """Grid-code map + table gather + row sum, one pass per element.

        ``fastmath=False`` keeps IEEE semantics: every multiply,
        subtract and add is the same float64 op the numpy pipeline
        performs.  The row sum accumulates left-to-right; on the
        quantised datapath every partial sum is an exact integer in
        resolution units (the ``supports_exact_gemm`` argument), so the
        association order cannot change a bit.
        """
        rows, cols = band.shape
        last = table.shape[0] - 1
        for i in range(rows):
            acc = 0.0
            for j in range(cols):
                c = int(band[i, j] * cmul - off)
                if c < 0:
                    c = 0
                elif c > last:
                    c = last
                e = table[c]
                band[i, j] = e
                acc += e
            w[i] = acc

    @numba.njit(cache=True, fastmath=False)
    def _fused_prob_fold(band, inv, res):
        """Reciprocal broadcast + rint fold of the probability quantiser."""
        rows, cols = band.shape
        for i in range(rows):
            a = inv[i]
            for j in range(cols):
                band[i, j] = np.rint(band[i, j] * a) * res


class JitFunctionalEngine(FunctionalEngine):
    """Tiled functional engine with numba-fused epilogue loops.

    Construction requires numba (the backend is absent from the registry
    otherwise, so ordinary users can never reach this error).  Engine
    semantics, plan compilation, scratch management and capability flags
    are inherited unchanged from :class:`FunctionalEngine`; only the
    band epilogue's elementwise pipeline is swapped for the fused
    kernels above when the direct exp table applies, falling back to the
    inherited numpy path (and therefore to bit-identity by construction)
    whenever it does not.
    """

    def __init__(self, *args, **kwargs) -> None:
        if not HAVE_NUMBA:
            raise ImportError(
                "JitFunctionalEngine requires numba; install it or use the "
                "'functional' backend"
            )
        super().__init__(*args, **kwargs)

    def _band_epilogue(self, sc, band, validf, lmask, scale, w, has) -> None:
        lut = self._exp_table(sc, scale)
        pf = self.datapath.prob_format
        fusable = (
            lut is not False
            and validf is None
            and lmask is None
            and pf is not None
            and pf.max_value >= 2.0
            and band.flags.c_contiguous
            and w.flags.c_contiguous
            and has.flags.c_contiguous
        )
        if not fusable:
            return super()._band_epilogue(sc, band, validf, lmask, scale, w, has)
        table, cmul, off = lut
        flat = band.reshape(-1, band.shape[-1])
        wf = w.reshape(-1)
        _fused_exp_rowsum(flat, table, cmul, off, wf)
        wsafe = self._buf(sc, ("epi_wsafe",), w.shape)
        inv = self._buf(sc, ("epi_inv",), w.shape)
        np.greater(wf, 0.0, out=has.reshape(-1))
        np.subtract(1.0, has, out=wsafe)
        np.add(wsafe, w, out=wsafe)
        self.datapath.recip_into(wsafe, inv)
        np.multiply(inv, float(1 << pf.frac_bits), out=inv)
        _fused_prob_fold(flat, inv.reshape(-1), pf.resolution)
