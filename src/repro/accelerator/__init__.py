"""Spatial accelerator models (paper Section 5).

Layered fidelity (see DESIGN.md §5): a cycle-accurate micro-simulator, a
bit-identical vectorised functional engine, and an analytic timing model
validated against the micro-simulator.
"""

from .datapath import Datapath
from .exp_unit import PWLExpUnit, max_pwl_error
from .fixed_point import FixedPointError, FixedPointFormat
from .functional import EngineError, FunctionalEngine, FunctionalResult
from .recip_unit import ReciprocalUnit
from .timing import PassTiming, TimingResult, pass_cycles, plan_timing
from .weighted_sum import WeightedSumModule

__all__ = [
    "Datapath",
    "PWLExpUnit",
    "max_pwl_error",
    "FixedPointFormat",
    "FixedPointError",
    "FunctionalEngine",
    "FunctionalResult",
    "EngineError",
    "ReciprocalUnit",
    "PassTiming",
    "TimingResult",
    "pass_cycles",
    "plan_timing",
    "WeightedSumModule",
]
