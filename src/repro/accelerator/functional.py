"""Vectorised functional engine: execute a tile plan on real data.

This engine computes the attention output a SALO instance would produce —
same pass structure, same fixed-point arithmetic, same PWL exp, same
reciprocal unit and weighted-sum merges — but evaluates each pass with
vectorised numpy instead of per-cycle PE state, so it scales to full
workloads.  The cycle-accurate micro-simulator
(:mod:`repro.accelerator.systolic`) is bit-identical to this engine on its
(small) parameter space; see ``tests/accelerator/test_systolic.py`` and
``tests/accelerator/test_compiled_equivalence.py``.

Semantics of a pass (rows = query block, columns = packed band segments):

1. ``S = Q_blk @ K_cols^T * scale`` (masked cells excluded),
2. ``E = exp(S)`` via the PWL unit, masked cells contribute 0,
3. ``W = rowsum(E)``, ``inv = recip(W)``,
4. ``S' = E * inv`` quantised to the probability format,
5. ``out = S' @ V_cols`` quantised to the output format,

then the weighted-sum module merges ``(out, W)`` into the query's running
output.  Global-token queries are produced by the global PE row (their
full row is computed in ``pe_cols``-wide chunks, merged the same way);
global-token keys are produced once per query by the global PE column and
excluded from window passes to avoid double counting.

Execution pipeline
------------------
Passes are structural — identical across heads and across calls — so the
default path consumes the plan's memoized
:class:`~repro.scheduler.compiled.CompiledPlan`: Q/K/V are quantised once
for all heads, stages 1–5 run as chunked batched einsums over
``(heads, passes, rows, cols, head_dim)`` padded tensors, and the
weighted-sum merges replay in precompiled *merge rounds* whose order
equals the hardware's per-query pass order.  Padding is exact: masked
cells contribute an exact ``0.0`` to every reduction, so the batched path
is bit-identical to the legacy per-pass path (``use_compiled=False``),
which is retained as the reference implementation for the equivalence
suite.

Batch axis (multi-sequence serving)
-----------------------------------
:meth:`FunctionalEngine.run` also accepts a leading batch axis
``(b, n, heads*head_dim)``: a batch of independent sequences that share
the same execution plan (the unit the serving layer in
:mod:`repro.serving` dispatches).  The compiled path folds the batch and
head axes into a single *lane* axis ``L = b * heads`` — every stage 1–5
einsum then runs over ``(b·heads, groups, blocks, rows, cols, head_dim)``
operands and every weighted-sum merge chain is carried per lane.  All
lane-axis operations are elementwise or reduce only trailing axes, so
each sequence's arithmetic (summation trees included) is exactly that of
its own ``b=1`` call: batched outputs are bit-identical to looped
single-sequence runs (``tests/accelerator/test_batched_equivalence.py``).
The single-sequence call is simply the ``b=1`` special case with the
leading axis elided.

Padded tails (cross-length batching)
------------------------------------
:meth:`FunctionalEngine.run` optionally takes per-sequence ``valid_lens``:
sequence ``i`` of the batch carries real data only in rows
``[0, valid_lens[i])`` and the rest is zero padding up to the plan length.
Keys at or beyond a lane's valid length are masked out of stage 2 (their
``exp`` contribution is an exact ``0.0``, excluded from the softmax
denominator), so the retained query rows attend exactly the key set of an
unpadded run at the true length — the serving layer's ``pad_to_bucket``
mode uses this to batch same-structure requests of different lengths
under one bucket-length plan and slice outputs back.  Padded query rows
compute garbage (the caller slices them away) and are exempt from the
every-query-has-a-part check.  Global tokens must lie inside every lane's
valid prefix.  Equivalence to the unpadded per-request plan is
mathematical, not bit-exact: the bucket-length plan partitions the same
key sets into different passes, so partial-softmax merge trees (and their
quantisation points) differ — ``tests/serving/test_padding.py``
characterises the bound.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..scheduler.compiled import WindowJob, _arange_start
from ..scheduler.plan import ExecutionPlan, TilePass
from .datapath import Datapath
from .weighted_sum import WeightedSumModule

__all__ = ["FunctionalEngine", "FunctionalResult", "EngineError"]

# Per-chunk operand budget (elements) when slicing a window job's block
# axis: bounds the transient (heads, blocks, rows, cols, head_dim)
# working set to ~32 MB of float64 per operand.
_JOB_ELEMENT_BUDGET = 1 << 22


class EngineError(RuntimeError):
    """Raised when a plan cannot be executed on the given data."""


@dataclass
class FunctionalResult:
    """Output of a functional run.

    Single-sequence runs produce ``output (n, heads*head_dim)`` and
    ``parts (heads, n)``; batched runs carry a leading batch axis on
    both (``(b, n, heads*head_dim)`` / ``(b, heads, n)``).
    """

    output: np.ndarray  # (n, heads * head_dim) or (b, n, heads * head_dim)
    merges: int  # weighted-sum merge operations performed (all sequences)
    # (heads, n) or (b, heads, n) partial outputs per query; None for
    # engines that do not track part counts (the systolic adapter).
    parts: Optional[np.ndarray]

    @property
    def n(self) -> int:
        return self.output.shape[-2]

    @property
    def batch(self) -> Optional[int]:
        """Batch size, or ``None`` for a single-sequence result."""
        return self.output.shape[0] if self.output.ndim == 3 else None


class _Accumulator:
    """Running (output, weight) state for one head, merged part by part."""

    def __init__(
        self, n: int, d: int, module: WeightedSumModule
    ) -> None:
        self.out = np.zeros((n, d), dtype=np.float64)
        self.w = np.zeros(n, dtype=np.float64)
        self.has = np.zeros(n, dtype=bool)
        self.parts = np.zeros(n, dtype=np.int64)
        self.module = module
        self.merges = 0

    def add_part(self, rows: np.ndarray, out: np.ndarray, w: np.ndarray) -> None:
        """Merge a partial output for the given query rows."""
        rows = np.asarray(rows, dtype=np.int64)
        fresh = ~self.has[rows]
        if fresh.any():
            fr = rows[fresh]
            self.out[fr] = out[fresh]
            self.w[fr] = w[fresh]
            self.has[fr] = True
        stale = ~fresh
        if stale.any():
            sr = rows[stale]
            merged, total = self.module.merge(
                self.out[sr], self.w[sr], out[stale], w[stale]
            )
            self.out[sr] = merged
            self.w[sr] = total
            self.merges += int(stale.sum())
        self.parts[rows] += 1


class _BatchAccumulator:
    """Running (output, weight) state for all execution lanes at once.

    A *lane* is one (sequence, head) pair: single-sequence runs carry one
    lane per head, batched runs fold the batch and head axes into
    ``b * heads`` lanes.  Merges are performed on flattened
    ``(lane, query)`` selections; each selection within one
    :meth:`add_part` call holds a query at most once per lane, so the
    pairwise merge chain per ``(lane, query)`` is exactly the per-head
    chain of :class:`_Accumulator` for that lane's sequence.
    """

    def __init__(self, lanes: int, n: int, d: int, module: WeightedSumModule) -> None:
        self.out = np.zeros((lanes, n, d), dtype=np.float64)
        self.w = np.zeros((lanes, n), dtype=np.float64)
        self.has = np.zeros((lanes, n), dtype=bool)
        self.parts = np.zeros((lanes, n), dtype=np.int64)
        self.module = module
        self.merges = 0

    def reset(self) -> None:
        """Zero the running state so the instance can serve another call."""
        self.out.fill(0.0)
        self.w.fill(0.0)
        self.has.fill(False)
        self.parts.fill(0)
        self.merges = 0

    def add_part(
        self, rows: np.ndarray, out: np.ndarray, w: np.ndarray, has: np.ndarray
    ) -> None:
        """Merge partials ``out (H, r, d)`` / ``w (H, r)`` where ``has`` is set."""
        if not has.any():
            return
        if has.all() and not self.has[:, rows].any():
            # Every row is a first part on every head: plain assignment,
            # identical to the general path below without the index math.
            self.out[:, rows] = out
            self.w[:, rows] = w
            self.has[:, rows] = True
            self.parts[:, rows] += 1
            return
        h_idx, r_idx = np.nonzero(has)
        q_idx = rows[r_idx]
        cur = self.has[h_idx, q_idx]
        fresh = ~cur
        if fresh.any():
            hf, qf, rf = h_idx[fresh], q_idx[fresh], r_idx[fresh]
            self.out[hf, qf] = out[hf, rf]
            self.w[hf, qf] = w[hf, rf]
            self.has[hf, qf] = True
        if cur.any():
            hs, qs, rs = h_idx[cur], q_idx[cur], r_idx[cur]
            merged, total = self.module.merge(
                self.out[hs, qs], self.w[hs, qs], out[hs, rs], w[hs, rs]
            )
            self.out[hs, qs] = merged
            self.w[hs, qs] = total
            self.merges += int(cur.sum())
        self.parts[h_idx, q_idx] += 1


class FunctionalEngine:
    """Executes :class:`ExecutionPlan` instances on (Q, K, V) data.

    ``mode="compiled"`` (default) runs the batched multi-head path over
    the plan's :class:`~repro.scheduler.compiled.CompiledPlan`;
    ``mode="legacy"`` runs the per-head, per-pass reference path.  Both
    produce bit-identical outputs.  At the system level the two modes
    are the ``"functional"`` and ``"functional-legacy"`` engine backends
    (:data:`repro.core.salo.ENGINE_BACKENDS` / the :mod:`repro.api`
    registry); select them by name there rather than constructing
    engines directly.

    ``use_compiled`` is the deprecated boolean spelling of ``mode``
    (``True`` -> ``"compiled"``, ``False`` -> ``"legacy"``); it is kept
    as a shim for existing call sites and overrides ``mode`` when given.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        mode: str = "compiled",
        use_compiled: Optional[bool] = None,
        tiled: Optional[bool] = None,
    ) -> None:
        if isinstance(mode, bool):
            # Positional spelling of the old signature:
            # FunctionalEngine(plan, False) meant use_compiled=False.
            use_compiled, mode = mode, "compiled"
        if use_compiled is not None:
            warnings.warn(
                "FunctionalEngine(use_compiled=...) is deprecated; use "
                "mode='compiled'/'legacy' (or the 'functional' / "
                "'functional-legacy' backends of repro.api)",
                DeprecationWarning,
                stacklevel=2,
            )
            mode = "compiled" if use_compiled else "legacy"
        if mode not in ("compiled", "legacy"):
            raise ValueError(f"unknown engine mode {mode!r}; known: compiled, legacy")
        self.plan = plan
        self.mode = mode
        self.use_compiled = mode == "compiled"  # read by existing call sites
        self.datapath = Datapath(plan.config.numerics)
        self.module = WeightedSumModule(self.datapath)
        # (id(job), b0, b1) -> key-id tensor for padded-tail masking;
        # pure plan structure, so cached for the engine's lifetime (the
        # engine keeps the compiled plan — and its jobs — alive).
        self._segment_ids_cache: dict = {}
        self.tiled = False
        if self.use_compiled:
            # Compile once at construction (memoized on the plan), and
            # force the lazy execution schedule now: engines always run.
            cp = plan.compiled()
            cp.window_jobs
            # Lane-tiled GEMM execution is only bit-identical when every
            # stage-1/5 accumulation is exact in float64 (quantised
            # datapaths within the bit budget); exact datapaths keep the
            # ordered-einsum path, where summation order is observable.
            auto = self._supports_tiled(cp)
            if tiled is None:
                self.tiled = auto
            elif tiled and not auto:
                raise ValueError(
                    "tiled execution requires a quantised datapath whose "
                    "stage-1/5 accumulations are exact in float64"
                )
            else:
                self.tiled = bool(tiled)

    def _supports_tiled(self, cp) -> bool:
        """Whether the lane-tiled GEMM path is bit-exact for this plan."""
        max_cols = cp.pad_rows + cp.pad_cols - 1
        if len(cp.global_tokens):
            max_cols = max(max_cols, len(cp.global_tokens))
        return self.datapath.supports_exact_gemm(cp.head_dim, max_cols)

    # ------------------------------------------------------------------
    def run(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: Optional[float] = None,
        valid_lens: Optional[np.ndarray] = None,
    ) -> FunctionalResult:
        """Compute the sparse attention output.

        ``q``, ``k``, ``v`` are either a single sequence
        ``(n, heads*head_dim)`` or a batch of same-plan sequences
        ``(b, n, heads*head_dim)``; the result's shapes follow the input
        rank.  Batched outputs are bit-identical to looping the
        single-sequence call over the batch.

        ``valid_lens`` (one int per sequence, or a scalar for the
        single-sequence form) marks each sequence's real length: rows at
        or beyond it are zero padding whose keys are masked out of the
        softmax and whose query outputs are unspecified (see the module
        docstring).  ``None`` — the common case — means every sequence
        fills the plan length and takes the unmodified fast path.
        """
        plan = self.plan
        q = np.asarray(q, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if q.ndim not in (2, 3):
            raise EngineError(f"q must be (n, hidden) or (b, n, hidden), got shape {q.shape}")
        n, hidden = q.shape[-2:]
        if n != plan.n:
            raise EngineError(f"plan is for n={plan.n}, data has n={n}")
        if hidden != plan.heads * plan.head_dim:
            raise EngineError(
                f"hidden size {hidden} != heads*head_dim = {plan.heads * plan.head_dim}"
            )
        if k.shape != q.shape or v.shape != q.shape:
            raise EngineError("q, k, v must share shape")
        if scale is None:
            scale = 1.0 / np.sqrt(plan.head_dim)
        lens = self._check_valid_lens(valid_lens, q)

        if self.use_compiled:
            if self.tiled:
                return self._run_compiled_tiled(q, k, v, scale, lens)
            return self._run_compiled(q, k, v, scale, lens)

        if q.ndim == 3:
            # Reference semantics of a batch: independent per-sequence runs.
            results = [
                self._run_legacy(
                    q[b], k[b], v[b], scale, None if lens is None else int(lens[b])
                )
                for b in range(q.shape[0])
            ]
            return FunctionalResult(
                output=np.stack([r.output for r in results]),
                merges=sum(r.merges for r in results),
                parts=np.stack([r.parts for r in results]),
            )
        return self._run_legacy(q, k, v, scale, None if lens is None else int(lens[0]))

    def _check_valid_lens(
        self, valid_lens, q: np.ndarray
    ) -> Optional[np.ndarray]:
        """Normalise ``valid_lens`` to an int64 ``(b,)`` array (or ``None``).

        All-full lens collapse to ``None`` so the common case stays on
        the untouched (bit-identical) execution path.
        """
        if valid_lens is None:
            return None
        plan = self.plan
        b = q.shape[0] if q.ndim == 3 else 1
        lens = np.atleast_1d(np.asarray(valid_lens, dtype=np.int64))
        if lens.shape != (b,):
            raise EngineError(
                f"valid_lens must hold one length per sequence ({b}), got shape {lens.shape}"
            )
        if np.any(lens < 1) or np.any(lens > plan.n):
            raise EngineError(
                f"valid_lens must lie in [1, {plan.n}], got {lens.tolist()}"
            )
        if np.all(lens == plan.n):
            return None
        gtok = plan.global_tokens
        if gtok and max(gtok) >= int(lens.min()):
            raise EngineError(
                f"global tokens {tuple(gtok)} must lie inside every sequence's "
                f"valid prefix (min valid_len {int(lens.min())})"
            )
        return lens

    def _run_legacy(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: float,
        valid_len: Optional[int] = None,
    ) -> FunctionalResult:
        """Per-head, per-pass reference path for one sequence."""
        plan = self.plan
        n, hidden = q.shape
        out = np.empty((n, hidden), dtype=np.float64)
        merges = 0
        parts = np.zeros((plan.heads, n), dtype=np.int64)
        for h in range(plan.heads):
            sl = slice(h * plan.head_dim, (h + 1) * plan.head_dim)
            head_out, acc = self._run_head(q[:, sl], k[:, sl], v[:, sl], scale, valid_len)
            out[:, sl] = head_out
            merges += acc.merges
            parts[h] = acc.parts
        return FunctionalResult(output=out, merges=merges, parts=parts)

    # ------------------------------------------------------------------
    # Compiled batched path
    # ------------------------------------------------------------------
    def _run_compiled(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: float,
        lens: Optional[np.ndarray] = None,
    ) -> FunctionalResult:
        plan = self.plan
        cp = plan.compiled()
        n, d, heads = plan.n, plan.head_dim, plan.heads
        batched = q.ndim == 3
        b = q.shape[0] if batched else 1
        lanes = b * heads
        # Per-lane valid lengths: each sequence's heads share its length.
        lane_lens = None if lens is None else np.repeat(lens, heads)
        # Quantise once for all lanes; (b?, n, H*d) -> (b*H, n, d).  Every
        # lane's slab has the same contiguous (n, d) layout a b=1 call
        # produces, so downstream reductions see identical summation
        # trees per sequence.
        qh = np.ascontiguousarray(
            self.datapath.quantize_input(q)
            .reshape(b, n, heads, d)
            .transpose(0, 2, 1, 3)
            .reshape(lanes, n, d)
        )
        kh = np.ascontiguousarray(
            self.datapath.quantize_input(k)
            .reshape(b, n, heads, d)
            .transpose(0, 2, 1, 3)
            .reshape(lanes, n, d)
        )
        vh = np.ascontiguousarray(
            self.datapath.quantize_input(v)
            .reshape(b, n, heads, d)
            .transpose(0, 2, 1, 3)
            .reshape(lanes, n, d)
        )
        acc = _BatchAccumulator(lanes, n, d, self.module)

        for job in cp.window_jobs:
            self._run_window_job(job, qh, kh, vh, scale, acc, lane_lens)
        if len(cp.global_tokens):
            self._run_global_column_batched(cp, qh, kh, vh, scale, acc)
            self._run_global_rows_batched(cp, qh, kh, vh, scale, acc, lane_lens)

        # Padded query rows (>= a lane's valid length) are sliced away by
        # the caller and need not receive a part.
        covered = acc.has
        if lane_lens is not None:
            covered = covered | (np.arange(n)[None, :] >= lane_lens[:, None])
        if not covered.all():
            missing = np.flatnonzero(~covered.all(axis=0))
            raise EngineError(
                f"queries {missing[:8].tolist()}... received no attention part; "
                "the pattern leaves them without keys"
            )
        parts = acc.parts.reshape(b, heads, n)
        output = np.ascontiguousarray(
            acc.out.reshape(b, heads, n, d).transpose(0, 2, 1, 3)
        ).reshape(b, n, heads * d)
        if not batched:
            output = output.reshape(n, heads * d)
            parts = parts.reshape(heads, n)
        return FunctionalResult(output=output, merges=acc.merges, parts=parts)

    # ------------------------------------------------------------------
    # Lane-tiled compiled path (quantised datapaths; see _supports_tiled)
    # ------------------------------------------------------------------
    # Stages 1 and 5 run as banded GEMMs: per block the full
    # (R, R + W - 1) score rectangle is one matmul against the segment's
    # overlapping stream view, and the band is extracted (stage 1) or
    # scattered back (stage 5) through a strided view.  On a quantised
    # datapath every operand is an integer multiple of a fixed power of
    # two and every partial sum fits the double mantissa, so the BLAS
    # accumulation order — and the exact zeros of the rectangle padding —
    # cannot round: results are bit-identical to the ordered einsums of
    # the flat path.  All buffers live in the plan's scratch dict, so
    # warm calls on a cached plan perform no steady-state allocation.

    @staticmethod
    def _buf(sc: dict, name, shape, dtype=np.float64) -> np.ndarray:
        """Grow-on-demand scratch buffer keyed by (name, shape, dtype)."""
        key = ("buf", name, shape, np.dtype(dtype).str)
        a = sc.get(key)
        if a is None:
            a = np.empty(shape, dtype=dtype)
            sc[key] = a
        return a

    @staticmethod
    def _zbuf(sc: dict, name, shape, dtype=np.float64) -> np.ndarray:
        """Scratch buffer zeroed once at allocation.

        For buffers whose writers always touch the same positions (the
        scattered band of a score rectangle), everything outside those
        positions stays exactly zero across reuses, so the per-use
        ``fill(0)`` pass can be dropped.
        """
        key = ("zbuf", name, shape, np.dtype(dtype).str)
        a = sc.get(key)
        if a is None:
            a = np.zeros(shape, dtype=dtype)
            sc[key] = a
        return a

    @staticmethod
    def _static_index(sc: dict, key, arr) -> np.ndarray:
        """Memoized contiguous int64 copy of a static index tensor."""
        idx = sc.get(key)
        if idx is None:
            idx = np.ascontiguousarray(np.reshape(arr, -1), dtype=np.int64)
            sc[key] = idx
        return idx

    def _run_compiled_tiled(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: float,
        lens: Optional[np.ndarray] = None,
    ) -> FunctionalResult:
        plan = self.plan
        cp = plan.compiled()
        sc = cp.scratch
        n, d, heads = plan.n, plan.head_dim, plan.heads
        batched = q.ndim == 3
        b = q.shape[0] if batched else 1
        lanes = b * heads
        lane_lens = None if lens is None else np.repeat(lens, heads)
        margins = self._wide_margins(cp)
        qh = self._lane_slab(sc, "q", q, b, n, heads, d)
        kh = self._lane_slab(sc, "k", k, b, n, heads, d, pad=margins)
        vh = self._lane_slab(sc, "v", v, b, n, heads, d, pad=margins)
        acc = sc.get(("acc", lanes))
        if acc is None:
            acc = _BatchAccumulator(lanes, n, d, self.module)
            sc[("acc", lanes)] = acc
        else:
            acc.module = self.module  # scratch follows the engine in use
            acc.reset()

        jobs = cp.window_jobs
        for chain in cp.job_chains:
            if jobs[chain.jobs[0]].segments is None:  # pragma: no cover - irregular
                for ji in chain.jobs:
                    self._run_window_job(jobs[ji], qh, kh, vh, scale, acc, lane_lens)
            else:
                self._run_chain_tiled(cp, chain, qh, kh, vh, scale, acc, lane_lens)
        if len(cp.global_tokens):
            self._run_global_column_tiled(cp, qh, kh, vh, scale, acc)
            self._run_global_rows_tiled(cp, qh, kh, vh, scale, acc, lane_lens)

        covered = acc.has
        if lane_lens is not None:
            covered = covered | (np.arange(n)[None, :] >= lane_lens[:, None])
        if not covered.all():
            missing = np.flatnonzero(~covered.all(axis=0))
            raise EngineError(
                f"queries {missing[:8].tolist()}... received no attention part; "
                "the pattern leaves them without keys"
            )
        # The accumulator buffers are reused across calls, so the caller
        # -owned results must be fresh copies.
        parts = acc.parts.reshape(b, heads, n).copy()
        output = np.empty((b, n, heads * d), dtype=np.float64)
        np.copyto(
            output.reshape(b, n, heads, d),
            acc.out.reshape(b, heads, n, d).transpose(0, 2, 1, 3),
        )
        if not batched:
            output = output.reshape(n, heads * d)
            parts = parts.reshape(heads, n)
        return FunctionalResult(output=output, merges=acc.merges, parts=parts)

    def _lane_slab(
        self,
        sc: dict,
        name: str,
        x: np.ndarray,
        b: int,
        n: int,
        heads: int,
        d: int,
        pad: Tuple[int, int] = (0, 0),
    ) -> np.ndarray:
        """Quantised ``(lanes, n, d)`` operand slab in reused storage.

        Same values as the flat path's quantise-then-transpose (the two
        elementwise steps commute), written through a cached buffer.

        ``pad = (head, tail)`` reserves margin rows around the core that
        replicate its first/last row — exactly what a clip-clamped
        gather of an out-of-range id loads — so window key streams that
        overhang the sequence edges slice the slab instead of gathering
        (see :meth:`_wide_chunk_slabs`).  The returned view is the core;
        the padded base is published under ``("slabpad", name)``.
        """
        head, tail = pad
        slab = self._buf(sc, ("slab", name), (b * heads, head + n + tail, d))
        core = slab[:, head : head + n]
        # The transpose copy fuses into the quantiser's first multiply
        # (its read may be any strided view), saving one full pass.
        self.datapath.quantize_input_into(
            x.reshape(b, n, heads, d).transpose(0, 2, 1, 3),
            core.reshape(b, heads, n, d),
        )
        if head:
            slab[:, :head] = core[:, 0:1]
        if tail:
            slab[:, head + n :] = core[:, n - 1 : n]
        sc[("slabpad", name)] = (slab, head, tail)
        return core

    def _stage5_bounded(self, cp) -> bool:
        """True when stage-5 outputs provably cannot saturate.

        Per output element ``|o| <= (sum of the row's probabilities) *
        vmax``.  Each quantised probability exceeds its pre-rounding
        value by at most half a resolution step and the pre-rounding row
        sum is ``w * recip(w) < 2`` (the shift-normalised LUT bound; an
        exact reciprocal gives 1), so with at most ``n`` columns the row
        sum is under ``2 + n * res / 2``.  When that times the largest
        operand magnitude still fits the output format, the saturation
        clip of every stage-5 quantise is an identity and is skipped.
        """
        ok = cp.scratch.get(("q5_bounded",))
        if ok is None:
            dp = self.datapath
            fi, pf, of = dp.input_format, dp.prob_format, dp.output_format
            if fi is None or pf is None or of is None:
                ok = False
            else:
                vmax = max(abs(fi.min_value), fi.max_value)
                bound = (2.0 + cp.n * pf.resolution * 0.5) * vmax
                ok = bound * (1 << of.frac_bits) <= of.max_code
            cp.scratch[("q5_bounded",)] = ok
        return ok

    def _wide_margins(self, cp) -> Tuple[int, int]:
        """Largest head/tail overhang of any wide chain's key stream.

        Wide streams are clip-clamped contiguous ranges; padding the K/V
        slabs by these margins (with the replicated edge rows the clamp
        would load) turns every chunk of every wide chain into a pure
        slice of the slab.
        """
        m = cp.scratch.get(("wide_margins",))
        if m is None:
            head = tail = 0
            jobs = cp.window_jobs
            for ch in cp.job_chains:
                if ch.wide_start is None or ch.wide_offsets is None:
                    continue
                job0 = jobs[ch.jobs[0]]
                if job0.num_groups != 1:
                    continue
                step = job0.segments[0].block_step
                last = jobs[ch.jobs[-1]]
                span = job0.rows + ch.wide_offsets[-1] + last.segments[0].width - 1
                full = (job0.num_blocks - 1) * step + span
                s = ch.wide_start[0]
                head = max(head, -s)
                tail = max(tail, s + full - cp.n)
            m = (max(head, 0), max(tail, 0))
            cp.scratch[("wide_margins",)] = m
        return m

    def _run_chain_tiled(
        self,
        cp,
        chain,
        qh: np.ndarray,
        kh: np.ndarray,
        vh: np.ndarray,
        scale: float,
        acc: "_BatchAccumulator",
        lane_lens: Optional[np.ndarray] = None,
    ) -> None:
        """Execute one job chain on chain-local merge state.

        The tile loop is *outer*, jobs inner: within one lane tile every
        job's gathered K/V streams stay cache-resident through stages
        1–5, and per (lane, query) the merge order is exactly the job
        order of the schedule.  Chain-local state is *seeded* from the
        accumulator before the first job and committed back by plain
        assignment afterwards, so chains whose queries already carry
        parts from earlier jobs replay exactly the flat path's
        sequential merges.
        """
        sc = cp.scratch
        jobs = [cp.window_jobs[ji] for ji in chain.jobs]
        job0 = jobs[0]
        lanes = qh.shape[0]
        d = qh.shape[2]
        G, B, R = job0.num_groups, job0.num_blocks, job0.rows
        T, Bc = cp.tile_shape(job0, lanes)
        flat_keep, flat_q = chain.flat_keep, chain.flat_q
        M = flat_keep.size
        cells = G * B * R
        # When every cell is kept and the flattened query ids are one
        # contiguous range, the chain's cells *are* a slice of the
        # accumulator: run the merge state directly on accumulator views
        # — no seed, no commit, no scratch copies at all.
        alias = chain.keep_all and chain.q_start is not None
        if alias:
            base = chain.q_start
            out_run = acc.out[:, base : base + cells].reshape(lanes, G, B, R, d)
            w_run = acc.w[:, base : base + cells].reshape(lanes, G, B, R)
            has_run = acc.has[:, base : base + cells].reshape(lanes, G, B, R)
            parts_run = acc.parts[:, base : base + cells].reshape(lanes, G, B, R)
        else:
            # Zeroed at allocation only: stale out/w values at non-kept
            # cells are gated out of every merge by the has masks and
            # never committed (and stay bounded, unlike raw np.empty
            # garbage), so the per-chain fill of the two big buffers can
            # be dropped; the masks themselves do need clearing.
            out_run = self._zbuf(sc, "chain_out", (lanes, G, B, R, d))
            w_run = self._zbuf(sc, "chain_w", (lanes, G, B, R))
            has_run = self._buf(sc, "chain_has", (lanes, G, B, R), np.bool_)
            parts_run = self._buf(sc, "chain_parts", (lanes, G, B, R), np.int64)
            has_run.fill(False)
            parts_run.fill(0)
            # Seed the kept cells with the accumulator's current state
            # for these queries (all zeros when no earlier job touched
            # them) so every chain job is a merge against exactly the
            # state the flat path would see.
            if chain.keep_slice is not None:
                k0, q0 = chain.keep_slice
                out_run.reshape(lanes, cells, d)[:, k0 : k0 + M] = acc.out[
                    :, q0 : q0 + M
                ]
                w_run.reshape(lanes, cells)[:, k0 : k0 + M] = acc.w[:, q0 : q0 + M]
                has_run.reshape(lanes, cells)[:, k0 : k0 + M] = acc.has[
                    :, q0 : q0 + M
                ]
            else:
                cb_out = self._buf(sc, "commit_out", (lanes, M, d))
                cb_w = self._buf(sc, "commit_w", (lanes, M))
                cb_has = self._buf(sc, "commit_has", (lanes, M), np.bool_)
                np.take(acc.out, flat_q, axis=1, out=cb_out, mode="clip")
                np.take(acc.w, flat_q, axis=1, out=cb_w, mode="clip")
                np.take(acc.has, flat_q, axis=1, out=cb_has, mode="clip")
                out_run.reshape(lanes, cells, d)[:, flat_keep] = cb_out
                w_run.reshape(lanes, cells)[:, flat_keep] = cb_w
                has_run.reshape(lanes, cells)[:, flat_keep] = cb_has
        chain_merges = 0
        for b0 in range(0, B, Bc):
            b1 = min(b0 + Bc, B)
            # Single-band chains gather Q/K/V for the whole chunk once,
            # across all lanes; the lane tiles below slice the slabs.
            wide = (
                self._wide_chunk_slabs(cp, chain, jobs, qh, kh, vh, b0, b1)
                if chain.wide_ids is not None
                else None
            )
            for t0 in range(0, lanes, T):
                t1 = min(t0 + T, lanes)
                if wide is not None:
                    stages = self._wide_job_stages(
                        cp, jobs, wide, scale, t0, t1, b0, b1, lane_lens
                    )
                else:
                    stages = (
                        self._job_stages_tiled(
                            cp, job, qh, kh, vh, scale, t0, t1, b0, b1, lane_lens
                        )
                        for job in jobs
                    )
                for out5, w, has in stages:
                    ro = out_run[t0:t1, :, b0:b1]
                    rw = w_run[t0:t1, :, b0:b1]
                    rh = has_run[t0:t1, :, b0:b1]
                    rp = parts_run[t0:t1, :, b0:b1]
                    if not rh.any():
                        # Nothing to merge against yet: pure assignment.
                        np.copyto(ro, out5)
                        np.copyto(rw, w)
                        np.copyto(rh, has)
                    elif np.array_equal(has, rh):
                        # Same cells on both sides: one full-array
                        # in-place Eq. 2 merge.  Cells empty on both
                        # sides stay exactly (0, 0) through it.
                        self.module.merge_into(ro, rw, out5, w)
                        chain_merges += int(has.sum())
                    else:
                        # Boundary blocks where coverage differs: merge
                        # a scratch copy of the running state, then
                        # select per cell — merged where both sides have
                        # work, assigned where only the new part does,
                        # untouched otherwise — all via masked copies.
                        both = self._buf(sc, "sel_both", w.shape, np.bool_)
                        fresh = self._buf(sc, "sel_fresh", w.shape, np.bool_)
                        mout = self._buf(sc, "sel_out", out5.shape)
                        mw = self._buf(sc, "sel_w", w.shape)
                        np.logical_and(has, rh, out=both)
                        np.greater(has, rh, out=fresh)  # has & ~rh
                        np.copyto(mout, ro)
                        np.copyto(mw, rw)
                        self.module.merge_into(mout, mw, out5, w)
                        np.copyto(ro, out5, where=fresh[..., None])
                        np.copyto(rw, w, where=fresh)
                        np.copyto(ro, mout, where=both[..., None])
                        np.copyto(rw, mw, where=both)
                        np.logical_or(rh, has, out=rh)
                        chain_merges += int(both.sum())
                    np.add(rp, has, out=rp)
        if alias:
            pass  # the accumulator *is* the run state; parts included
        elif chain.keep_slice is not None:
            k0, q0 = chain.keep_slice
            acc.out[:, q0 : q0 + M] = out_run.reshape(lanes, cells, d)[:, k0 : k0 + M]
            acc.w[:, q0 : q0 + M] = w_run.reshape(lanes, cells)[:, k0 : k0 + M]
            acc.has[:, q0 : q0 + M] = has_run.reshape(lanes, cells)[:, k0 : k0 + M]
            acc.parts[:, q0 : q0 + M] += parts_run.reshape(lanes, cells)[
                :, k0 : k0 + M
            ]
        else:
            cb_out = self._buf(sc, "commit_out", (lanes, M, d))
            cb_w = self._buf(sc, "commit_w", (lanes, M))
            cb_has = self._buf(sc, "commit_has", (lanes, M), np.bool_)
            cb_parts = self._buf(sc, "commit_parts", (lanes, M), np.int64)
            flat = out_run.reshape(lanes, cells, d)
            np.take(flat, flat_keep, axis=1, out=cb_out, mode="clip")
            np.take(w_run.reshape(lanes, cells), flat_keep, axis=1, out=cb_w, mode="clip")
            np.take(
                has_run.reshape(lanes, cells), flat_keep, axis=1, out=cb_has, mode="clip"
            )
            np.take(
                parts_run.reshape(lanes, cells),
                flat_keep,
                axis=1,
                out=cb_parts,
                mode="clip",
            )
            acc.out[:, flat_q] = cb_out
            acc.w[:, flat_q] = cb_w
            acc.has[:, flat_q] = cb_has
            acc.parts[:, flat_q] += cb_parts
        acc.merges += chain_merges

    def _job_stages_tiled(
        self,
        cp,
        job: WindowJob,
        qh: np.ndarray,
        kh: np.ndarray,
        vh: np.ndarray,
        scale: float,
        t0: int,
        t1: int,
        b0: int,
        b1: int,
        lane_lens: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stages 1–5 of one (lane tile, block chunk) of a window job.

        Returns ``(out, w, has)`` scratch views shaped
        ``(Tc, G, Bc, R, d)`` / ``(Tc, G, Bc, R)``; the caller must
        consume them before the next call reuses the buffers.
        """
        sc = cp.scratch
        dp = self.datapath
        jid = id(job)
        Tc = t1 - t0
        G, R, C = job.num_groups, job.rows, job.cols
        Bc = b1 - b0
        d = qh.shape[2]
        qidx = self._static_index(sc, ("qidx", jid, b0, b1), job.q_safe[:, b0:b1])
        qb = self._buf(sc, "job_q", (Tc, G * Bc * R, d))
        np.take(qh[t0:t1], qidx, axis=1, out=qb, mode="clip")
        qv = qb.reshape(Tc, G, Bc, R, d)
        band = self._buf(sc, "job_band", (Tc, G, Bc, R, C))
        col0 = 0
        for s, seg in enumerate(job.segments):
            W = seg.width
            span = R + W - 1
            lo = b0 * seg.block_step
            hi = (b1 - 1) * seg.block_step + span
            L = hi - lo
            sidx = self._static_index(
                sc, ("sidx", jid, s, b0, b1), seg.gather_ids[:, lo:hi]
            )
            kst = self._buf(sc, ("job_k", s), (Tc, G * L, d))
            np.take(kh[t0:t1], sidx, axis=1, out=kst, mode="clip")
            st, sg, sl, sd = kst.reshape(Tc, G, L, d).strides
            kview = as_strided(
                kst.reshape(Tc, G, L, d),
                (Tc, G, Bc, span, d),
                (st, sg, seg.block_step * sl, sl, sd),
            )
            rect = self._buf(sc, ("job_rect", s), (Tc, G, Bc, R, span))
            np.matmul(qv, kview.swapaxes(-1, -2), out=rect)
            rs = rect.strides
            bandv = as_strided(rect, (Tc, G, Bc, R, W), rs[:3] + (rs[3] + rs[4], rs[4]))
            np.copyto(band[..., col0 : col0 + W], bandv)
            col0 += W
        w, has = self._job_epilogue(cp, job, band, scale, t0, t1, b0, b1, lane_lens)
        out5 = self._buf(sc, "job_out", (Tc, G, Bc, R, d))
        tmp5 = (
            self._buf(sc, "job_out2", (Tc, G, Bc, R, d))
            if len(job.segments) > 1
            else None
        )
        col0 = 0
        for s, seg in enumerate(job.segments):
            W = seg.width
            span = R + W - 1
            L = (b1 - 1 - b0) * seg.block_step + span
            # Zeroed once at allocation; every use scatters into the same
            # band positions (the stage-1 rect holds garbage off-band).
            rect = self._zbuf(sc, ("job_rect5", s), (Tc, G, Bc, R, span))
            rs = rect.strides
            bandv = as_strided(rect, (Tc, G, Bc, R, W), rs[:3] + (rs[3] + rs[4], rs[4]))
            np.copyto(bandv, band[..., col0 : col0 + W])
            vst = self._buf(sc, ("job_v", s), (Tc, G * L, d))
            sidx = self._static_index(
                sc,
                ("sidx", jid, s, b0, b1),
                seg.gather_ids[:, b0 * seg.block_step : b0 * seg.block_step + L],
            )
            np.take(vh[t0:t1], sidx, axis=1, out=vst, mode="clip")
            st, sg, sl, sd = vst.reshape(Tc, G, L, d).strides
            vview = as_strided(
                vst.reshape(Tc, G, L, d),
                (Tc, G, Bc, span, d),
                (st, sg, seg.block_step * sl, sl, sd),
            )
            np.matmul(rect, vview, out=out5 if s == 0 else tmp5)
            if s > 0:
                np.add(out5, tmp5, out=out5)
            col0 += W
        dp.quantize_output_into(out5, out5, bounded=self._stage5_bounded(cp))
        return out5, w, has

    def _job_epilogue(
        self,
        cp,
        job: WindowJob,
        band: np.ndarray,
        scale: float,
        t0: int,
        t1: int,
        b0: int,
        b1: int,
        lane_lens: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Masks + fused epilogue of one job chunk; returns ``(w, has)``."""
        sc = cp.scratch
        jid = id(job)
        Tc, G, Bc, R, C = band.shape
        validf = sc.get(("validf", jid, b0, b1))
        if validf is None:
            vchunk = job.valid[:, b0:b1]
            # ``True`` marks an all-valid chunk: multiplying by an
            # all-ones mask is exact, so skipping it is bit-identical.
            validf = True if vchunk.all() else np.ascontiguousarray(
                vchunk[None], dtype=np.float64
            )
            sc[("validf", jid, b0, b1)] = validf
        if validf is True:
            validf = None
        lmask = None
        if lane_lens is not None:
            ids = self._segment_key_ids(job, b0, b1)
            lmask = self._buf(sc, "job_lmask", (Tc, G, Bc, R, C), np.bool_)
            np.less(ids[None], lane_lens[t0:t1, None, None, None, None], out=lmask)
        w = self._buf(sc, "job_w", (Tc, G, Bc, R))
        has = self._buf(sc, "job_has", (Tc, G, Bc, R), np.bool_)
        self._band_epilogue(sc, band, validf, lmask, scale, w, has)
        # Rows the window path never merges (global queries, padding) are
        # dropped by the flat path before its accumulator call; clearing
        # their ``has`` excludes them from chain merges, part counts and
        # the commit identically (their values are discarded either way).
        kmask = sc.get(("keepm", jid, b0, b1))
        if kmask is None:
            kmask = np.ascontiguousarray(job.keep[None, :, b0:b1])
            sc[("keepm", jid, b0, b1)] = kmask
        np.logical_and(has, kmask, out=has)
        return w, has

    def _wide_chunk_slabs(
        self, cp, chain, jobs, qh, kh, vh, b0: int, b1: int
    ) -> tuple:
        """Full-lane Q/K/V slabs of one block chunk of a single-band chain.

        The chain's jobs stream adjacent column slices of one window
        band (``JobChain.wide_ids``), so one gather per operand serves
        every (job, lane tile) of the chunk; the tiles slice the slabs.
        """
        sc = cp.scratch
        job0 = jobs[0]
        lanes, n, d = qh.shape
        G, R = job0.num_groups, job0.rows
        Bc = b1 - b0
        step = job0.segments[0].block_step
        offs = chain.wide_offsets
        widths = [j.segments[0].width for j in jobs]
        span = R + offs[-1] + widths[-1] - 1
        lo = b0 * step
        hi = (b1 - 1) * step + span
        L = hi - lo
        # The schedule's streams are contiguous id ranges (verified at
        # compile time, see JobChain.q_start / wide_start): interior
        # chunks are plain zero-copy slices of the operand slabs, and
        # clamped stream edges are a slice plus tiny broadcast fills that
        # reproduce the clipped gather exactly.
        if G == 1 and chain.q_start is not None:
            s = chain.q_start + b0 * R
            qf = qh[:, s : s + Bc * R]
        else:
            qidx = self._static_index(
                sc, ("qidx", id(job0), b0, b1), job0.q_safe[:, b0:b1]
            )
            qf = self._buf(sc, "wide_q", (lanes, G * Bc * R, d))
            np.take(qh, qidx, axis=1, out=qf, mode="clip")
        if G == 1 and chain.wide_start is not None:
            s = chain.wide_start[0] + lo
            e = s + L
            # Overhanging edges land in the slab's replicated-row
            # margins (sized for every wide chain by _wide_margins).
            kslab, head, _ = sc[("slabpad", "k")]
            vslab, _, _ = sc[("slabpad", "v")]
            kf = kslab[:, head + s : head + e]
            vf = vslab[:, head + s : head + e]
        else:
            widx = self._static_index(
                sc, ("widx", id(chain), b0, b1), chain.wide_ids[:, lo:hi]
            )
            kf = self._buf(sc, "wide_k", (lanes, G * L, d))
            vf = self._buf(sc, "wide_v", (lanes, G * L, d))
            np.take(kh, widx, axis=1, out=kf, mode="clip")
            np.take(vh, widx, axis=1, out=vf, mode="clip")
        return qf, kf, vf, span, L, step, offs, widths

    def _wide_job_stages(
        self,
        cp,
        jobs,
        wide: tuple,
        scale: float,
        t0: int,
        t1: int,
        b0: int,
        b1: int,
        lane_lens: Optional[np.ndarray] = None,
    ):
        """Stages 1–5 of one (lane tile, chunk) for a single-band chain.

        Stage 1 is *one* banded GEMM spanning every job's columns —
        each per-cell dot product is the identical exact integer
        regardless of the surrounding GEMM width, so extracting a job's
        band from the wide rectangle is bit-identical to the per-job
        GEMM it replaces.  Yields per-job ``(out, w, has)`` scratch
        views in schedule order; stage 5 stays per job (each job
        normalises and merges its own probabilities).
        """
        sc = cp.scratch
        dp = self.datapath
        qf, kf, vf, span, L, step, offs, widths = wide
        job0 = jobs[0]
        Tc = t1 - t0
        G, R = job0.num_groups, job0.rows
        Bc = b1 - b0
        d = qf.shape[2]
        q5 = self._stage5_bounded(cp)
        qv = qf[t0:t1].reshape(Tc, G, Bc, R, d)
        kr = kf[t0:t1].reshape(Tc, G, L, d)
        vr = vf[t0:t1].reshape(Tc, G, L, d)
        st, sg, sl, sd = kr.strides
        vt, vg, vl, vd = vr.strides
        kview = as_strided(kr, (Tc, G, Bc, span, d), (st, sg, step * sl, sl, sd))
        rect = self._buf(sc, "wide_rect", (Tc, G, Bc, R, span))
        np.matmul(qv, kview.swapaxes(-1, -2), out=rect)
        rs = rect.strides
        for jpos, job in enumerate(jobs):
            W = widths[jpos]
            off = offs[jpos]
            span_j = R + W - 1
            band = self._buf(sc, "job_band", (Tc, G, Bc, R, W))
            bandv = as_strided(
                rect[..., off:], (Tc, G, Bc, R, W), rs[:3] + (rs[3] + rs[4], rs[4])
            )
            np.copyto(band, bandv)
            w, has = self._job_epilogue(
                cp, job, band, scale, t0, t1, b0, b1, lane_lens
            )
            # Zeroed once at allocation: each use scatters the band into
            # the same strided positions, everything else stays 0.
            rect5 = self._zbuf(sc, "wide_rect5", (Tc, G, Bc, R, span_j))
            r5 = rect5.strides
            b5 = as_strided(
                rect5, (Tc, G, Bc, R, W), r5[:3] + (r5[3] + r5[4], r5[4])
            )
            np.copyto(b5, band)
            vview = as_strided(
                vr[:, :, off:],
                (Tc, G, Bc, span_j, d),
                (vt, vg, step * vl, vl, vd),
            )
            out5 = self._buf(sc, "job_out", (Tc, G, Bc, R, d))
            np.matmul(rect5, vview, out=out5)
            dp.quantize_output_into(out5, out5, bounded=q5)
            yield out5, w, has

    def _exp_table(self, sc: dict, scale: float):
        """Direct score->exp lookup table, or ``False`` when inapplicable.

        On a quantised datapath every stage-1 score is an exact integer
        multiple of ``2^-2f`` (``f`` input fraction bits), and a power
        -of-two ``scale`` keeps the scaled scores on a fixed grid ``g``.
        The whole exp pipeline (clamp, range reduction, LUT chords,
        shift, output quantise) is then a function of the grid code
        alone, so it collapses into one gather from a table built by
        evaluating the reference unit at every representable input —
        bit-identical by construction.  Codes beyond the clamp range
        land on the ``unit.lo`` / ``unit.hi`` sentinel entries via the
        take's index clip, exactly like the unit's input clamp.
        """
        ent = sc.get(("exp_lut", scale))
        if ent is None:
            ent = False
            fi = self.datapath.input_format
            unit = self.datapath.exp_unit
            m, e = math.frexp(float(scale))
            if fi is not None and unit is not None and m == 0.5:
                g = math.ldexp(1.0, e - 1 - 2 * fi.frac_bits)
                c_min = math.ceil(unit.lo / g)
                c_max = math.floor(unit.hi / g)
                size = c_max - c_min + 3
                if 0 < size <= (1 << 17):
                    xs = np.empty(size, dtype=np.float64)
                    xs[0] = unit.lo
                    xs[1:-1] = np.arange(c_min, c_max + 1) * g
                    xs[-1] = unit.hi
                    cmul = math.ldexp(1.0, 2 * fi.frac_bits)
                    ent = (unit(xs), cmul, float(c_min - 1))
            sc[("exp_lut", scale)] = ent
        return ent

    def _band_epilogue(
        self,
        sc: dict,
        band: np.ndarray,
        validf: Optional[np.ndarray],
        lmask: Optional[np.ndarray],
        scale: float,
        w: np.ndarray,
        has: np.ndarray,
    ) -> None:
        """Fused mask + softmax epilogue: ``band`` (scores) -> probs in place.

        One pass per tile over the contiguous band buffer: scale, PWL
        exp, validity masking, row sum, LUT reciprocal and probability
        quantisation — every step the same elementwise op (or same
        -order reduction) as the flat path, so bit-identical.  Rows
        without work get a safe reciprocal operand of 1.0; their cells
        are all exact zeros, so the probabilities come out 0 either way.
        """
        dp = self.datapath
        lut = self._exp_table(sc, scale)
        if lut is not False:
            table, cmul, off = lut
            idx = self._buf(sc, ("exp_idx",), band.shape, np.int64)
            np.multiply(band, cmul, out=band)  # exact: scores -> grid codes
            np.subtract(band, off, out=band)
            np.copyto(idx, band, casting="unsafe")
            np.take(table, idx, out=band, mode="clip")
        else:
            np.multiply(band, scale, out=band)
            dp.exp_into(band, band)
        if validf is not None:
            np.multiply(band, validf, out=band)
        if lmask is not None:
            np.multiply(band, lmask, out=band)
        band.sum(axis=-1, out=w)
        np.greater(w, 0.0, out=has)
        wsafe = self._buf(sc, ("epi_wsafe",), w.shape)
        inv = self._buf(sc, ("epi_inv",), w.shape)
        np.subtract(1.0, has, out=wsafe)
        np.add(wsafe, w, out=wsafe)
        dp.recip_into(wsafe, inv)
        pf = dp.prob_format
        if pf is not None and pf.max_value >= 2.0:
            # Fold the prob quantiser's power-of-two scale into the
            # row-shaped reciprocal: exact power-of-two scaling commutes
            # with fp rounding, so ``rint(e * (inv*2^k)) * res`` is bit
            # -identical to quantize_prob_into(bounded=True) on
            # ``e * inv`` — one fewer full-band pass.  The ≥ 2 headroom
            # check is the same saturation-skip proof (p < 2).
            np.multiply(inv, float(1 << pf.frac_bits), out=inv)
            np.multiply(band, inv[..., None], out=band)
            np.rint(band, out=band)
            np.multiply(band, pf.resolution, out=band)
        else:
            np.multiply(band, inv[..., None], out=band)
            dp.quantize_prob_into(band, band, bounded=True)

    def _run_global_column_tiled(self, cp, qh, kh, vh, scale, acc) -> None:
        """Global PE column via GEMM + the fused epilogue.

        When every non-global row already carries a window part and
        every row has work — the common case — the merge is one full
        -array in-place Eq. 2 pass over the accumulator slice instead of
        a gathered merge/scatter.
        """
        rows = cp.nonglobal_rows
        nr = len(rows)
        if nr == 0:
            return
        sc = cp.scratch
        dp = self.datapath
        gtok = cp.global_tokens
        lanes, _, d = qh.shape
        ng = len(gtok)
        contig = nr == int(rows[-1]) - int(rows[0]) + 1
        if contig:
            r0 = int(rows[0])
            qg = qh[:, r0 : r0 + nr]
        else:  # pragma: no cover - scattered global tokens
            ridx = self._static_index(sc, ("gcol_rows",), rows)
            qg = self._buf(sc, "gcol_q", (lanes, nr, d))
            np.take(qh, ridx, axis=1, out=qg, mode="clip")
        gidx = self._static_index(sc, ("gcol_keys",), gtok)
        kg = self._buf(sc, "gcol_k", (lanes, ng, d))
        vg = self._buf(sc, "gcol_v", (lanes, ng, d))
        np.take(kh, gidx, axis=1, out=kg, mode="clip")
        np.take(vh, gidx, axis=1, out=vg, mode="clip")
        s = self._buf(sc, "gcol_s", (lanes, nr, ng))
        np.matmul(qg, kg.swapaxes(-1, -2), out=s)
        w = self._buf(sc, "gcol_w", (lanes, nr))
        has = self._buf(sc, "gcol_has", (lanes, nr), np.bool_)
        self._band_epilogue(sc, s, None, None, scale, w, has)
        out = self._buf(sc, "gcol_out", (lanes, nr, d))
        np.matmul(s, vg, out=out)
        dp.quantize_output_into(out, out, bounded=self._stage5_bounded(cp))
        if contig:
            a_out = acc.out[:, r0 : r0 + nr]
            a_w = acc.w[:, r0 : r0 + nr]
            a_has = acc.has[:, r0 : r0 + nr]
            if bool(has.all()) and bool(a_has.all()):
                self.module.merge_into(a_out, a_w, out, w)
                acc.parts[:, r0 : r0 + nr] += 1
                acc.merges += lanes * nr
                return
            if has.any():
                # Mixed fresh/stale rows (padded tails under valid_lens):
                # run one full-array merge on weight-padded copies and
                # commit cells selectively — the same arithmetic the
                # gathered ``add_part`` merge performs at each stale
                # cell, without its per-call index allocations.  Padding
                # the weights with +1 at non-stale cells keeps every
                # reciprocal operand positive; those lanes' merged
                # values are discarded by the masked commit.
                stale = self._buf(sc, "gcol_stale", (lanes, nr), np.bool_)
                fresh = self._buf(sc, "gcol_fresh", (lanes, nr), np.bool_)
                np.logical_and(has, a_has, out=stale)
                np.greater(has, a_has, out=fresh)  # has & ~a_has
                mo = self._buf(sc, "gcol_mo", (lanes, nr, d))
                mw = self._buf(sc, "gcol_mw", (lanes, nr))
                w2 = self._buf(sc, "gcol_w2", (lanes, nr))
                np.copyto(mo, a_out)
                np.subtract(1.0, stale, out=mw)
                np.add(mw, a_w, out=mw)
                np.subtract(1.0, stale, out=w2)
                np.add(w2, w, out=w2)
                self.module.merge_into(mo, mw, out, w2)
                np.copyto(a_out, mo, where=stale[..., None])
                np.copyto(a_w, mw, where=stale)
                np.copyto(a_out, out, where=fresh[..., None])
                np.copyto(a_w, w, where=fresh)
                np.logical_or(a_has, has, out=a_has)
                acc.parts[:, r0 : r0 + nr] += has
                acc.merges += int(np.count_nonzero(stale))
            return
        acc.add_part(rows, out, w, has)  # pragma: no cover - scattered globals

    def _stages_batched(
        self,
        qb: np.ndarray,  # (H, ..., d) quantised query rows
        kb: np.ndarray,  # (H, ..., C, d) keys (views allowed)
        vb: np.ndarray,  # (H, ..., C, d) values (views allowed)
        valid: np.ndarray,  # broadcastable to (H, ..., C)
        scale: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stages 1–5 over an arbitrary batch; returns (out, w, has).

        The contraction axes (``d`` then ``C``) accumulate in the same
        element order as the legacy per-pass einsums, and masked or
        workless cells contribute an exact ``0.0`` through every
        reduction, so results are bit-identical.
        """
        # ``ascontiguousarray`` is required for bit-identity, not speed:
        # einsum over broadcast operands can return a strided result, and
        # numpy's pairwise sum reduces strided layouts in a different
        # association order than the contiguous arrays the reference
        # engine reduces (a one-ulp difference that quantisation amplifies).
        s = np.ascontiguousarray(np.einsum("...d,...cd->...c", qb, kb)) * scale
        e = np.where(valid, self.datapath.exp(s), 0.0)
        w = e.sum(axis=-1)
        has = w > 0
        inv = np.zeros_like(w)
        if has.any():
            inv[has] = self.datapath.recip(w[has])
        probs = self.datapath.quantize_prob(e * inv[..., None])
        out = self.datapath.quantize_output(np.einsum("...c,...cd->...d", probs, vb))
        return out, w, has

    def _run_window_job(
        self,
        job: WindowJob,
        qh: np.ndarray,
        kh: np.ndarray,
        vh: np.ndarray,
        scale: float,
        acc: "_BatchAccumulator",
        lane_lens: Optional[np.ndarray] = None,
    ) -> None:
        """Stages 1–5 + merge for one window-job family.

        Every query appears in at most one (group, block) cell of the
        job, so the whole family merges with a single vectorised
        weighted-sum call; job order replays the per-query pass order
        (see ``scheduler.compiled``).  Memory is bounded by slicing the
        block axis into chunks.
        """
        lanes, _, d = qh.shape
        rows, cols = job.rows, job.cols
        num_blocks = job.num_blocks
        per_block = lanes * job.num_groups * rows * cols * d
        chunk = max(1, _JOB_ELEMENT_BUDGET // max(1, per_block))
        for b0 in range(0, num_blocks, chunk):
            b1 = min(b0 + chunk, num_blocks)
            qb = qh[:, job.q_safe[:, b0:b1], :]  # (H, G, Bc, R, d)
            valid = job.valid[None, :, b0:b1]
            if job.segments is not None:
                kb = self._segment_views(job, kh, b0, b1)
                vb = self._segment_views(job, vh, b0, b1)
                if len(job.segments) == 1:
                    kv, vv = kb[0], vb[0]
                else:
                    # Stage 5 reduces across the packed segments in column
                    # order, so multi-segment jobs materialise the column
                    # axis (a structured copy from the small key blocks).
                    kv = np.concatenate(kb, axis=4)
                    vv = np.concatenate(vb, axis=4)
                if lane_lens is not None:
                    ids = self._segment_key_ids(job, b0, b1)
                    valid = valid & (ids[None] < lane_lens[:, None, None, None, None])
            else:  # pragma: no cover - irregular passes (not emitted today)
                ids = job.safe_key_ids[:, b0:b1]
                kv = kh[:, ids, :]
                vv = vh[:, ids, :]
                if lane_lens is not None:
                    valid = valid & (ids[None] < lane_lens[:, None, None, None, None])
            out, w, has = self._stages_batched(qb, kv, vv, valid, scale)
            sel = job.keep[:, b0:b1]
            acc.add_part(
                job.q_ids[:, b0:b1][sel], out[:, sel], w[:, sel], has[:, sel]
            )

    def _segment_key_ids(self, job: WindowJob, b0: int, b1: int) -> np.ndarray:
        """Key ids aligned with the segment views: ``(G, Bc, R, C)``.

        Built with the same stride trick as :meth:`_segment_views`, so
        cell ``(g, b, r, c)`` holds exactly the sequence index of the key
        the views place there (clipped cells are covered by ``job.valid``
        and may carry any id).  Only needed for padded-tail masking;
        memoized per (job, chunk) because it is pure plan structure and
        the serving fast path re-dispatches padded batches on a cached
        plan.
        """
        cache_key = (id(job), b0, b1)
        cached = self._segment_ids_cache.get(cache_key)
        if cached is not None:
            return cached
        per_seg = []
        for seg in job.segments:
            lo = b0 * seg.block_step
            hi = (b1 - 1) * seg.block_step + job.rows + seg.width - 1
            block = np.ascontiguousarray(seg.gather_ids[:, lo:hi])
            s_g, s_l = block.strides
            per_seg.append(
                as_strided(
                    block,
                    (job.num_groups, b1 - b0, job.rows, seg.width),
                    (s_g, seg.block_step * s_l, s_l, s_l),
                )
            )
        ids = per_seg[0] if len(per_seg) == 1 else np.concatenate(per_seg, axis=3)
        self._segment_ids_cache[cache_key] = ids
        return ids

    @staticmethod
    def _segment_views(
        job: WindowJob, xh: np.ndarray, b0: int, b1: int
    ) -> Tuple[np.ndarray, ...]:
        """Per-segment ``(L, G, Bc, R, W, d)`` diagonal window views of ``xh``.

        ``L`` is the lane axis (batch x heads).  Each segment gathers one
        small ``(L, G, len, d)`` block of vectors and exposes the per-cell
        operands through overlapping strides — mirroring the diagonal k/v
        forwarding of the PE array, which serves ``rows x cols`` cells
        from ``rows + cols - 1`` vectors.
        """
        lanes, _, d = xh.shape
        views = []
        for seg in job.segments:
            lo = b0 * seg.block_step
            hi = (b1 - 1) * seg.block_step + job.rows + seg.width - 1
            block = np.ascontiguousarray(xh[:, seg.gather_ids[:, lo:hi], :])
            s_h, s_g, s_l, s_d = block.strides
            views.append(
                as_strided(
                    block,
                    (lanes, job.num_groups, b1 - b0, job.rows, seg.width, d),
                    (s_h, s_g, seg.block_step * s_l, s_l, s_l, s_d),
                )
            )
        return tuple(views)

    def _run_global_column_batched(self, cp, qh, kh, vh, scale, acc) -> None:
        """Global PE column: every non-global query attends the global keys."""
        rows = cp.nonglobal_rows
        if len(rows) == 0:
            return
        gtok = cp.global_tokens
        qb = qh[:, rows, :]  # (H, r, d)
        kb = np.broadcast_to(
            kh[:, gtok, :][:, None, :, :], (qh.shape[0], len(rows), len(gtok), qh.shape[2])
        )
        vb = np.broadcast_to(
            vh[:, gtok, :][:, None, :, :], (qh.shape[0], len(rows), len(gtok), qh.shape[2])
        )
        valid = np.ones((1, len(rows), len(gtok)), dtype=bool)
        out, w, has = self._stages_batched(qb, kb, vb, valid, scale)
        acc.add_part(rows, out, w, has)

    def _run_global_rows_batched(
        self, cp, qh, kh, vh, scale, acc, lane_lens: Optional[np.ndarray] = None
    ) -> None:
        """Global PE row: each global query attends the full sequence.

        The row piggybacks on the key streams of the window passes
        (Section 5.2): each pass contributes its not-yet-seen keys as one
        partial-softmax batch (``ExecutionPlan.global_row_schedule``), so
        the full row is assembled with the same weighted-sum merges as any
        split window.  Stages 1–5 of every batch run in one einsum; only
        the (inherently sequential) merge chain loops.
        """
        gtok = cp.global_tokens
        num_b = cp.global_batches.shape[0]
        if num_b == 0 or len(gtok) == 0:
            return
        heads_n, _, d = qh.shape
        num_g = len(gtok)
        # Batches are evaluated bucketed by their true length: padding a
        # reduction axis with zeros changes numpy's pairwise-summation
        # tree (exact for the zeros, but regrouping the real terms), so
        # each batch must reduce over exactly its own keys to stay
        # bit-identical to the reference engine.
        out = np.empty((heads_n, num_b, num_g, d), dtype=np.float64)
        w = np.empty((heads_n, num_b, num_g), dtype=np.float64)
        has = np.empty((heads_n, num_b, num_g), dtype=bool)
        lengths = cp.global_batch_valid.sum(axis=1)
        for length in np.unique(lengths):
            idx = np.flatnonzero(lengths == length)
            keys = cp.global_batches[idx, :length]  # (nb, L) no padding
            qb = np.broadcast_to(
                qh[:, gtok, :][:, None, :, :], (heads_n, len(idx), num_g, d)
            )
            kb = np.broadcast_to(
                kh[:, keys, :][:, :, None, :, :], (heads_n, len(idx), num_g, length, d)
            )
            vb = np.broadcast_to(
                vh[:, keys, :][:, :, None, :, :], (heads_n, len(idx), num_g, length, d)
            )
            if lane_lens is None:
                valid = np.True_
            else:
                # (H, nb, 1, L): mask keys in each lane's padded tail.
                valid = (keys[None] < lane_lens[:, None, None])[:, :, None, :]
            o, ww, hh = self._stages_batched(qb, kb, vb, valid, scale)
            out[:, idx] = o
            w[:, idx] = ww
            has[:, idx] = hh
        self._merge_global_rows(cp, out, w, has, acc)

    def _run_global_rows_tiled(
        self, cp, qh, kh, vh, scale, acc, lane_lens: Optional[np.ndarray] = None
    ) -> None:
        """Global PE row via GEMM + fused epilogue in plan scratch.

        Same length-bucketed batches and merge chain as
        :meth:`_run_global_rows_batched`; only stages 1–5 differ —
        gathered contiguous key/value slabs and ``matmul`` replace the
        broadcast einsums (exact under quantisation, see
        :meth:`Datapath.supports_exact_gemm`), and the fused epilogue
        replaces the allocating mask/exp/recip sequence.
        """
        gtok = cp.global_tokens
        num_b = cp.global_batches.shape[0]
        if num_b == 0 or len(gtok) == 0:
            return
        sc = cp.scratch
        dp = self.datapath
        lanes, _, d = qh.shape
        num_g = len(gtok)
        out = self._buf(sc, "grow_out", (lanes, num_b, num_g, d))
        w = self._buf(sc, "grow_w", (lanes, num_b, num_g))
        has = self._buf(sc, "grow_has", (lanes, num_b, num_g), np.bool_)
        gidx = self._static_index(sc, ("grow_q",), gtok)
        qg = self._buf(sc, "grow_qg", (lanes, num_g, d))
        np.take(qh, gidx, axis=1, out=qg, mode="clip")
        buckets = sc.get(("grow_buckets",))
        if buckets is None:
            lengths = cp.global_batch_valid.sum(axis=1)
            buckets = [
                (int(length), np.flatnonzero(lengths == length))
                for length in np.unique(lengths)
            ]
            sc[("grow_buckets",)] = buckets
        for L, bidx in buckets:
            nb = len(bidx)
            keys = sc.get(("grow_keymat", L))
            if keys is None:
                keys = np.ascontiguousarray(cp.global_batches[bidx, :L])
                sc[("grow_keymat", L)] = keys
            # Adjacent batches usually tile the sequence: when the
            # flattened key matrix is one arange the gathers collapse to
            # zero-copy slices of the key/value slabs.
            krun = sc.get(("grow_krange", L))
            if krun is None:
                krun = _arange_start(keys.ravel())
                krun = False if krun is None else krun
                sc[("grow_krange", L)] = krun
            if krun is not False:
                s0 = int(krun)
                kv = kh[:, s0 : s0 + nb * L].reshape(lanes, nb, L, d)
                vv = vh[:, s0 : s0 + nb * L].reshape(lanes, nb, L, d)
            else:
                kidx = self._static_index(sc, ("grow_keys", L), keys)
                kb = self._buf(sc, ("grow_k", L, nb), (lanes, nb * L, d))
                vb = self._buf(sc, ("grow_v", L, nb), (lanes, nb * L, d))
                np.take(kh, kidx, axis=1, out=kb, mode="clip")
                np.take(vh, kidx, axis=1, out=vb, mode="clip")
                kv = kb.reshape(lanes, nb, L, d)
                vv = vb.reshape(lanes, nb, L, d)
            s = self._buf(sc, ("grow_s", L, nb), (lanes, nb, num_g, L))
            np.matmul(qg[:, None], kv.swapaxes(-1, -2), out=s)
            lmask = None
            if lane_lens is not None:
                lmask = self._buf(sc, ("grow_lmask", L, nb), (lanes, nb, 1, L), np.bool_)
                np.less(
                    keys[None, :, None, :], lane_lens[:, None, None, None], out=lmask
                )
            bw = self._buf(sc, ("grow_bw", L, nb), (lanes, nb, num_g))
            bh = self._buf(sc, ("grow_bh", L, nb), (lanes, nb, num_g), np.bool_)
            self._band_epilogue(sc, s, None, lmask, scale, bw, bh)
            bo = self._buf(sc, ("grow_bo", L, nb), (lanes, nb, num_g, d))
            np.matmul(s, vv, out=bo)
            dp.quantize_output_into(bo, bo, bounded=self._stage5_bounded(cp))
            out[:, bidx] = bo
            w[:, bidx] = bw
            has[:, bidx] = bh
        self._merge_global_rows(cp, out, w, has, acc)

    def _merge_global_rows(self, cp, out, w, has, acc) -> None:
        """Sequential weighted-sum merge chain of the global-row batches."""
        gtok = cp.global_tokens
        num_b = out.shape[1]
        heads_n = out.shape[0]
        num_g = len(gtok)
        if heads_n * num_g == 1:
            # Serving-path fast path: one lane, one global token.  The
            # general chain below spends most of its time building (1, 1)
            # boolean masks and fancy indices per batch; the scalar chain
            # performs the identical merges on fixed (1, d)/(1,) slices.
            self._merge_global_chain_scalar(cp, out, w, has, acc)
            return
        # The batches form a private merge chain: no other part ever
        # touches a global query row, so run the chain on local (H, G)
        # state and commit it to the accumulator once at the end.
        heads, _, num_g, d = out.shape
        sc = cp.scratch
        out_run = self._buf(sc, "grow_run_out", (heads, num_g, d))
        w_run = self._buf(sc, "grow_run_w", (heads, num_g))
        has_run = self._buf(sc, "grow_run_has", (heads, num_g), np.bool_)
        parts_run = self._buf(sc, "grow_run_parts", (heads, num_g), np.int64)
        out_run.fill(0.0)
        w_run.fill(0.0)
        has_run.fill(False)
        parts_run.fill(0)
        for b in range(num_b):
            hb = has[:, b]
            if not hb.any():
                continue
            if bool(hb.all()):
                # Full batches dominate (every lane attends every global
                # token); merge the whole running state in place instead
                # of building masks and fancy-index copies per batch.
                if bool(has_run.all()):
                    self.module.merge_into(out_run, w_run, out[:, b], w[:, b])
                    acc.merges += has_run.size
                    parts_run += 1
                    continue
                if not has_run.any():
                    np.copyto(out_run, out[:, b])
                    np.copyto(w_run, w[:, b])
                    has_run[:] = True
                    parts_run += 1
                    continue
            stale = hb & has_run
            fresh = hb & ~has_run
            if fresh.any():
                out_run[fresh] = out[:, b][fresh]
                w_run[fresh] = w[:, b][fresh]
                has_run |= fresh
            if stale.any():
                merged, total = self.module.merge(
                    out_run[stale], w_run[stale], out[:, b][stale], w[:, b][stale]
                )
                out_run[stale] = merged
                w_run[stale] = total
                acc.merges += int(stale.sum())
            parts_run[hb] += 1
        g0 = sc.get(("grow_grange",))
        if g0 is None:
            g0 = _arange_start(np.asarray(gtok).ravel())
            g0 = False if g0 is None else g0
            sc[("grow_grange",)] = g0
        if bool(has_run.all()) and g0 is not False:
            acc.out[:, g0 : g0 + num_g] = out_run
            acc.w[:, g0 : g0 + num_g] = w_run
            acc.has[:, g0 : g0 + num_g] = True
        else:
            h_idx, g_idx = np.nonzero(has_run)
            acc.out[h_idx, gtok[g_idx]] = out_run[has_run]
            acc.w[h_idx, gtok[g_idx]] = w_run[has_run]
            acc.has[h_idx, gtok[g_idx]] = True
        acc.parts[:, gtok] += parts_run

    def _merge_global_chain_scalar(self, cp, out, w, has, acc) -> None:
        """Global-row merge chain for the ``lanes * globals == 1`` case.

        Operates on the same ``(1, d)`` / ``(1,)`` operand shapes the
        general chain passes to :meth:`WeightedSumModule.merge` (so the
        arithmetic is bit-identical), but replaces the per-batch mask and
        fancy-index bookkeeping with direct scalar control flow.
        """
        o2 = out[0, :, 0]  # (num_b, d)
        w2 = w[0, :, 0]  # (num_b,)
        h2 = has[0, :, 0]  # (num_b,)
        out_run: Optional[np.ndarray] = None
        w_run: Optional[np.ndarray] = None
        parts = 0
        merges = 0
        for bi in range(o2.shape[0]):
            if not h2[bi]:
                continue
            if out_run is None:
                out_run = o2[bi : bi + 1]
                w_run = w2[bi : bi + 1]
            else:
                out_run, w_run = self.module.merge(
                    out_run, w_run, o2[bi : bi + 1], w2[bi : bi + 1]
                )
                merges += 1
            parts += 1
        g = cp.global_tokens[0]
        if out_run is not None:
            acc.out[0, g] = out_run[0]
            acc.w[0, g] = w_run[0]
            acc.has[0, g] = True
        acc.parts[0, g] += parts
        acc.merges += merges

    # ------------------------------------------------------------------
    # Legacy per-head, per-pass path (reference implementation)
    # ------------------------------------------------------------------
    def _run_head(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: float,
        valid_len: Optional[int] = None,
    ) -> Tuple[np.ndarray, _Accumulator]:
        plan = self.plan
        n, d = q.shape
        qq = self.datapath.quantize_input(q)
        kq = self.datapath.quantize_input(k)
        vq = self.datapath.quantize_input(v)
        acc = _Accumulator(n, d, self.module)
        gset = plan.global_set
        gmask = np.zeros(n, dtype=bool)
        if gset:
            gmask[list(gset)] = True

        for tp in plan.passes:
            self._run_window_pass(tp, qq, kq, vq, scale, acc, gset, gmask, valid_len)
        if plan.global_tokens:
            self._run_global_column(qq, kq, vq, scale, acc, gmask)
            self._run_global_rows(qq, kq, vq, scale, acc, valid_len)

        covered = acc.has if valid_len is None else acc.has | (np.arange(n) >= valid_len)
        if not covered.all():
            missing = np.flatnonzero(~covered)
            raise EngineError(
                f"queries {missing[:8].tolist()}... received no attention part; "
                "the pattern leaves them without keys"
            )
        return acc.out, acc

    # ------------------------------------------------------------------
    def _attend_block(
        self,
        qb: np.ndarray,  # (rows, d) quantised queries
        key_ids: np.ndarray,  # (rows, cols) with -1 = masked
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stages 1–5 for one block; returns (out, w, row_has_work)."""
        valid = key_ids >= 0
        safe = np.where(valid, key_ids, 0)
        kb = kq[safe]  # (rows, cols, d)
        vb = vq[safe]
        s = np.einsum("rd,rcd->rc", qb, kb) * scale
        e = np.where(valid, self.datapath.exp(s), 0.0)
        w = e.sum(axis=1)
        has = w > 0
        out = np.zeros((qb.shape[0], vb.shape[2]), dtype=np.float64)
        if has.any():
            inv = self.datapath.recip(w[has])
            probs = self.datapath.quantize_prob(e[has] * inv[:, None])
            out[has] = self.datapath.quantize_output(
                np.einsum("rc,rcd->rd", probs, vb[has])
            )
        return out, w, has

    def _run_window_pass(
        self,
        tp: TilePass,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
        gset,
        gmask: np.ndarray,
        valid_len: Optional[int] = None,
    ) -> None:
        n = self.plan.n
        q_ids = tp.query_ids()
        key_ids = tp.key_ids(n, exclude=gset)
        if valid_len is not None:
            key_ids = np.where(key_ids >= valid_len, -1, key_ids)
        # Global queries are produced by the global PE row; drop their rows.
        keep = ~gmask[q_ids]
        if not keep.any():
            return
        q_ids = q_ids[keep]
        key_ids = key_ids[keep]
        out, w, has = self._attend_block(qq[q_ids], key_ids, kq, vq, scale)
        if has.any():
            acc.add_part(q_ids[has], out[has], w[has])

    def _run_global_column(
        self,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
        gmask: np.ndarray,
    ) -> None:
        """Global PE column: every non-global query attends the global keys."""
        rows = np.flatnonzero(~gmask)
        if len(rows) == 0:
            return
        gtok = np.asarray(self.plan.global_tokens, dtype=np.int64)
        key_ids = np.broadcast_to(gtok, (len(rows), len(gtok)))
        out, w, has = self._attend_block(qq[rows], key_ids, kq, vq, scale)
        if has.any():
            acc.add_part(rows[has], out[has], w[has])

    def _run_global_rows(
        self,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
        valid_len: Optional[int] = None,
    ) -> None:
        """Global PE row: each global query attends the full sequence.

        Consumes the same memoized ``global_row_schedule`` as the compiled
        path and the micro-simulator, so merge orders cannot drift.
        """
        schedule = self.plan.global_row_schedule()
        rows = np.asarray(self.plan.global_tokens, dtype=np.int64)
        if len(rows) == 0:
            return
        for batch in schedule:
            if valid_len is not None:
                batch = np.where(np.asarray(batch) >= valid_len, -1, batch)
            key_ids = np.broadcast_to(batch, (len(rows), len(batch)))
            out, w, has = self._attend_block(qq[rows], key_ids, kq, vq, scale)
            if has.any():
                acc.add_part(rows[has], out[has], w[has])
