"""Vectorised functional engine: execute a tile plan on real data.

This engine computes the attention output a SALO instance would produce —
same pass structure, same fixed-point arithmetic, same PWL exp, same
reciprocal unit and weighted-sum merges — but evaluates each pass with
vectorised numpy instead of per-cycle PE state, so it scales to full
workloads.  The cycle-accurate micro-simulator
(:mod:`repro.accelerator.systolic`) is bit-identical to this engine on its
(small) parameter space; see ``tests/accelerator/test_systolic.py`` and
``tests/accelerator/test_compiled_equivalence.py``.

Semantics of a pass (rows = query block, columns = packed band segments):

1. ``S = Q_blk @ K_cols^T * scale`` (masked cells excluded),
2. ``E = exp(S)`` via the PWL unit, masked cells contribute 0,
3. ``W = rowsum(E)``, ``inv = recip(W)``,
4. ``S' = E * inv`` quantised to the probability format,
5. ``out = S' @ V_cols`` quantised to the output format,

then the weighted-sum module merges ``(out, W)`` into the query's running
output.  Global-token queries are produced by the global PE row (their
full row is computed in ``pe_cols``-wide chunks, merged the same way);
global-token keys are produced once per query by the global PE column and
excluded from window passes to avoid double counting.

Execution pipeline
------------------
Passes are structural — identical across heads and across calls — so the
default path consumes the plan's memoized
:class:`~repro.scheduler.compiled.CompiledPlan`: Q/K/V are quantised once
for all heads, stages 1–5 run as chunked batched einsums over
``(heads, passes, rows, cols, head_dim)`` padded tensors, and the
weighted-sum merges replay in precompiled *merge rounds* whose order
equals the hardware's per-query pass order.  Padding is exact: masked
cells contribute an exact ``0.0`` to every reduction, so the batched path
is bit-identical to the legacy per-pass path (``use_compiled=False``),
which is retained as the reference implementation for the equivalence
suite.

Batch axis (multi-sequence serving)
-----------------------------------
:meth:`FunctionalEngine.run` also accepts a leading batch axis
``(b, n, heads*head_dim)``: a batch of independent sequences that share
the same execution plan (the unit the serving layer in
:mod:`repro.serving` dispatches).  The compiled path folds the batch and
head axes into a single *lane* axis ``L = b * heads`` — every stage 1–5
einsum then runs over ``(b·heads, groups, blocks, rows, cols, head_dim)``
operands and every weighted-sum merge chain is carried per lane.  All
lane-axis operations are elementwise or reduce only trailing axes, so
each sequence's arithmetic (summation trees included) is exactly that of
its own ``b=1`` call: batched outputs are bit-identical to looped
single-sequence runs (``tests/accelerator/test_batched_equivalence.py``).
The single-sequence call is simply the ``b=1`` special case with the
leading axis elided.

Padded tails (cross-length batching)
------------------------------------
:meth:`FunctionalEngine.run` optionally takes per-sequence ``valid_lens``:
sequence ``i`` of the batch carries real data only in rows
``[0, valid_lens[i])`` and the rest is zero padding up to the plan length.
Keys at or beyond a lane's valid length are masked out of stage 2 (their
``exp`` contribution is an exact ``0.0``, excluded from the softmax
denominator), so the retained query rows attend exactly the key set of an
unpadded run at the true length — the serving layer's ``pad_to_bucket``
mode uses this to batch same-structure requests of different lengths
under one bucket-length plan and slice outputs back.  Padded query rows
compute garbage (the caller slices them away) and are exempt from the
every-query-has-a-part check.  Global tokens must lie inside every lane's
valid prefix.  Equivalence to the unpadded per-request plan is
mathematical, not bit-exact: the bucket-length plan partitions the same
key sets into different passes, so partial-softmax merge trees (and their
quantisation points) differ — ``tests/serving/test_padding.py``
characterises the bound.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..scheduler.compiled import WindowJob
from ..scheduler.plan import ExecutionPlan, TilePass
from .datapath import Datapath
from .weighted_sum import WeightedSumModule

__all__ = ["FunctionalEngine", "FunctionalResult", "EngineError"]

# Per-chunk operand budget (elements) when slicing a window job's block
# axis: bounds the transient (heads, blocks, rows, cols, head_dim)
# working set to ~32 MB of float64 per operand.
_JOB_ELEMENT_BUDGET = 1 << 22


class EngineError(RuntimeError):
    """Raised when a plan cannot be executed on the given data."""


@dataclass
class FunctionalResult:
    """Output of a functional run.

    Single-sequence runs produce ``output (n, heads*head_dim)`` and
    ``parts (heads, n)``; batched runs carry a leading batch axis on
    both (``(b, n, heads*head_dim)`` / ``(b, heads, n)``).
    """

    output: np.ndarray  # (n, heads * head_dim) or (b, n, heads * head_dim)
    merges: int  # weighted-sum merge operations performed (all sequences)
    # (heads, n) or (b, heads, n) partial outputs per query; None for
    # engines that do not track part counts (the systolic adapter).
    parts: Optional[np.ndarray]

    @property
    def n(self) -> int:
        return self.output.shape[-2]

    @property
    def batch(self) -> Optional[int]:
        """Batch size, or ``None`` for a single-sequence result."""
        return self.output.shape[0] if self.output.ndim == 3 else None


class _Accumulator:
    """Running (output, weight) state for one head, merged part by part."""

    def __init__(
        self, n: int, d: int, module: WeightedSumModule
    ) -> None:
        self.out = np.zeros((n, d), dtype=np.float64)
        self.w = np.zeros(n, dtype=np.float64)
        self.has = np.zeros(n, dtype=bool)
        self.parts = np.zeros(n, dtype=np.int64)
        self.module = module
        self.merges = 0

    def add_part(self, rows: np.ndarray, out: np.ndarray, w: np.ndarray) -> None:
        """Merge a partial output for the given query rows."""
        rows = np.asarray(rows, dtype=np.int64)
        fresh = ~self.has[rows]
        if fresh.any():
            fr = rows[fresh]
            self.out[fr] = out[fresh]
            self.w[fr] = w[fresh]
            self.has[fr] = True
        stale = ~fresh
        if stale.any():
            sr = rows[stale]
            merged, total = self.module.merge(
                self.out[sr], self.w[sr], out[stale], w[stale]
            )
            self.out[sr] = merged
            self.w[sr] = total
            self.merges += int(stale.sum())
        self.parts[rows] += 1


class _BatchAccumulator:
    """Running (output, weight) state for all execution lanes at once.

    A *lane* is one (sequence, head) pair: single-sequence runs carry one
    lane per head, batched runs fold the batch and head axes into
    ``b * heads`` lanes.  Merges are performed on flattened
    ``(lane, query)`` selections; each selection within one
    :meth:`add_part` call holds a query at most once per lane, so the
    pairwise merge chain per ``(lane, query)`` is exactly the per-head
    chain of :class:`_Accumulator` for that lane's sequence.
    """

    def __init__(self, lanes: int, n: int, d: int, module: WeightedSumModule) -> None:
        self.out = np.zeros((lanes, n, d), dtype=np.float64)
        self.w = np.zeros((lanes, n), dtype=np.float64)
        self.has = np.zeros((lanes, n), dtype=bool)
        self.parts = np.zeros((lanes, n), dtype=np.int64)
        self.module = module
        self.merges = 0

    def add_part(
        self, rows: np.ndarray, out: np.ndarray, w: np.ndarray, has: np.ndarray
    ) -> None:
        """Merge partials ``out (H, r, d)`` / ``w (H, r)`` where ``has`` is set."""
        if not has.any():
            return
        if has.all() and not self.has[:, rows].any():
            # Every row is a first part on every head: plain assignment,
            # identical to the general path below without the index math.
            self.out[:, rows] = out
            self.w[:, rows] = w
            self.has[:, rows] = True
            self.parts[:, rows] += 1
            return
        h_idx, r_idx = np.nonzero(has)
        q_idx = rows[r_idx]
        cur = self.has[h_idx, q_idx]
        fresh = ~cur
        if fresh.any():
            hf, qf, rf = h_idx[fresh], q_idx[fresh], r_idx[fresh]
            self.out[hf, qf] = out[hf, rf]
            self.w[hf, qf] = w[hf, rf]
            self.has[hf, qf] = True
        if cur.any():
            hs, qs, rs = h_idx[cur], q_idx[cur], r_idx[cur]
            merged, total = self.module.merge(
                self.out[hs, qs], self.w[hs, qs], out[hs, rs], w[hs, rs]
            )
            self.out[hs, qs] = merged
            self.w[hs, qs] = total
            self.merges += int(cur.sum())
        self.parts[h_idx, q_idx] += 1


class FunctionalEngine:
    """Executes :class:`ExecutionPlan` instances on (Q, K, V) data.

    ``mode="compiled"`` (default) runs the batched multi-head path over
    the plan's :class:`~repro.scheduler.compiled.CompiledPlan`;
    ``mode="legacy"`` runs the per-head, per-pass reference path.  Both
    produce bit-identical outputs.  At the system level the two modes
    are the ``"functional"`` and ``"functional-legacy"`` engine backends
    (:data:`repro.core.salo.ENGINE_BACKENDS` / the :mod:`repro.api`
    registry); select them by name there rather than constructing
    engines directly.

    ``use_compiled`` is the deprecated boolean spelling of ``mode``
    (``True`` -> ``"compiled"``, ``False`` -> ``"legacy"``); it is kept
    as a shim for existing call sites and overrides ``mode`` when given.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        mode: str = "compiled",
        use_compiled: Optional[bool] = None,
    ) -> None:
        if isinstance(mode, bool):
            # Positional spelling of the old signature:
            # FunctionalEngine(plan, False) meant use_compiled=False.
            use_compiled, mode = mode, "compiled"
        if use_compiled is not None:
            warnings.warn(
                "FunctionalEngine(use_compiled=...) is deprecated; use "
                "mode='compiled'/'legacy' (or the 'functional' / "
                "'functional-legacy' backends of repro.api)",
                DeprecationWarning,
                stacklevel=2,
            )
            mode = "compiled" if use_compiled else "legacy"
        if mode not in ("compiled", "legacy"):
            raise ValueError(f"unknown engine mode {mode!r}; known: compiled, legacy")
        self.plan = plan
        self.mode = mode
        self.use_compiled = mode == "compiled"  # read by existing call sites
        self.datapath = Datapath(plan.config.numerics)
        self.module = WeightedSumModule(self.datapath)
        # (id(job), b0, b1) -> key-id tensor for padded-tail masking;
        # pure plan structure, so cached for the engine's lifetime (the
        # engine keeps the compiled plan — and its jobs — alive).
        self._segment_ids_cache: dict = {}
        if self.use_compiled:
            # Compile once at construction (memoized on the plan), and
            # force the lazy execution schedule now: engines always run.
            plan.compiled().window_jobs

    # ------------------------------------------------------------------
    def run(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: Optional[float] = None,
        valid_lens: Optional[np.ndarray] = None,
    ) -> FunctionalResult:
        """Compute the sparse attention output.

        ``q``, ``k``, ``v`` are either a single sequence
        ``(n, heads*head_dim)`` or a batch of same-plan sequences
        ``(b, n, heads*head_dim)``; the result's shapes follow the input
        rank.  Batched outputs are bit-identical to looping the
        single-sequence call over the batch.

        ``valid_lens`` (one int per sequence, or a scalar for the
        single-sequence form) marks each sequence's real length: rows at
        or beyond it are zero padding whose keys are masked out of the
        softmax and whose query outputs are unspecified (see the module
        docstring).  ``None`` — the common case — means every sequence
        fills the plan length and takes the unmodified fast path.
        """
        plan = self.plan
        q = np.asarray(q, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if q.ndim not in (2, 3):
            raise EngineError(f"q must be (n, hidden) or (b, n, hidden), got shape {q.shape}")
        n, hidden = q.shape[-2:]
        if n != plan.n:
            raise EngineError(f"plan is for n={plan.n}, data has n={n}")
        if hidden != plan.heads * plan.head_dim:
            raise EngineError(
                f"hidden size {hidden} != heads*head_dim = {plan.heads * plan.head_dim}"
            )
        if k.shape != q.shape or v.shape != q.shape:
            raise EngineError("q, k, v must share shape")
        if scale is None:
            scale = 1.0 / np.sqrt(plan.head_dim)
        lens = self._check_valid_lens(valid_lens, q)

        if self.use_compiled:
            return self._run_compiled(q, k, v, scale, lens)

        if q.ndim == 3:
            # Reference semantics of a batch: independent per-sequence runs.
            results = [
                self._run_legacy(
                    q[b], k[b], v[b], scale, None if lens is None else int(lens[b])
                )
                for b in range(q.shape[0])
            ]
            return FunctionalResult(
                output=np.stack([r.output for r in results]),
                merges=sum(r.merges for r in results),
                parts=np.stack([r.parts for r in results]),
            )
        return self._run_legacy(q, k, v, scale, None if lens is None else int(lens[0]))

    def _check_valid_lens(
        self, valid_lens, q: np.ndarray
    ) -> Optional[np.ndarray]:
        """Normalise ``valid_lens`` to an int64 ``(b,)`` array (or ``None``).

        All-full lens collapse to ``None`` so the common case stays on
        the untouched (bit-identical) execution path.
        """
        if valid_lens is None:
            return None
        plan = self.plan
        b = q.shape[0] if q.ndim == 3 else 1
        lens = np.atleast_1d(np.asarray(valid_lens, dtype=np.int64))
        if lens.shape != (b,):
            raise EngineError(
                f"valid_lens must hold one length per sequence ({b}), got shape {lens.shape}"
            )
        if np.any(lens < 1) or np.any(lens > plan.n):
            raise EngineError(
                f"valid_lens must lie in [1, {plan.n}], got {lens.tolist()}"
            )
        if np.all(lens == plan.n):
            return None
        gtok = plan.global_tokens
        if gtok and max(gtok) >= int(lens.min()):
            raise EngineError(
                f"global tokens {tuple(gtok)} must lie inside every sequence's "
                f"valid prefix (min valid_len {int(lens.min())})"
            )
        return lens

    def _run_legacy(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: float,
        valid_len: Optional[int] = None,
    ) -> FunctionalResult:
        """Per-head, per-pass reference path for one sequence."""
        plan = self.plan
        n, hidden = q.shape
        out = np.empty((n, hidden), dtype=np.float64)
        merges = 0
        parts = np.zeros((plan.heads, n), dtype=np.int64)
        for h in range(plan.heads):
            sl = slice(h * plan.head_dim, (h + 1) * plan.head_dim)
            head_out, acc = self._run_head(q[:, sl], k[:, sl], v[:, sl], scale, valid_len)
            out[:, sl] = head_out
            merges += acc.merges
            parts[h] = acc.parts
        return FunctionalResult(output=out, merges=merges, parts=parts)

    # ------------------------------------------------------------------
    # Compiled batched path
    # ------------------------------------------------------------------
    def _run_compiled(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: float,
        lens: Optional[np.ndarray] = None,
    ) -> FunctionalResult:
        plan = self.plan
        cp = plan.compiled()
        n, d, heads = plan.n, plan.head_dim, plan.heads
        batched = q.ndim == 3
        b = q.shape[0] if batched else 1
        lanes = b * heads
        # Per-lane valid lengths: each sequence's heads share its length.
        lane_lens = None if lens is None else np.repeat(lens, heads)
        # Quantise once for all lanes; (b?, n, H*d) -> (b*H, n, d).  Every
        # lane's slab has the same contiguous (n, d) layout a b=1 call
        # produces, so downstream reductions see identical summation
        # trees per sequence.
        qh = np.ascontiguousarray(
            self.datapath.quantize_input(q)
            .reshape(b, n, heads, d)
            .transpose(0, 2, 1, 3)
            .reshape(lanes, n, d)
        )
        kh = np.ascontiguousarray(
            self.datapath.quantize_input(k)
            .reshape(b, n, heads, d)
            .transpose(0, 2, 1, 3)
            .reshape(lanes, n, d)
        )
        vh = np.ascontiguousarray(
            self.datapath.quantize_input(v)
            .reshape(b, n, heads, d)
            .transpose(0, 2, 1, 3)
            .reshape(lanes, n, d)
        )
        acc = _BatchAccumulator(lanes, n, d, self.module)

        for job in cp.window_jobs:
            self._run_window_job(job, qh, kh, vh, scale, acc, lane_lens)
        if len(cp.global_tokens):
            self._run_global_column_batched(cp, qh, kh, vh, scale, acc)
            self._run_global_rows_batched(cp, qh, kh, vh, scale, acc, lane_lens)

        # Padded query rows (>= a lane's valid length) are sliced away by
        # the caller and need not receive a part.
        covered = acc.has
        if lane_lens is not None:
            covered = covered | (np.arange(n)[None, :] >= lane_lens[:, None])
        if not covered.all():
            missing = np.flatnonzero(~covered.all(axis=0))
            raise EngineError(
                f"queries {missing[:8].tolist()}... received no attention part; "
                "the pattern leaves them without keys"
            )
        parts = acc.parts.reshape(b, heads, n)
        output = np.ascontiguousarray(
            acc.out.reshape(b, heads, n, d).transpose(0, 2, 1, 3)
        ).reshape(b, n, heads * d)
        if not batched:
            output = output.reshape(n, heads * d)
            parts = parts.reshape(heads, n)
        return FunctionalResult(output=output, merges=acc.merges, parts=parts)

    def _stages_batched(
        self,
        qb: np.ndarray,  # (H, ..., d) quantised query rows
        kb: np.ndarray,  # (H, ..., C, d) keys (views allowed)
        vb: np.ndarray,  # (H, ..., C, d) values (views allowed)
        valid: np.ndarray,  # broadcastable to (H, ..., C)
        scale: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stages 1–5 over an arbitrary batch; returns (out, w, has).

        The contraction axes (``d`` then ``C``) accumulate in the same
        element order as the legacy per-pass einsums, and masked or
        workless cells contribute an exact ``0.0`` through every
        reduction, so results are bit-identical.
        """
        # ``ascontiguousarray`` is required for bit-identity, not speed:
        # einsum over broadcast operands can return a strided result, and
        # numpy's pairwise sum reduces strided layouts in a different
        # association order than the contiguous arrays the reference
        # engine reduces (a one-ulp difference that quantisation amplifies).
        s = np.ascontiguousarray(np.einsum("...d,...cd->...c", qb, kb)) * scale
        e = np.where(valid, self.datapath.exp(s), 0.0)
        w = e.sum(axis=-1)
        has = w > 0
        inv = np.zeros_like(w)
        if has.any():
            inv[has] = self.datapath.recip(w[has])
        probs = self.datapath.quantize_prob(e * inv[..., None])
        out = self.datapath.quantize_output(np.einsum("...c,...cd->...d", probs, vb))
        return out, w, has

    def _run_window_job(
        self,
        job: WindowJob,
        qh: np.ndarray,
        kh: np.ndarray,
        vh: np.ndarray,
        scale: float,
        acc: "_BatchAccumulator",
        lane_lens: Optional[np.ndarray] = None,
    ) -> None:
        """Stages 1–5 + merge for one window-job family.

        Every query appears in at most one (group, block) cell of the
        job, so the whole family merges with a single vectorised
        weighted-sum call; job order replays the per-query pass order
        (see ``scheduler.compiled``).  Memory is bounded by slicing the
        block axis into chunks.
        """
        lanes, _, d = qh.shape
        rows, cols = job.rows, job.cols
        num_blocks = job.num_blocks
        per_block = lanes * job.num_groups * rows * cols * d
        chunk = max(1, _JOB_ELEMENT_BUDGET // max(1, per_block))
        for b0 in range(0, num_blocks, chunk):
            b1 = min(b0 + chunk, num_blocks)
            qb = qh[:, job.q_safe[:, b0:b1], :]  # (H, G, Bc, R, d)
            valid = job.valid[None, :, b0:b1]
            if job.segments is not None:
                kb = self._segment_views(job, kh, b0, b1)
                vb = self._segment_views(job, vh, b0, b1)
                if len(job.segments) == 1:
                    kv, vv = kb[0], vb[0]
                else:
                    # Stage 5 reduces across the packed segments in column
                    # order, so multi-segment jobs materialise the column
                    # axis (a structured copy from the small key blocks).
                    kv = np.concatenate(kb, axis=4)
                    vv = np.concatenate(vb, axis=4)
                if lane_lens is not None:
                    ids = self._segment_key_ids(job, b0, b1)
                    valid = valid & (ids[None] < lane_lens[:, None, None, None, None])
            else:  # pragma: no cover - irregular passes (not emitted today)
                ids = job.safe_key_ids[:, b0:b1]
                kv = kh[:, ids, :]
                vv = vh[:, ids, :]
                if lane_lens is not None:
                    valid = valid & (ids[None] < lane_lens[:, None, None, None, None])
            out, w, has = self._stages_batched(qb, kv, vv, valid, scale)
            sel = job.keep[:, b0:b1]
            acc.add_part(
                job.q_ids[:, b0:b1][sel], out[:, sel], w[:, sel], has[:, sel]
            )

    def _segment_key_ids(self, job: WindowJob, b0: int, b1: int) -> np.ndarray:
        """Key ids aligned with the segment views: ``(G, Bc, R, C)``.

        Built with the same stride trick as :meth:`_segment_views`, so
        cell ``(g, b, r, c)`` holds exactly the sequence index of the key
        the views place there (clipped cells are covered by ``job.valid``
        and may carry any id).  Only needed for padded-tail masking;
        memoized per (job, chunk) because it is pure plan structure and
        the serving fast path re-dispatches padded batches on a cached
        plan.
        """
        cache_key = (id(job), b0, b1)
        cached = self._segment_ids_cache.get(cache_key)
        if cached is not None:
            return cached
        per_seg = []
        for seg in job.segments:
            lo = b0 * seg.block_step
            hi = (b1 - 1) * seg.block_step + job.rows + seg.width - 1
            block = np.ascontiguousarray(seg.gather_ids[:, lo:hi])
            s_g, s_l = block.strides
            per_seg.append(
                as_strided(
                    block,
                    (job.num_groups, b1 - b0, job.rows, seg.width),
                    (s_g, seg.block_step * s_l, s_l, s_l),
                )
            )
        ids = per_seg[0] if len(per_seg) == 1 else np.concatenate(per_seg, axis=3)
        self._segment_ids_cache[cache_key] = ids
        return ids

    @staticmethod
    def _segment_views(
        job: WindowJob, xh: np.ndarray, b0: int, b1: int
    ) -> Tuple[np.ndarray, ...]:
        """Per-segment ``(L, G, Bc, R, W, d)`` diagonal window views of ``xh``.

        ``L`` is the lane axis (batch x heads).  Each segment gathers one
        small ``(L, G, len, d)`` block of vectors and exposes the per-cell
        operands through overlapping strides — mirroring the diagonal k/v
        forwarding of the PE array, which serves ``rows x cols`` cells
        from ``rows + cols - 1`` vectors.
        """
        lanes, _, d = xh.shape
        views = []
        for seg in job.segments:
            lo = b0 * seg.block_step
            hi = (b1 - 1) * seg.block_step + job.rows + seg.width - 1
            block = np.ascontiguousarray(xh[:, seg.gather_ids[:, lo:hi], :])
            s_h, s_g, s_l, s_d = block.strides
            views.append(
                as_strided(
                    block,
                    (lanes, job.num_groups, b1 - b0, job.rows, seg.width, d),
                    (s_h, s_g, seg.block_step * s_l, s_l, s_l, s_d),
                )
            )
        return tuple(views)

    def _run_global_column_batched(self, cp, qh, kh, vh, scale, acc) -> None:
        """Global PE column: every non-global query attends the global keys."""
        rows = cp.nonglobal_rows
        if len(rows) == 0:
            return
        gtok = cp.global_tokens
        qb = qh[:, rows, :]  # (H, r, d)
        kb = np.broadcast_to(
            kh[:, gtok, :][:, None, :, :], (qh.shape[0], len(rows), len(gtok), qh.shape[2])
        )
        vb = np.broadcast_to(
            vh[:, gtok, :][:, None, :, :], (qh.shape[0], len(rows), len(gtok), qh.shape[2])
        )
        valid = np.ones((1, len(rows), len(gtok)), dtype=bool)
        out, w, has = self._stages_batched(qb, kb, vb, valid, scale)
        acc.add_part(rows, out, w, has)

    def _run_global_rows_batched(
        self, cp, qh, kh, vh, scale, acc, lane_lens: Optional[np.ndarray] = None
    ) -> None:
        """Global PE row: each global query attends the full sequence.

        The row piggybacks on the key streams of the window passes
        (Section 5.2): each pass contributes its not-yet-seen keys as one
        partial-softmax batch (``ExecutionPlan.global_row_schedule``), so
        the full row is assembled with the same weighted-sum merges as any
        split window.  Stages 1–5 of every batch run in one einsum; only
        the (inherently sequential) merge chain loops.
        """
        gtok = cp.global_tokens
        num_b = cp.global_batches.shape[0]
        if num_b == 0 or len(gtok) == 0:
            return
        heads_n, _, d = qh.shape
        num_g = len(gtok)
        # Batches are evaluated bucketed by their true length: padding a
        # reduction axis with zeros changes numpy's pairwise-summation
        # tree (exact for the zeros, but regrouping the real terms), so
        # each batch must reduce over exactly its own keys to stay
        # bit-identical to the reference engine.
        out = np.empty((heads_n, num_b, num_g, d), dtype=np.float64)
        w = np.empty((heads_n, num_b, num_g), dtype=np.float64)
        has = np.empty((heads_n, num_b, num_g), dtype=bool)
        lengths = cp.global_batch_valid.sum(axis=1)
        for length in np.unique(lengths):
            idx = np.flatnonzero(lengths == length)
            keys = cp.global_batches[idx, :length]  # (nb, L) no padding
            qb = np.broadcast_to(
                qh[:, gtok, :][:, None, :, :], (heads_n, len(idx), num_g, d)
            )
            kb = np.broadcast_to(
                kh[:, keys, :][:, :, None, :, :], (heads_n, len(idx), num_g, length, d)
            )
            vb = np.broadcast_to(
                vh[:, keys, :][:, :, None, :, :], (heads_n, len(idx), num_g, length, d)
            )
            if lane_lens is None:
                valid = np.True_
            else:
                # (H, nb, 1, L): mask keys in each lane's padded tail.
                valid = (keys[None] < lane_lens[:, None, None])[:, :, None, :]
            o, ww, hh = self._stages_batched(qb, kb, vb, valid, scale)
            out[:, idx] = o
            w[:, idx] = ww
            has[:, idx] = hh
        if heads_n * num_g == 1:
            # Serving-path fast path: one lane, one global token.  The
            # general chain below spends most of its time building (1, 1)
            # boolean masks and fancy indices per batch; the scalar chain
            # performs the identical merges on fixed (1, d)/(1,) slices.
            self._merge_global_chain_scalar(cp, out, w, has, acc)
            return
        # The batches form a private merge chain: no other part ever
        # touches a global query row, so run the chain on local (H, G)
        # state and commit it to the accumulator once at the end.
        heads, _, num_g, d = out.shape
        out_run = np.zeros((heads, num_g, d), dtype=np.float64)
        w_run = np.zeros((heads, num_g), dtype=np.float64)
        has_run = np.zeros((heads, num_g), dtype=bool)
        parts_run = np.zeros((heads, num_g), dtype=np.int64)
        for b in range(num_b):
            hb = has[:, b]
            if not hb.any():
                continue
            stale = hb & has_run
            fresh = hb & ~has_run
            if fresh.any():
                out_run[fresh] = out[:, b][fresh]
                w_run[fresh] = w[:, b][fresh]
                has_run |= fresh
            if stale.any():
                merged, total = self.module.merge(
                    out_run[stale], w_run[stale], out[:, b][stale], w[:, b][stale]
                )
                out_run[stale] = merged
                w_run[stale] = total
                acc.merges += int(stale.sum())
            parts_run[hb] += 1
        h_idx, g_idx = np.nonzero(has_run)
        acc.out[h_idx, gtok[g_idx]] = out_run[has_run]
        acc.w[h_idx, gtok[g_idx]] = w_run[has_run]
        acc.has[h_idx, gtok[g_idx]] = True
        acc.parts[:, gtok] += parts_run

    def _merge_global_chain_scalar(self, cp, out, w, has, acc) -> None:
        """Global-row merge chain for the ``lanes * globals == 1`` case.

        Operates on the same ``(1, d)`` / ``(1,)`` operand shapes the
        general chain passes to :meth:`WeightedSumModule.merge` (so the
        arithmetic is bit-identical), but replaces the per-batch mask and
        fancy-index bookkeeping with direct scalar control flow.
        """
        o2 = out[0, :, 0]  # (num_b, d)
        w2 = w[0, :, 0]  # (num_b,)
        h2 = has[0, :, 0]  # (num_b,)
        out_run: Optional[np.ndarray] = None
        w_run: Optional[np.ndarray] = None
        parts = 0
        merges = 0
        for bi in range(o2.shape[0]):
            if not h2[bi]:
                continue
            if out_run is None:
                out_run = o2[bi : bi + 1]
                w_run = w2[bi : bi + 1]
            else:
                out_run, w_run = self.module.merge(
                    out_run, w_run, o2[bi : bi + 1], w2[bi : bi + 1]
                )
                merges += 1
            parts += 1
        g = cp.global_tokens[0]
        if out_run is not None:
            acc.out[0, g] = out_run[0]
            acc.w[0, g] = w_run[0]
            acc.has[0, g] = True
        acc.parts[0, g] += parts
        acc.merges += merges

    # ------------------------------------------------------------------
    # Legacy per-head, per-pass path (reference implementation)
    # ------------------------------------------------------------------
    def _run_head(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: float,
        valid_len: Optional[int] = None,
    ) -> Tuple[np.ndarray, _Accumulator]:
        plan = self.plan
        n, d = q.shape
        qq = self.datapath.quantize_input(q)
        kq = self.datapath.quantize_input(k)
        vq = self.datapath.quantize_input(v)
        acc = _Accumulator(n, d, self.module)
        gset = plan.global_set
        gmask = np.zeros(n, dtype=bool)
        if gset:
            gmask[list(gset)] = True

        for tp in plan.passes:
            self._run_window_pass(tp, qq, kq, vq, scale, acc, gset, gmask, valid_len)
        if plan.global_tokens:
            self._run_global_column(qq, kq, vq, scale, acc, gmask)
            self._run_global_rows(qq, kq, vq, scale, acc, valid_len)

        covered = acc.has if valid_len is None else acc.has | (np.arange(n) >= valid_len)
        if not covered.all():
            missing = np.flatnonzero(~covered)
            raise EngineError(
                f"queries {missing[:8].tolist()}... received no attention part; "
                "the pattern leaves them without keys"
            )
        return acc.out, acc

    # ------------------------------------------------------------------
    def _attend_block(
        self,
        qb: np.ndarray,  # (rows, d) quantised queries
        key_ids: np.ndarray,  # (rows, cols) with -1 = masked
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stages 1–5 for one block; returns (out, w, row_has_work)."""
        valid = key_ids >= 0
        safe = np.where(valid, key_ids, 0)
        kb = kq[safe]  # (rows, cols, d)
        vb = vq[safe]
        s = np.einsum("rd,rcd->rc", qb, kb) * scale
        e = np.where(valid, self.datapath.exp(s), 0.0)
        w = e.sum(axis=1)
        has = w > 0
        out = np.zeros((qb.shape[0], vb.shape[2]), dtype=np.float64)
        if has.any():
            inv = self.datapath.recip(w[has])
            probs = self.datapath.quantize_prob(e[has] * inv[:, None])
            out[has] = self.datapath.quantize_output(
                np.einsum("rc,rcd->rd", probs, vb[has])
            )
        return out, w, has

    def _run_window_pass(
        self,
        tp: TilePass,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
        gset,
        gmask: np.ndarray,
        valid_len: Optional[int] = None,
    ) -> None:
        n = self.plan.n
        q_ids = tp.query_ids()
        key_ids = tp.key_ids(n, exclude=gset)
        if valid_len is not None:
            key_ids = np.where(key_ids >= valid_len, -1, key_ids)
        # Global queries are produced by the global PE row; drop their rows.
        keep = ~gmask[q_ids]
        if not keep.any():
            return
        q_ids = q_ids[keep]
        key_ids = key_ids[keep]
        out, w, has = self._attend_block(qq[q_ids], key_ids, kq, vq, scale)
        if has.any():
            acc.add_part(q_ids[has], out[has], w[has])

    def _run_global_column(
        self,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
        gmask: np.ndarray,
    ) -> None:
        """Global PE column: every non-global query attends the global keys."""
        rows = np.flatnonzero(~gmask)
        if len(rows) == 0:
            return
        gtok = np.asarray(self.plan.global_tokens, dtype=np.int64)
        key_ids = np.broadcast_to(gtok, (len(rows), len(gtok)))
        out, w, has = self._attend_block(qq[rows], key_ids, kq, vq, scale)
        if has.any():
            acc.add_part(rows[has], out[has], w[has])

    def _run_global_rows(
        self,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
        valid_len: Optional[int] = None,
    ) -> None:
        """Global PE row: each global query attends the full sequence.

        Consumes the same memoized ``global_row_schedule`` as the compiled
        path and the micro-simulator, so merge orders cannot drift.
        """
        schedule = self.plan.global_row_schedule()
        rows = np.asarray(self.plan.global_tokens, dtype=np.int64)
        if len(rows) == 0:
            return
        for batch in schedule:
            if valid_len is not None:
                batch = np.where(np.asarray(batch) >= valid_len, -1, batch)
            key_ids = np.broadcast_to(batch, (len(rows), len(batch)))
            out, w, has = self._attend_block(qq[rows], key_ids, kq, vq, scale)
            if has.any():
                acc.add_part(rows[has], out[has], w[has])
