"""Vectorised functional engine: execute a tile plan on real data.

This engine computes the attention output a SALO instance would produce —
same pass structure, same fixed-point arithmetic, same PWL exp, same
reciprocal unit and weighted-sum merges — but evaluates each pass with
vectorised numpy instead of per-cycle PE state, so it scales to full
workloads.  The cycle-accurate micro-simulator
(:mod:`repro.accelerator.systolic`) is bit-identical to this engine on its
(small) parameter space; see ``tests/accelerator/test_cross_engine.py``.

Semantics of a pass (rows = query block, columns = packed band segments):

1. ``S = Q_blk @ K_cols^T * scale`` (masked cells excluded),
2. ``E = exp(S)`` via the PWL unit, masked cells contribute 0,
3. ``W = rowsum(E)``, ``inv = recip(W)``,
4. ``S' = E * inv`` quantised to the probability format,
5. ``out = S' @ V_cols`` quantised to the output format,

then the weighted-sum module merges ``(out, W)`` into the query's running
output.  Global-token queries are produced by the global PE row (their
full row is computed in ``pe_cols``-wide chunks, merged the same way);
global-token keys are produced once per query by the global PE column and
excluded from window passes to avoid double counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..scheduler.plan import ExecutionPlan, TilePass
from .datapath import Datapath
from .weighted_sum import WeightedSumModule

__all__ = ["FunctionalEngine", "FunctionalResult", "EngineError"]


class EngineError(RuntimeError):
    """Raised when a plan cannot be executed on the given data."""


@dataclass
class FunctionalResult:
    """Output of a functional run."""

    output: np.ndarray  # (n, heads * head_dim)
    merges: int  # weighted-sum merge operations performed
    parts: np.ndarray  # (heads, n) number of partial outputs per query

    @property
    def n(self) -> int:
        return self.output.shape[0]


class _Accumulator:
    """Running (output, weight) state for one head, merged part by part."""

    def __init__(
        self, n: int, d: int, module: WeightedSumModule
    ) -> None:
        self.out = np.zeros((n, d), dtype=np.float64)
        self.w = np.zeros(n, dtype=np.float64)
        self.has = np.zeros(n, dtype=bool)
        self.parts = np.zeros(n, dtype=np.int64)
        self.module = module
        self.merges = 0

    def add_part(self, rows: np.ndarray, out: np.ndarray, w: np.ndarray) -> None:
        """Merge a partial output for the given query rows."""
        rows = np.asarray(rows, dtype=np.int64)
        fresh = ~self.has[rows]
        if fresh.any():
            fr = rows[fresh]
            self.out[fr] = out[fresh]
            self.w[fr] = w[fresh]
            self.has[fr] = True
        stale = ~fresh
        if stale.any():
            sr = rows[stale]
            merged, total = self.module.merge(
                self.out[sr], self.w[sr], out[stale], w[stale]
            )
            self.out[sr] = merged
            self.w[sr] = total
            self.merges += int(stale.sum())
        self.parts[rows] += 1


class FunctionalEngine:
    """Executes :class:`ExecutionPlan` instances on (Q, K, V) data."""

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan
        self.datapath = Datapath(plan.config.numerics)
        self.module = WeightedSumModule(self.datapath)

    # ------------------------------------------------------------------
    def run(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: Optional[float] = None,
    ) -> FunctionalResult:
        """Compute the sparse attention output for ``(n, heads*head_dim)`` inputs."""
        plan = self.plan
        q = np.asarray(q, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        n, hidden = q.shape
        if n != plan.n:
            raise EngineError(f"plan is for n={plan.n}, data has n={n}")
        if hidden != plan.heads * plan.head_dim:
            raise EngineError(
                f"hidden size {hidden} != heads*head_dim = {plan.heads * plan.head_dim}"
            )
        if k.shape != q.shape or v.shape != q.shape:
            raise EngineError("q, k, v must share shape (n, hidden)")
        if scale is None:
            scale = 1.0 / np.sqrt(plan.head_dim)

        out = np.empty((n, hidden), dtype=np.float64)
        merges = 0
        parts = np.zeros((plan.heads, n), dtype=np.int64)
        for h in range(plan.heads):
            sl = slice(h * plan.head_dim, (h + 1) * plan.head_dim)
            head_out, acc = self._run_head(q[:, sl], k[:, sl], v[:, sl], scale)
            out[:, sl] = head_out
            merges += acc.merges
            parts[h] = acc.parts
        return FunctionalResult(output=out, merges=merges, parts=parts)

    # ------------------------------------------------------------------
    def _run_head(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, scale: float
    ) -> Tuple[np.ndarray, _Accumulator]:
        plan = self.plan
        n, d = q.shape
        qq = self.datapath.quantize_input(q)
        kq = self.datapath.quantize_input(k)
        vq = self.datapath.quantize_input(v)
        acc = _Accumulator(n, d, self.module)
        gset = plan.global_set

        for tp in plan.passes:
            self._run_window_pass(tp, qq, kq, vq, scale, acc, gset)
        if plan.global_tokens:
            self._run_global_column(qq, kq, vq, scale, acc, gset)
            self._run_global_rows(qq, kq, vq, scale, acc)

        if not acc.has.all():
            missing = np.flatnonzero(~acc.has)
            raise EngineError(
                f"queries {missing[:8].tolist()}... received no attention part; "
                "the pattern leaves them without keys"
            )
        return acc.out, acc

    # ------------------------------------------------------------------
    def _attend_block(
        self,
        qb: np.ndarray,  # (rows, d) quantised queries
        key_ids: np.ndarray,  # (rows, cols) with -1 = masked
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stages 1–5 for one block; returns (out, w, row_has_work)."""
        valid = key_ids >= 0
        safe = np.where(valid, key_ids, 0)
        kb = kq[safe]  # (rows, cols, d)
        vb = vq[safe]
        s = np.einsum("rd,rcd->rc", qb, kb) * scale
        e = np.where(valid, self.datapath.exp(s), 0.0)
        w = e.sum(axis=1)
        has = w > 0
        out = np.zeros((qb.shape[0], vb.shape[2]), dtype=np.float64)
        if has.any():
            inv = self.datapath.recip(w[has])
            probs = self.datapath.quantize_prob(e[has] * inv[:, None])
            out[has] = self.datapath.quantize_output(
                np.einsum("rc,rcd->rd", probs, vb[has])
            )
        return out, w, has

    def _run_window_pass(
        self,
        tp: TilePass,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
        gset,
    ) -> None:
        n = self.plan.n
        q_ids = tp.query_ids()
        key_ids = tp.key_ids(n, exclude=gset)
        # Global queries are produced by the global PE row; drop their rows.
        keep = np.array([qi not in gset for qi in q_ids])
        if not keep.any():
            return
        q_ids = q_ids[keep]
        key_ids = key_ids[keep]
        out, w, has = self._attend_block(qq[q_ids], key_ids, kq, vq, scale)
        if has.any():
            acc.add_part(q_ids[has], out[has], w[has])

    def _run_global_column(
        self,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
        gset,
    ) -> None:
        """Global PE column: every non-global query attends the global keys."""
        n = self.plan.n
        rows = np.array([i for i in range(n) if i not in gset], dtype=np.int64)
        if len(rows) == 0:
            return
        gtok = np.asarray(self.plan.global_tokens, dtype=np.int64)
        key_ids = np.broadcast_to(gtok, (len(rows), len(gtok)))
        out, w, has = self._attend_block(qq[rows], key_ids, kq, vq, scale)
        if has.any():
            acc.add_part(rows[has], out[has], w[has])

    def _run_global_rows(
        self,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        acc: _Accumulator,
    ) -> None:
        """Global PE row: each global query attends the full sequence.

        The row piggybacks on the key streams of the window passes
        (Section 5.2): each pass contributes its not-yet-seen keys as one
        partial-softmax batch (``ExecutionPlan.global_row_schedule``), so
        the full row is assembled with the same weighted-sum merges as any
        split window.
        """
        schedule = self.plan.global_row_schedule()
        rows = np.asarray(self.plan.global_tokens, dtype=np.int64)
        if len(rows) == 0:
            return
        for batch in schedule:
            key_ids = np.broadcast_to(batch, (len(rows), len(batch)))
            out, w, has = self._attend_block(qq[rows], key_ids, kq, vq, scale)
            if has.any():
                acc.add_part(rows[has], out[has], w[has])
