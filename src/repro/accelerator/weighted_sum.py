"""Weighted-sum module: split-window renormalisation (Sections 4.2 & 5.3).

Window splitting divides a query's window across several passes; each pass
``k`` yields a locally-normalised output ``output_i^k`` and the weight
``W_k = sum_{j in T_k} exp(S_ij)``.  The weighted-sum module merges a new
partial output into the running one with

    ``output = W1/(W1+W2) * output^1 + W2/(W1+W2) * output^2``      (Eq. 2)

using two multipliers and an adder per PE row.  The normalised weights are
produced with the same reciprocal unit as the softmax denominator; the
complementary weight is formed as ``1 - a`` so the pair always sums to one
even after quantisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from .datapath import Datapath

__all__ = ["WeightedSumModule"]


@dataclass
class WeightedSumModule:
    """Hardware-faithful pairwise merge of partial attention outputs."""

    datapath: Datapath
    _scratch: dict = field(init=False, repr=False, default_factory=dict)

    def merge(
        self,
        out1: np.ndarray,
        w1: np.ndarray,
        out2: np.ndarray,
        w2: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge ``(out1, w1)`` with ``(out2, w2)``; returns ``(out, w1+w2)``.

        ``out*`` have shape ``(rows, d)``; ``w*`` shape ``(rows,)``.  The
        merge is associative up to quantisation error, so any number of
        window splits can be chained (Appendix A).
        """
        w1 = np.asarray(w1, dtype=np.float64)
        w2 = np.asarray(w2, dtype=np.float64)
        total = w1 + w2
        if np.any(total <= 0):
            raise ValueError("merge weights must be positive")
        a1 = self.datapath.quantize_prob(w1 * self.datapath.recip(total))
        a1 = np.clip(a1, 0.0, 1.0)
        a2 = 1.0 - a1
        merged = self.datapath.quantize_output(
            a1[..., None] * np.asarray(out1) + a2[..., None] * np.asarray(out2)
        )
        return merged, total

    def merge_into(
        self,
        out1: np.ndarray,
        w1: np.ndarray,
        out2: np.ndarray,
        w2: np.ndarray,
    ) -> None:
        """In-place Eq. 2 merge of ``(out2, w2)`` into the running pair.

        Elementwise-identical to :meth:`merge` for any array shapes
        (``w*`` broadcast over a trailing feature axis of ``out*``), but
        writes the merged output into ``out1`` and the summed weight into
        ``w1`` with zero steady-state allocation.  Strictly positive
        weights are the caller's contract (chain merges are gated on the
        ``has`` mask, so both sides carry weight).  Not thread-safe.
        """
        dp = self.datapath
        key = (w1.shape, out1.shape)
        sc = self._scratch.get(key)
        if sc is None:
            sc = (
                np.empty(w1.shape, dtype=np.float64),  # total
                np.empty(w1.shape, dtype=np.float64),  # a1
                np.empty(w1.shape, dtype=np.float64),  # a2
                np.empty(out1.shape, dtype=np.float64),  # a2 * out2
            )
            self._scratch[key] = sc
        total, a1, a2, tmp = sc
        np.add(w1, w2, out=total)
        dp.recip_into(total, a1)
        np.multiply(a1, w1, out=a1)
        dp.quantize_prob_into(a1, a1, bounded=True)
        np.clip(a1, 0.0, 1.0, out=a1)
        np.subtract(1.0, a1, out=a2)
        of = dp.output_format
        if of is not None:
            # Fold the output quantiser's power-of-two scale into the
            # row coefficients: scaling by an exact power of two
            # commutes with fp rounding (no over/underflow at these
            # magnitudes), so ``rint((a1*2^k)*o1 + (a2*2^k)*o2) * res``
            # is bit-identical to quantising the unscaled combination —
            # one fewer full-size pass.  Saturation is skipped as in
            # quantize_output_into(bounded=True): a convex combination
            # of in-range values stays in range.
            lift = float(1 << of.frac_bits)
            np.multiply(a1, lift, out=a1)
            np.multiply(a2, lift, out=a2)
            np.multiply(out1, a1[..., None], out=out1)
            np.multiply(out2, a2[..., None], out=tmp)
            np.add(out1, tmp, out=out1)
            np.rint(out1, out=out1)
            np.multiply(out1, of.resolution, out=out1)
        else:
            np.multiply(out1, a1[..., None], out=out1)
            np.multiply(out2, a2[..., None], out=tmp)
            np.add(out1, tmp, out=out1)
        np.copyto(w1, total)
