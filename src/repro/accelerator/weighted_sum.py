"""Weighted-sum module: split-window renormalisation (Sections 4.2 & 5.3).

Window splitting divides a query's window across several passes; each pass
``k`` yields a locally-normalised output ``output_i^k`` and the weight
``W_k = sum_{j in T_k} exp(S_ij)``.  The weighted-sum module merges a new
partial output into the running one with

    ``output = W1/(W1+W2) * output^1 + W2/(W1+W2) * output^2``      (Eq. 2)

using two multipliers and an adder per PE row.  The normalised weights are
produced with the same reciprocal unit as the softmax denominator; the
complementary weight is formed as ``1 - a`` so the pair always sums to one
even after quantisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .datapath import Datapath

__all__ = ["WeightedSumModule"]


@dataclass
class WeightedSumModule:
    """Hardware-faithful pairwise merge of partial attention outputs."""

    datapath: Datapath

    def merge(
        self,
        out1: np.ndarray,
        w1: np.ndarray,
        out2: np.ndarray,
        w2: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge ``(out1, w1)`` with ``(out2, w2)``; returns ``(out, w1+w2)``.

        ``out*`` have shape ``(rows, d)``; ``w*`` shape ``(rows,)``.  The
        merge is associative up to quantisation error, so any number of
        window splits can be chained (Appendix A).
        """
        w1 = np.asarray(w1, dtype=np.float64)
        w2 = np.asarray(w2, dtype=np.float64)
        total = w1 + w2
        if np.any(total <= 0):
            raise ValueError("merge weights must be positive")
        a1 = self.datapath.quantize_prob(w1 * self.datapath.recip(total))
        a1 = np.clip(a1, 0.0, 1.0)
        a2 = 1.0 - a1
        merged = self.datapath.quantize_output(
            a1[..., None] * np.asarray(out1) + a2[..., None] * np.asarray(out2)
        )
        return merged, total
