"""Shared numeric datapath of the PE (quantisers + exp + reciprocal).

Both execution engines (the vectorised functional engine and the
cycle-accurate micro-simulator) evaluate attention with exactly the same
arithmetic, bundled here so they stay bit-identical by construction.  The
datapath is configured by :class:`NumericsConfig`; the ``exact()`` variant
replaces every quantiser with the identity and the approximate units with
exact math, which tests use to separate scheduling error (must be ~0) from
arithmetic error (bounded, characterised).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import NumericsConfig
from .exp_unit import PWLExpUnit
from .fixed_point import FixedPointFormat
from .recip_unit import ReciprocalUnit

__all__ = ["Datapath"]


class Datapath:
    """Quantisation and special-function behaviour of one PE."""

    def __init__(self, numerics: NumericsConfig) -> None:
        self.numerics = numerics
        self.input_format: Optional[FixedPointFormat] = None
        self.output_format: Optional[FixedPointFormat] = None
        self.prob_format: Optional[FixedPointFormat] = None
        if numerics.quantize:
            self.input_format = FixedPointFormat(
                numerics.input_bits, numerics.input_frac_bits, signed=True
            )
            self.output_format = FixedPointFormat(
                numerics.output_bits, numerics.output_frac_bits, signed=True
            )
            self.prob_format = FixedPointFormat(
                numerics.output_bits, numerics.prob_frac_bits, signed=False
            )
        self._exp_unit = (
            PWLExpUnit.from_numerics(numerics) if numerics.exp_mode == "pwl" else None
        )
        self._recip_unit = (
            ReciprocalUnit.from_numerics(numerics) if numerics.recip_mode == "lut" else None
        )

    # ------------------------------------------------------------------
    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Quantise Q/K/V operands (Q8.4 by default)."""
        if self.input_format is None:
            return np.asarray(x, dtype=np.float64)
        return self.input_format.quantize(x)

    def exp(self, s: np.ndarray) -> np.ndarray:
        """Stage-2 exponential."""
        if self._exp_unit is None:
            return np.exp(np.asarray(s, dtype=np.float64))
        return self._exp_unit(s)

    def recip(self, w: np.ndarray) -> np.ndarray:
        """Stage-3 reciprocal of the exponential sum."""
        if self._recip_unit is None:
            return 1.0 / np.asarray(w, dtype=np.float64)
        return self._recip_unit(w)

    def quantize_prob(self, p: np.ndarray) -> np.ndarray:
        """Stage-4 normalised attention weights (``S'``)."""
        if self.prob_format is None:
            return np.asarray(p, dtype=np.float64)
        return self.prob_format.quantize(p)

    def quantize_output(self, o: np.ndarray) -> np.ndarray:
        """Stage-5 output elements (16-bit by default)."""
        if self.output_format is None:
            return np.asarray(o, dtype=np.float64)
        return self.output_format.quantize(o)

    @property
    def exp_unit(self) -> Optional[PWLExpUnit]:
        return self._exp_unit

    @property
    def recip_unit(self) -> Optional[ReciprocalUnit]:
        return self._recip_unit
