"""Shared numeric datapath of the PE (quantisers + exp + reciprocal).

Both execution engines (the vectorised functional engine and the
cycle-accurate micro-simulator) evaluate attention with exactly the same
arithmetic, bundled here so they stay bit-identical by construction.  The
datapath is configured by :class:`NumericsConfig`; the ``exact()`` variant
replaces every quantiser with the identity and the approximate units with
exact math, which tests use to separate scheduling error (must be ~0) from
arithmetic error (bounded, characterised).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import NumericsConfig
from .exp_unit import PWLExpUnit
from .fixed_point import FixedPointFormat
from .recip_unit import ReciprocalUnit

__all__ = ["Datapath"]


class Datapath:
    """Quantisation and special-function behaviour of one PE."""

    def __init__(self, numerics: NumericsConfig) -> None:
        self.numerics = numerics
        self.input_format: Optional[FixedPointFormat] = None
        self.output_format: Optional[FixedPointFormat] = None
        self.prob_format: Optional[FixedPointFormat] = None
        if numerics.quantize:
            self.input_format = FixedPointFormat(
                numerics.input_bits, numerics.input_frac_bits, signed=True
            )
            self.output_format = FixedPointFormat(
                numerics.output_bits, numerics.output_frac_bits, signed=True
            )
            self.prob_format = FixedPointFormat(
                numerics.output_bits, numerics.prob_frac_bits, signed=False
            )
        self._exp_unit = (
            PWLExpUnit.from_numerics(numerics) if numerics.exp_mode == "pwl" else None
        )
        self._recip_unit = (
            ReciprocalUnit.from_numerics(numerics) if numerics.recip_mode == "lut" else None
        )

    # ------------------------------------------------------------------
    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Quantise Q/K/V operands (Q8.4 by default)."""
        if self.input_format is None:
            return np.asarray(x, dtype=np.float64)
        return self.input_format.quantize(x)

    def exp(self, s: np.ndarray) -> np.ndarray:
        """Stage-2 exponential."""
        if self._exp_unit is None:
            return np.exp(np.asarray(s, dtype=np.float64))
        return self._exp_unit(s)

    def recip(self, w: np.ndarray) -> np.ndarray:
        """Stage-3 reciprocal of the exponential sum."""
        if self._recip_unit is None:
            return 1.0 / np.asarray(w, dtype=np.float64)
        return self._recip_unit(w)

    def quantize_prob(self, p: np.ndarray) -> np.ndarray:
        """Stage-4 normalised attention weights (``S'``)."""
        if self.prob_format is None:
            return np.asarray(p, dtype=np.float64)
        return self.prob_format.quantize(p)

    def quantize_output(self, o: np.ndarray) -> np.ndarray:
        """Stage-5 output elements (16-bit by default)."""
        if self.output_format is None:
            return np.asarray(o, dtype=np.float64)
        return self.output_format.quantize(o)

    # ------------------------------------------------------------------
    # Allocation-free variants used by the tiled compiled hot path.  Each
    # performs the same elementwise operation as its namesake above,
    # writing through ``out`` (which may alias the input).
    def quantize_input_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        if self.input_format is None:
            if x is not out:
                np.copyto(out, x)
            return out
        return self.input_format.quantize_into(x, out)

    def exp_into(self, s: np.ndarray, out: np.ndarray) -> np.ndarray:
        if self._exp_unit is None:
            np.exp(s, out=out)
            return out
        return self._exp_unit.into(s, out)

    def recip_into(self, w: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Reciprocal without the positivity check — caller's contract."""
        if self._recip_unit is None:
            np.divide(1.0, w, out=out)
            return out
        return self._recip_unit.into(w, out)

    def quantize_prob_into(
        self, p: np.ndarray, out: np.ndarray, bounded: bool = False
    ) -> np.ndarray:
        """``bounded=True`` asserts ``0 <= p < 2`` (a normalised weight:
        ``p = e * recip(w)`` with ``e <= w`` and the shift-normalised LUT
        reciprocal satisfying ``w * recip(w) < 2``), letting the
        saturation pass be skipped when the format has the headroom."""
        if self.prob_format is None:
            if p is not out:
                np.copyto(out, p)
            return out
        saturate = not (bounded and self.prob_format.max_value >= 2.0)
        return self.prob_format.quantize_into(p, out, saturate=saturate)

    def quantize_output_into(
        self, o: np.ndarray, out: np.ndarray, bounded: bool = False
    ) -> np.ndarray:
        """``bounded=True`` asserts the caller has proven ``o`` in range —
        either a convex combination of already-quantised outputs (an
        Eq. 2 merge cannot leave the representable range) or a stage-5
        probability-weighted sum whose row-sum bound fits the format
        (see ``FunctionalEngine._stage5_bounded``) — so the saturation
        pass is skipped."""
        if self.output_format is None:
            if o is not out:
                np.copyto(out, o)
            return out
        return self.output_format.quantize_into(o, out, saturate=not bounded)

    # ------------------------------------------------------------------
    def supports_exact_gemm(self, head_dim: int, max_cols: int) -> bool:
        """True when stage-1/5 dot products are *exact* in float64.

        On a quantised datapath every operand is an integer multiple of a
        fixed power of two, so any partial sum of a dot product is an
        integer in those units; as long as the largest possible partial
        fits in the 53-bit double mantissa, no summation order ever
        rounds, and a BLAS ``matmul`` (arbitrary order, FMA or not) is
        bit-identical to the ordered einsum it replaces.

        * stage 1 (``q @ k``): ``2 * (input_bits - 1)`` bits per product
          plus ``ceil(log2 head_dim)`` for the sum;
        * stage 5 (``S' @ v``): probability codes are unsigned
          ``output_bits`` wide, value codes ``input_bits - 1``, plus
          ``ceil(log2 max_cols)`` for the sum (zero padding in the
          scattered rectangle adds exactly nothing).

        Exact (unquantised) datapaths get ``False`` — arbitrary floats
        make summation order observable, so those keep the einsum path.
        """
        if self.input_format is None or self.prob_format is None or self.output_format is None:
            return False
        cols = max(1, int(max_cols))
        dim = max(1, int(head_dim))
        log2 = lambda v: int(np.ceil(np.log2(v))) if v > 1 else 0  # noqa: E731
        stage1 = 2 * (self.input_format.total_bits - 1) + log2(dim)
        stage5 = (
            self.prob_format.total_bits + (self.input_format.total_bits - 1) + log2(cols)
        )
        return stage1 <= 53 and stage5 <= 53

    @property
    def exp_unit(self) -> Optional[PWLExpUnit]:
        return self._exp_unit

    @property
    def recip_unit(self) -> Optional[ReciprocalUnit]:
        return self._recip_unit
