"""Cycle-accurate micro-simulator of the SALO spatial accelerator.

This simulator advances explicit per-cycle PE state through the 5-stage
datapath of Figure 6 for every tile pass of an execution plan, including
the global PE row/column and the weighted-sum module.  It is the ground
truth for the analytic timing model (``timing.pass_cycles`` must match its
cycle count exactly — property-tested) and for the vectorised functional
engine (bit-identical outputs — cross-checked in tests).

Microarchitectural interpretation
---------------------------------
Stage 1 runs "in a typical output stationary systolic manner" (paper
Section 5.1): query elements enter each row from the left with the classic
one-cycle-per-row/column skew, so PE ``(r, c)`` executes MAC ``m`` of its
dot product at cycle ``m + r + c`` and the stage completes in
``d + rows + cols - 2`` cycles.  The diagonal k/v connections of Section
5.2 determine *which* key vector a PE sees (``key = query + band offset``,
constant along anti-diagonals) and eliminate SRAM re-reads — they do not
change the stage-1 schedule.  Stage 3 ripples the exp-sum left→right (one
add per cycle), the reciprocal unit and broadcast bus add fixed latencies,
and stage 5 streams value elements with the same column skew while partial
sums flow right, so output element ``m`` exits at cycle ``m + cols - 1``.

Because this simulator is pure Python over per-cycle PE state it is meant
for small configurations (tests use arrays up to ~16x16 with head
dimensions up to ~32); full workloads run on the functional engine +
analytic timing model instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..scheduler.plan import ExecutionPlan, TilePass
from .datapath import Datapath
from .functional import EngineError, FunctionalResult
from .pe import PE
from .timing import PassTiming, pass_cycles
from .weighted_sum import WeightedSumModule

__all__ = ["SystolicSimulator", "SimulationResult", "SystolicEngine"]


@dataclass
class SimulationResult:
    """Micro-simulation output for one head... or a whole run."""

    output: np.ndarray
    cycles: int
    pass_traces: List[PassTiming]
    merges: int


class _MergeState:
    """Output-buffer accumulators driven by the weighted-sum module."""

    def __init__(self, n: int, d: int, module: WeightedSumModule) -> None:
        self.out = np.zeros((n, d), dtype=np.float64)
        self.w = np.zeros(n, dtype=np.float64)
        self.has = np.zeros(n, dtype=bool)
        self.module = module
        self.merges = 0

    def add(self, qi: int, out_vec: np.ndarray, w: float) -> None:
        if not self.has[qi]:
            self.out[qi] = out_vec
            self.w[qi] = w
            self.has[qi] = True
            return
        merged, total = self.module.merge(
            self.out[qi][None, :], np.array([self.w[qi]]), out_vec[None, :], np.array([w])
        )
        self.out[qi] = merged[0]
        self.w[qi] = total[0]
        self.merges += 1


class SystolicEngine:
    """Plan-level engine interface over the cycle-accurate simulator.

    Adapts :class:`SystolicSimulator` to the execution-engine contract
    :class:`~repro.core.salo.SALO` drives (``run(q, k, v, scale,
    valid_lens)`` returning a
    :class:`~repro.accelerator.functional.FunctionalResult`), so the
    micro-simulator is selectable as the ``"systolic"`` engine backend.
    The simulator advances explicit per-cycle PE state, so the contract
    is narrower than the functional engine's: one sequence at a time (no
    batch axis) and no padded-tail masking — both rejected up front with
    an :class:`EngineError` rather than computed wrongly.  ``parts`` is
    ``None`` in the result: the micro-simulator does not track per-query
    part counts.
    """

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan
        self.simulator = SystolicSimulator(plan)

    def run(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: Optional[float] = None,
        valid_lens: Optional[np.ndarray] = None,
    ) -> FunctionalResult:
        q = np.asarray(q, dtype=np.float64)
        if q.ndim == 3:
            raise EngineError(
                "the systolic engine executes one sequence at a time; "
                "it does not support a batch axis"
            )
        if valid_lens is not None:
            raise EngineError(
                "the systolic engine does not support valid_lens (padded tails)"
            )
        result = self.simulator.run(q, k, v, scale=scale)
        return FunctionalResult(output=result.output, merges=result.merges, parts=None)


class SystolicSimulator:
    """Executes an :class:`ExecutionPlan` cycle by cycle."""

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan
        self.datapath = Datapath(plan.config.numerics)
        self.module = WeightedSumModule(self.datapath)
        rows, cols = plan.config.pe_rows, plan.config.pe_cols
        self.pes = [[PE(self.datapath) for _ in range(cols)] for _ in range(rows)]

    # ------------------------------------------------------------------
    def run(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: Optional[float] = None,
    ) -> SimulationResult:
        """Simulate the full plan on ``(n, heads*head_dim)`` inputs."""
        plan = self.plan
        q = np.asarray(q, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        n, hidden = q.shape
        if n != plan.n or hidden != plan.heads * plan.head_dim:
            raise EngineError("input shape does not match plan")
        if scale is None:
            scale = 1.0 / np.sqrt(plan.head_dim)

        out = np.empty((n, hidden), dtype=np.float64)
        cycles = 0
        traces: List[PassTiming] = []
        merges = 0
        for h in range(plan.heads):
            sl = slice(h * plan.head_dim, (h + 1) * plan.head_dim)
            o, c, t, m = self._run_head(q[:, sl], k[:, sl], v[:, sl], scale)
            out[:, sl] = o
            cycles += c
            merges += m
            if h == 0:
                traces = t
        return SimulationResult(output=out, cycles=cycles, pass_traces=traces, merges=merges)

    # ------------------------------------------------------------------
    def _run_head(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, scale: float
    ) -> Tuple[np.ndarray, int, List[PassTiming], int]:
        plan = self.plan
        n, d = q.shape
        qq = self.datapath.quantize_input(q)
        kq = self.datapath.quantize_input(k)
        vq = self.datapath.quantize_input(v)
        gset = plan.global_set
        state = _MergeState(n, d, self.module)
        gstate = _MergeState(n, d, self.module)  # global-row accumulators

        cycles = 0
        traces: List[PassTiming] = []

        for tp in plan.passes:
            trace = self._simulate_pass(tp, qq, kq, vq, scale, state, gset)
            cycles += trace.total
            traces.append(trace)

        if plan.global_tokens:
            # The global PE row consumes each pass's fresh keys
            # concurrently with the array (no extra cycles); only the
            # trailing cleanup batches — keys never streamed by a window
            # pass — cost dedicated global-only passes.  Both engines
            # consume the same memoized schedule, so the partial-softmax
            # merge order cannot drift between them.
            schedule = plan.global_row_schedule()
            first_cleanup = len(schedule) - plan.global_row_cleanup_batches
            for i, batch in enumerate(schedule):
                self._global_row_batch(batch, qq, kq, vq, scale, gstate)
                if i >= first_cleanup and plan.global_only_passes:
                    pt = pass_cycles(
                        plan.config, max(1, plan.config.global_rows), plan.config.pe_cols, d
                    )
                    cycles += pt.total
            self._global_column(qq, kq, vq, scale, state, gset)
            for g in plan.global_tokens:
                if gstate.has[g]:
                    state.out[g] = gstate.out[g]
                    state.w[g] = gstate.w[g]
                    state.has[g] = True

        if not state.has.all():
            missing = np.flatnonzero(~state.has)
            raise EngineError(f"queries {missing[:8].tolist()} received no attention part")
        return state.out, cycles, traces, state.merges + gstate.merges

    # ------------------------------------------------------------------
    def _simulate_pass(
        self,
        tp: TilePass,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        state: _MergeState,
        gset,
    ) -> PassTiming:
        plan = self.plan
        config = plan.config
        n = plan.n
        d = qq.shape[1]
        R, C = tp.rows_used, tp.cols_used
        q_ids = tp.query_ids()
        key_ids = tp.key_ids(n, exclude=gset)
        valid = key_ids >= 0
        safe = np.where(valid, key_ids, 0)

        pes = self.pes
        for r in range(R):
            for c in range(C):
                pes[r][c].reset(bool(valid[r, c]))

        # ---- Stage 1: output-stationary QK^T, schedule m + r + c -------
        stage1 = d + R + C - 2
        for t in range(stage1):
            for r in range(R):
                for c in range(C):
                    m = t - r - c
                    if 0 <= m < d:
                        pes[r][c].mac_qk(qq[q_ids[r], m], kq[safe[r, c], m])
        for r in range(R):
            for c in range(C):
                pes[r][c].apply_scale(scale)

        # ---- Stage 2: PWL exponential ----------------------------------
        for r in range(R):
            for c in range(C):
                pes[r][c].compute_exp()
        stage2 = config.stage2_exp_cycles

        # ---- Stage 3: ripple sum, reciprocal, broadcast ----------------
        w_row = np.zeros(R, dtype=np.float64)
        for r in range(R):
            partial = 0.0
            for c in range(C):  # one column hop per cycle
                partial = pes[r][c].add_to_sum(partial)
            w_row[r] = partial
        stage3 = C + config.stage3_inv_cycles + config.stage3_bcast_cycles
        inv_row = np.zeros(R, dtype=np.float64)
        rows_active = w_row > 0
        if rows_active.any():
            inv_row[rows_active] = self.datapath.recip(w_row[rows_active])

        # ---- Stage 4: normalise ----------------------------------------
        for r in range(R):
            if rows_active[r]:
                for c in range(C):
                    pes[r][c].normalize(inv_row[r])
        stage4 = 1

        # ---- Stage 5: weight-stationary S'V ----------------------------
        stage5 = d + C - 1
        psum = np.zeros((R, d), dtype=np.float64)
        for t in range(stage5):
            for r in range(R):
                for c in range(C):
                    m = t - c
                    if 0 <= m < d and rows_active[r]:
                        psum[r, m] = pes[r][c].mac_sv(vq[safe[r, c], m], psum[r, m])

        # ---- Weighted-sum merge ----------------------------------------
        for r in range(R):
            qi = int(q_ids[r])
            if qi in gset or not rows_active[r]:
                continue
            out_vec = self.datapath.quantize_output(psum[r])
            state.add(qi, out_vec, float(w_row[r]))

        return PassTiming(
            stage1=stage1,
            stage2=stage2,
            stage3=stage3,
            stage4=stage4,
            stage5=stage5,
            weighted_sum=config.weighted_sum_latency,
        )

    # ------------------------------------------------------------------
    def _global_row_batch(
        self,
        batch: np.ndarray,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        gstate: _MergeState,
    ) -> None:
        """Global PE row: one partial-softmax batch per key stream."""
        d = qq.shape[1]
        for g in self.plan.global_tokens:
            pe_row = [PE(self.datapath) for _ in range(len(batch))]
            for c, j in enumerate(batch):
                pe_row[c].reset(True)
                for m in range(d):
                    pe_row[c].mac_qk(qq[g, m], kq[j, m])
                pe_row[c].apply_scale(scale)
                pe_row[c].compute_exp()
            w = 0.0
            for c in range(len(batch)):
                w = pe_row[c].add_to_sum(w)
            if w <= 0:
                continue
            inv = float(self.datapath.recip(np.array([w]))[0])
            for c in range(len(batch)):
                pe_row[c].normalize(inv)
            out = np.zeros(d, dtype=np.float64)
            for m in range(d):
                psum = 0.0
                for c, j in enumerate(batch):
                    psum = pe_row[c].mac_sv(vq[j, m], psum)
                out[m] = psum
            gstate.add(int(g), self.datapath.quantize_output(out), w)

    def _global_column(
        self,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        scale: float,
        state: _MergeState,
        gset,
    ) -> None:
        """Global PE column: every non-global query attends the global keys."""
        n, d = qq.shape
        gtok = list(self.plan.global_tokens)
        for qi in range(n):
            if qi in gset:
                continue
            col = [PE(self.datapath) for _ in gtok]
            for c, j in enumerate(gtok):
                col[c].reset(True)
                for m in range(d):
                    col[c].mac_qk(qq[qi, m], kq[j, m])
                col[c].apply_scale(scale)
                col[c].compute_exp()
            w = 0.0
            for c in range(len(gtok)):
                w = col[c].add_to_sum(w)
            if w <= 0:
                continue
            inv = float(self.datapath.recip(np.array([w]))[0])
            for c in range(len(gtok)):
                col[c].normalize(inv)
            out = np.zeros(d, dtype=np.float64)
            for m in range(d):
                psum = 0.0
                for c, j in enumerate(gtok):
                    psum = col[c].mac_sv(vq[j, m], psum)
                out[m] = psum
            state.add(qi, self.datapath.quantize_output(out), w)
