"""On-chip buffer and memory-traffic model (Table 1 buffers, Section 4.1).

SALO's dataflow exists to minimise memory traffic: within a pass, the
diagonal k/v connections let ``rows + cols - 1`` distinct key vectors serve
``rows x cols`` PE cells, and across the window chunks of one query block
the query vectors stay resident in the query buffer.  This module counts:

* **DRAM traffic** — bytes fetched per operand, assuming the pass order
  emitted by the scheduler (query block outer, column group inner) and no
  inter-block reuse (successive blocks shift the window by a full block,
  so their key sets are disjoint for aligned chunks);
* **SRAM traffic** — one buffer read per streamed element (systolic
  forwarding makes every further use register-to-register) and one output
  write per produced element, plus weighted-sum read-modify-write;
* the **naive** key/value traffic a reuse-free mapping would need
  (``rows x cols`` vector fetches per pass), used by the dataflow ablation
  (DESIGN.md A3).

Buffer capacity checks verify the per-pass working set fits the Table 1
buffer sizes (with double buffering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.config import HardwareConfig
from ..scheduler.plan import ExecutionPlan

__all__ = ["TrafficResult", "BufferFit", "plan_traffic", "check_buffer_fit"]


@dataclass
class TrafficResult:
    """Byte counts for one plan execution (all heads)."""

    dram_bytes: Dict[str, int]
    sram_reads: int
    sram_writes: int
    naive_kv_dram_bytes: int

    @property
    def dram_total(self) -> int:
        return sum(self.dram_bytes.values())

    @property
    def kv_reuse_factor(self) -> float:
        """Naive / actual key+value DRAM traffic (the dataflow's win)."""
        actual = self.dram_bytes["k"] + self.dram_bytes["v"]
        return self.naive_kv_dram_bytes / actual if actual else 1.0


@dataclass
class BufferFit:
    """Worst-case per-pass working set vs buffer capacity."""

    query_bytes: int
    key_bytes: int
    value_bytes: int
    output_bytes: int
    fits: bool
    violations: List[str] = field(default_factory=list)


def _pass_key_stats(plan: ExecutionPlan) -> Tuple[int, int, int, int]:
    """(distinct kv vectors, naive kv cells, q vector loads, out vectors).

    Counted over all structural passes for a single head; read from the
    compiled plan's precomputed aggregates.
    """
    cp = plan.compiled()
    return cp.distinct_kv_vectors, cp.total_valid_cells, cp.q_loads, cp.out_vectors


def plan_traffic(plan: ExecutionPlan) -> TrafficResult:
    """Memory traffic of executing ``plan`` across all heads."""
    numerics = plan.config.numerics
    in_bytes = max(1, numerics.input_bits // 8)
    out_bytes = max(1, numerics.output_bits // 8)
    d = plan.head_dim
    h = plan.heads

    distinct_kv, naive_cells, q_loads, out_vectors = _pass_key_stats(plan)

    q_dram = q_loads * d * in_bytes * h
    k_dram = distinct_kv * d * in_bytes * h
    v_dram = distinct_kv * d * in_bytes * h
    # Final outputs leave once per query; intermediate partials stay in the
    # output buffer (32 KB holds a full query block of 16-bit partials).
    o_dram = plan.n * d * out_bytes * h

    # SRAM: stream each operand element once per pass; outputs are written
    # per pass and re-read by the weighted-sum merge.
    sram_reads = (q_loads + 2 * distinct_kv) * d * in_bytes * h + out_vectors * d * out_bytes * h
    sram_writes = (q_loads + 2 * distinct_kv) * d * in_bytes * h + 2 * out_vectors * d * out_bytes * h

    naive_kv = 2 * naive_cells * d * in_bytes * h
    return TrafficResult(
        dram_bytes={"q": q_dram, "k": k_dram, "v": v_dram, "out": o_dram},
        sram_reads=sram_reads,
        sram_writes=sram_writes,
        naive_kv_dram_bytes=naive_kv,
    )


def check_buffer_fit(plan: ExecutionPlan, double_buffered: bool = True) -> BufferFit:
    """Verify the worst-case pass working set fits the configured buffers."""
    config = plan.config
    numerics = config.numerics
    in_bytes = max(1, numerics.input_bits // 8)
    out_bytes = max(1, numerics.output_bits // 8)
    d = plan.head_dim
    factor = 2 if double_buffered else 1

    cp = plan.compiled()
    if cp.num_passes:
        rows = int(cp.rows_used.max())
        kv_vectors = int((cp.rows_used + cp.cols_used - 1).max())
    else:
        rows = config.pe_rows
        kv_vectors = config.pe_rows + config.pe_cols - 1
    q_need = rows * d * in_bytes * factor
    kv_need = kv_vectors * d * in_bytes * factor
    out_need = rows * d * out_bytes * factor

    violations = []
    if q_need > config.query_buffer_bytes:
        violations.append(f"query buffer: need {q_need} B > {config.query_buffer_bytes} B")
    if kv_need > config.key_buffer_bytes:
        violations.append(f"key buffer: need {kv_need} B > {config.key_buffer_bytes} B")
    if kv_need > config.value_buffer_bytes:
        violations.append(f"value buffer: need {kv_need} B > {config.value_buffer_bytes} B")
    if out_need > config.output_buffer_bytes:
        violations.append(f"output buffer: need {out_need} B > {config.output_buffer_bytes} B")
    return BufferFit(
        query_bytes=q_need,
        key_bytes=kv_need,
        value_bytes=kv_need,
        output_bytes=out_need,
        fits=not violations,
        violations=violations,
    )
