"""Energy model of the SALO accelerator (45 nm, Figure 7b substrate).

Event-based accounting: every MAC, LUT lookup, SRAM byte and DRAM byte is
charged a per-event energy from a 45 nm table (Horowitz-style numbers),
plus area-proportional leakage integrated over the run time.  The default
constants are calibrated so the model reproduces the paper's synthesised
power figure (Table 1: 532.66 mW at full utilisation, 1 GHz) on the
Longformer workload; the calibration is checked by
``tests/accelerator/test_energy.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.config import HardwareConfig
from ..scheduler.plan import ExecutionPlan
from .buffers import plan_traffic
from .timing import plan_timing

__all__ = ["EnergyTable", "EnergyResult", "plan_energy"]


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies in picojoules (45 nm class)."""

    mac_8bit_pj: float = 0.30  # stage-1 8-bit multiply + wide accumulate
    mac_16bit_pj: float = 0.55  # stage-5 16-bit multiply + accumulate
    exp_pj: float = 0.45  # LUT read + one PWL MAC
    add_pj: float = 0.10  # stage-3 ripple add / stage-4 multiply charged as mac16
    recip_pj: float = 1.20  # shift-normalise + LUT + denormalise
    weighted_sum_pj: float = 1.10  # two multiplies + one add per element
    sram_per_byte_pj: float = 1.20
    dram_per_byte_pj: float = 20.0
    leakage_w_per_mm2: float = 0.030

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class EnergyResult:
    """Energy breakdown for one plan execution (all heads)."""

    breakdown_j: Dict[str, float]
    seconds: float

    @property
    def total_j(self) -> float:
        return sum(self.breakdown_j.values())

    @property
    def on_chip_j(self) -> float:
        return self.total_j - self.breakdown_j.get("dram", 0.0)

    @property
    def average_power_w(self) -> float:
        return self.total_j / self.seconds if self.seconds else 0.0

    @property
    def on_chip_power_w(self) -> float:
        """Average power excluding DRAM — comparable to Table 1's 532.66 mW."""
        return self.on_chip_j / self.seconds if self.seconds else 0.0


def plan_energy(
    plan: ExecutionPlan,
    table: EnergyTable = EnergyTable(),
    area_mm2: float = None,
) -> EnergyResult:
    """Integrate the energy of executing ``plan``.

    ``area_mm2`` feeds the leakage term; if omitted it is taken from the
    synthesis model of the plan's hardware config.
    """
    timing = plan_timing(plan)
    traffic = plan_traffic(plan)
    if area_mm2 is None:
        from .synthesis import synthesize

        area_mm2 = synthesize(plan.config).area_mm2

    d = plan.head_dim
    h = plan.heads
    cp = plan.compiled()
    cells = cp.total_valid_cells * h
    rows_outputs = int(cp.rows_used.sum()) * h
    ng = len(plan.global_tokens)
    global_cells = (ng * plan.n + ng * max(0, plan.n - ng)) * h

    total_cells = cells + global_cells
    pj = 1.0e-12
    breakdown = {
        # Stage 1: d 8-bit MACs per attended cell.
        "stage1_qk": total_cells * d * table.mac_8bit_pj * pj,
        # Stage 2: one PWL exp per cell.
        "stage2_exp": total_cells * table.exp_pj * pj,
        # Stage 3: one add per cell plus one reciprocal per produced row.
        "stage3_sum": (total_cells * table.add_pj + rows_outputs * table.recip_pj) * pj,
        # Stage 4: one 16-bit multiply per cell.
        "stage4_norm": total_cells * table.mac_16bit_pj * pj,
        # Stage 5: d 16-bit MACs per attended cell.
        "stage5_sv": total_cells * d * table.mac_16bit_pj * pj,
        # Weighted-sum merges: d elements per produced partial row.
        "weighted_sum": rows_outputs * d * table.weighted_sum_pj * pj,
        "sram": (traffic.sram_reads + traffic.sram_writes) * table.sram_per_byte_pj * pj,
        "dram": traffic.dram_total * table.dram_per_byte_pj * pj,
        "leakage": table.leakage_w_per_mm2 * area_mm2 * timing.seconds,
    }
    return EnergyResult(breakdown_j=breakdown, seconds=timing.seconds)
