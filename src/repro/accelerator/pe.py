"""Behavioural model of a single SALO processing element (Figure 5, right).

Each PE owns one fixed-point MAC, an accumulation register ``Reg_acc``,
and access to the shared PWL-exp LUTs.  The same PE design is instantiated
in the PE array, the global PE row and the global PE column.  The five
stages of Figure 6 map onto the methods below; the micro-simulator drives
them cycle by cycle.
"""

from __future__ import annotations

from typing import Optional

from .datapath import Datapath

__all__ = ["PE"]


class PE:
    """One processing element.

    State registers:

    * ``acc`` — ``Reg_acc``: QK^T partial sum (stage 1), then exp (stage
      2), then the normalised probability ``S'`` (stage 4);
    * ``holds_valid`` — whether this PE's (query, key) cell participates
      (clipped/masked cells contribute nothing).
    """

    __slots__ = ("datapath", "acc", "holds_valid")

    def __init__(self, datapath: Datapath) -> None:
        self.datapath = datapath
        self.acc = 0.0
        self.holds_valid = False

    def reset(self, valid: bool) -> None:
        """Start a new pass."""
        self.acc = 0.0
        self.holds_valid = valid

    # ------------------------------------------------------------------
    # Stage 1: output-stationary MAC
    # ------------------------------------------------------------------
    def mac_qk(self, q_elem: float, k_elem: float) -> None:
        """Accumulate one q x k product (operands already quantised)."""
        if self.holds_valid:
            self.acc += q_elem * k_elem

    def apply_scale(self, scale: float) -> None:
        """Score scaling by ``1/sqrt(d)`` before the exponential."""
        if self.holds_valid:
            self.acc *= scale

    # ------------------------------------------------------------------
    # Stage 2: piece-wise linear exponential
    # ------------------------------------------------------------------
    def compute_exp(self) -> None:
        if self.holds_valid:
            self.acc = float(self.datapath.exp(self.acc))
        else:
            self.acc = 0.0

    # ------------------------------------------------------------------
    # Stage 3: row accumulation (exp sum ripples left -> right)
    # ------------------------------------------------------------------
    def add_to_sum(self, partial: float) -> float:
        """Add this PE's exp to the rippling partial sum."""
        return partial + self.acc

    # ------------------------------------------------------------------
    # Stage 4: normalise with the broadcast inverse
    # ------------------------------------------------------------------
    def normalize(self, inv: float) -> None:
        if self.holds_valid:
            self.acc = float(self.datapath.quantize_prob(self.acc * inv))
        else:
            self.acc = 0.0

    # ------------------------------------------------------------------
    # Stage 5: weight-stationary S'V MAC
    # ------------------------------------------------------------------
    def mac_sv(self, v_elem: float, psum_in: float) -> float:
        """Multiply the held probability by a value element, add to psum."""
        return psum_in + self.acc * v_elem
