"""Analytic cycle model of the spatial accelerator (Figure 6 datapath).

The model assigns each tile pass the latency of its five stages:

* **Stage 1** — output-stationary systolic :math:`QK^T`:
  ``head_dim + rows + cols - 2`` cycles (stream of ``head_dim`` operand
  pairs plus array fill/drain skew).
* **Stage 2** — PWL exponential: fixed ``stage2_exp_cycles`` (LUT read +
  one MAC), all PEs in parallel.
* **Stage 3** — row accumulation of ``exp`` values rippling left→right
  (``cols`` cycles), reciprocal (``stage3_inv_cycles``), broadcast back
  (``stage3_bcast_cycles``).
* **Stage 4** — one multiply per PE: 1 cycle.
* **Stage 5** — weight-stationary :math:`S'V`: ``head_dim + cols - 1``
  cycles, with the weighted-sum merge pipelined behind the output stream
  (one ``weighted_sum_latency`` tail).

Passes execute back to back; the global PE row/column work concurrently
with the array (Section 5.2) and add no cycles as long as the global-token
bound holds — which the scheduler enforces.

The formula is validated cycle-for-cycle against the micro-simulator in
``tests/accelerator/test_systolic.py`` (property-based over the
micro-sim's parameter space) and then extrapolated to full workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.config import HardwareConfig
from ..scheduler.plan import ExecutionPlan

__all__ = ["PassTiming", "TimingResult", "pass_cycles", "plan_timing"]


@dataclass(frozen=True)
class PassTiming:
    """Per-stage cycle breakdown of one tile pass."""

    stage1: int
    stage2: int
    stage3: int
    stage4: int
    stage5: int
    weighted_sum: int

    @property
    def total(self) -> int:
        return (
            self.stage1
            + self.stage2
            + self.stage3
            + self.stage4
            + self.stage5
            + self.weighted_sum
        )


def pass_cycles(config: HardwareConfig, rows_used: int, cols_used: int, head_dim: int) -> PassTiming:
    """Cycle count of one pass on ``rows_used x cols_used`` active PEs."""
    if rows_used < 1 or cols_used < 1 or head_dim < 1:
        raise ValueError("rows_used, cols_used and head_dim must be >= 1")
    return PassTiming(
        stage1=head_dim + rows_used + cols_used - 2,
        stage2=config.stage2_exp_cycles,
        stage3=cols_used + config.stage3_inv_cycles + config.stage3_bcast_cycles,
        stage4=1,
        stage5=head_dim + cols_used - 1,
        weighted_sum=config.weighted_sum_latency,
    )


@dataclass
class TimingResult:
    """Latency and work accounting for a full plan execution."""

    cycles: int
    seconds: float
    num_passes: int
    heads: int
    utilization: float
    window_macs: int
    global_macs: int
    stage_cycles: Dict[str, int]

    @property
    def total_macs(self) -> int:
        return self.window_macs + self.global_macs

    @property
    def effective_macs_per_cycle(self) -> float:
        return self.total_macs / self.cycles if self.cycles else 0.0


def plan_timing(plan: ExecutionPlan, pipelined: bool = False) -> TimingResult:
    """Total latency of a plan across all heads.

    ``pipelined=True`` models a double-buffered accumulator per PE (one
    extra register), which lets stage 1 of pass ``p+1`` overlap stages
    2–5 of pass ``p``: the issue interval becomes
    ``max(stage1, stage2..5 + weighted_sum)`` and the last pass drains its
    back half.  This is an *extension* beyond the published design (see
    the pipelining ablation); the paper's evaluation uses the sequential
    model.
    """
    config = plan.config
    d = plan.head_dim
    cp = plan.compiled()
    # Per-pass stage cycles, vectorised over the compiled rows/cols
    # aggregates (same formulas as pass_cycles).
    rows = cp.rows_used
    cols = cp.cols_used
    num = cp.num_passes
    stage1 = d + rows + cols - 2
    stage2 = np.full(num, config.stage2_exp_cycles, dtype=np.int64)
    stage3 = cols + config.stage3_inv_cycles + config.stage3_bcast_cycles
    stage4 = np.ones(num, dtype=np.int64)
    stage5 = d + cols - 1
    weighted = np.full(num, config.weighted_sum_latency, dtype=np.int64)
    totals = stage1 + stage2 + stage3 + stage4 + stage5 + weighted
    stage_totals = {
        "stage1": int(stage1.sum()),
        "stage2": int(stage2.sum()),
        "stage3": int(stage3.sum()),
        "stage4": int(stage4.sum()),
        "stage5": int(stage5.sum()),
        "weighted_sum": int(weighted.sum()),
    }
    if pipelined:
        tails = stage2 + stage3 + stage4 + stage5 + weighted
        cycles_one_head = int(np.maximum(stage1, tails).sum())
        if num:
            # Drain: the final pass still finishes its back half after
            # its stage-1 slot, minus the overlap already charged.
            cycles_one_head += max(0, int(totals[-1]) - max(int(stage1[-1]), int(tails[-1])))
    else:
        cycles_one_head = int(totals.sum())
    valid_cells = cp.total_valid_cells
    total_cells = num * config.pe_rows * config.pe_cols
    # Pure-global patterns run dedicated streaming passes.
    if plan.global_only_passes:
        pt = pass_cycles(config, max(1, config.global_rows), config.pe_cols, d)
        cycles_one_head += pt.total * plan.global_only_passes

    ng = len(plan.global_tokens)
    n = plan.n
    window_macs = 2 * valid_cells * d * plan.heads
    global_macs = plan.heads * 2 * d * (ng * n + ng * max(0, n - ng))

    cycles = cycles_one_head * plan.heads
    for key in stage_totals:
        stage_totals[key] *= plan.heads
    return TimingResult(
        cycles=cycles,
        seconds=cycles * config.cycle_time_s(),
        num_passes=plan.num_total_passes,
        heads=plan.heads,
        utilization=valid_cells / total_cells if total_cells else 0.0,
        window_macs=window_macs,
        global_macs=global_macs,
        stage_cycles=stage_totals,
    )
