"""Execution-trace export: pass-by-pass accounting of a plan.

Produces a per-pass table (cycle budget, stage breakdown, occupancy, key
reuse) that can be dumped to CSV/JSON for inspection — the artefact a
performance engineer would diff when the scheduler or the timing model
changes.  Used by tests and handy for debugging scheduling decisions.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass
from typing import Dict, List

from ..scheduler.plan import ExecutionPlan
from .timing import pass_cycles

__all__ = ["PassTraceRow", "trace_plan", "trace_to_csv", "trace_to_json"]


@dataclass(frozen=True)
class PassTraceRow:
    """One tile pass of a plan, fully accounted (single head)."""

    index: int
    query_residue: int
    dilation: int
    first_query: int
    rows_used: int
    cols_used: int
    segments: int
    valid_cells: int
    occupancy: float
    distinct_keys: int
    key_reuse: float
    cycles: int
    stage1: int
    stage3: int
    stage5: int


def trace_plan(plan: ExecutionPlan) -> List[PassTraceRow]:
    """Per-pass trace of a plan (head-independent, single-head cycles)."""
    config = plan.config
    cp = plan.compiled()
    rows: List[PassTraceRow] = []
    array_cells = config.pe_rows * config.pe_cols
    for idx, tp in enumerate(plan.passes):
        valid_cells = int(cp.valid_counts[idx])
        distinct = int(cp.distinct_per_pass[idx]) if valid_cells else 0
        pt = pass_cycles(config, tp.rows_used, tp.cols_used, plan.head_dim)
        rows.append(
            PassTraceRow(
                index=idx,
                query_residue=tp.query_residue,
                dilation=tp.dilation,
                first_query=int(tp.query_ids()[0]),
                rows_used=tp.rows_used,
                cols_used=tp.cols_used,
                segments=len(tp.segments),
                valid_cells=valid_cells,
                occupancy=valid_cells / array_cells,
                distinct_keys=distinct,
                key_reuse=valid_cells / distinct if distinct else 0.0,
                cycles=pt.total,
                stage1=pt.stage1,
                stage3=pt.stage3,
                stage5=pt.stage5,
            )
        )
    return rows


def trace_to_csv(trace: List[PassTraceRow]) -> str:
    """Render a trace as CSV text."""
    if not trace:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(asdict(trace[0]).keys()))
    writer.writeheader()
    for row in trace:
        writer.writerow(asdict(row))
    return buf.getvalue()


def trace_to_json(trace: List[PassTraceRow]) -> str:
    """Render a trace as a JSON array."""
    return json.dumps([asdict(row) for row in trace], indent=1)
