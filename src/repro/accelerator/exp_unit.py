"""Piece-wise linear exponential unit (paper Section 5.1, stage 2).

SALO follows Softermax: the exponential of the attention score is
approximated with a piece-wise linear function evaluated on the PE's MAC
unit, with two lookup tables holding the slope and y-intercept of each
segment.

Two styles are modelled:

* ``pow2`` (default, the Softermax approach): range reduction through the
  identity ``exp(x) = 2^(x·log2 e) = 2^i · 2^f`` with ``i = floor(t)`` and
  ``f = t - i ∈ [0, 1)``.  The LUTs linearise ``2^f`` over a single
  octave, where slopes (``[ln2, 2·ln2]``) and intercepts (``[0, 1]``) are
  small and uniformly representable, and the ``2^i`` factor is a pure
  shift — the ``Shift`` box of Figure 5.  The approximation is monotone
  and its relative error is uniform across the clamp range.
* ``direct``: uniform chords of ``exp`` straight over the clamp range —
  simpler control logic but orders of magnitude worse at the range edges;
  kept for the A4 ablation.

Inputs are clamped to ``[lo, hi]``; scores below ``lo`` contribute ≈0 and
scores above ``hi`` saturate, so the range must be sized to the calibrated
score distribution, exactly as on the real chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..core.config import NumericsConfig
from .fixed_point import FixedPointFormat

__all__ = ["PWLExpUnit", "max_pwl_error", "max_pwl_relative_error"]

_LOG2E = np.log2(np.e)


@dataclass
class PWLExpUnit:
    """LUT-driven piece-wise linear approximation of ``exp``.

    Parameters
    ----------
    segments:
        Number of PWL segments (LUT entries per table).
    lo, hi:
        Input clamp range.
    coeff_format:
        Quantisation of the slope/intercept tables.
    out_format:
        Quantisation of the exponential output.
    style:
        ``'pow2'`` (octave range reduction + shift) or ``'direct'``
        (uniform chords over ``[lo, hi]``).
    """

    segments: int
    lo: float
    hi: float
    coeff_format: FixedPointFormat
    out_format: FixedPointFormat
    style: str = "pow2"
    slopes: np.ndarray = field(init=False, repr=False)
    intercepts: np.ndarray = field(init=False, repr=False)
    _scratch: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.segments < 2:
            raise ValueError("need at least 2 segments")
        if self.hi <= self.lo:
            raise ValueError("empty input range")
        if self.style not in ("pow2", "direct"):
            raise ValueError(f"style must be 'pow2' or 'direct', got {self.style!r}")
        if self.style == "pow2":
            edges = np.linspace(0.0, 1.0, self.segments + 1)
            y0, y1 = 2.0**edges[:-1], 2.0**edges[1:]
        else:
            edges = np.linspace(self.lo, self.hi, self.segments + 1)
            y0, y1 = np.exp(edges[:-1]), np.exp(edges[1:])
        x0, x1 = edges[:-1], edges[1:]
        slopes = (y1 - y0) / (x1 - x0)
        intercepts = y0 - slopes * x0
        self.slopes = self.coeff_format.quantize(slopes)
        self.intercepts = self.coeff_format.quantize(intercepts)
        # Identity-pass facts, proven once from the quantised tables so
        # the hot path can skip provably no-op passes (see ``into``):
        # with all-nonneg tables and a nonneg multiplier (pow2's
        # ``f in [0, 1)``; direct's ``s`` can be negative) the 0-floor
        # is a no-op, and when the largest reachable output code fits
        # the format the saturation clip is one too.
        self._nonneg = self.style == "pow2" and bool(
            (self.slopes >= 0).all() and (self.intercepts >= 0).all()
        )
        self._sat_free = False
        if self.style == "pow2":
            peak = float(np.max(self.slopes + self.intercepts))
            imax = int(np.floor(self.hi * _LOG2E)) + 1
            bound = np.ldexp(peak, imax)
            of = self.out_format
            self._sat_free = (
                self._nonneg
                and bound * (1 << of.frac_bits) <= of.max_code
            )

    @classmethod
    def from_numerics(cls, numerics: NumericsConfig) -> "PWLExpUnit":
        """Build the unit described by a :class:`NumericsConfig`."""
        style = getattr(numerics, "exp_pwl_style", "pow2")
        if style == "pow2":
            # Octave coefficients live in [0, 1.4]; use deep fractions.
            coeff = FixedPointFormat(numerics.output_bits, numerics.output_bits - 2, signed=True)
        else:
            # Direct chords need integer range up to ~exp(hi)·|lo|.
            coeff = FixedPointFormat(
                numerics.output_bits, numerics.exp_coeff_frac_bits, signed=True
            )
        out = FixedPointFormat(numerics.output_bits, numerics.exp_frac_bits, signed=False)
        return cls(
            segments=numerics.exp_lut_segments,
            lo=numerics.exp_input_lo,
            hi=numerics.exp_input_hi,
            coeff_format=coeff,
            out_format=out,
            style=style,
        )

    # ------------------------------------------------------------------
    def segment_index(self, s: np.ndarray) -> np.ndarray:
        """LUT index for each (clamped) input."""
        s = np.clip(np.asarray(s, dtype=np.float64), self.lo, self.hi)
        if self.style == "pow2":
            t = s * _LOG2E
            frac = t - np.floor(t)
            idx = np.floor(frac * self.segments).astype(np.int64)
        else:
            width = (self.hi - self.lo) / self.segments
            idx = np.floor((s - self.lo) / width).astype(np.int64)
        return np.clip(idx, 0, self.segments - 1)

    def __call__(self, s: np.ndarray) -> np.ndarray:
        """Approximate ``exp(s)`` with quantised PWL arithmetic."""
        s = np.clip(np.asarray(s, dtype=np.float64), self.lo, self.hi)
        if self.style == "pow2":
            t = s * _LOG2E
            i = np.floor(t)
            f = t - i
            idx = np.clip((f * self.segments).astype(np.int64), 0, self.segments - 1)
            y = self.slopes[idx] * f + self.intercepts[idx]
            # ldexp is the Shift box of Figure 5: an exact scale by 2^i,
            # bit-identical to multiplying by np.power(2.0, i) but without
            # the transcendental pow call.  int32: ldexp has no int64
            # loop on LLP64 platforms, and |i| is tiny (s is clamped).
            y = np.ldexp(y, i.astype(np.int32))
        else:
            idx = self.segment_index(s)
            y = self.slopes[idx] * s + self.intercepts[idx]
        return self.out_format.quantize(np.maximum(y, 0.0))

    def into(self, s: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Allocation-free :meth:`__call__` (after the first call per shape).

        Evaluates the PWL exponential elementwise through ``out`` and a
        per-shape internal scratch set; ``s`` may alias ``out``.  Every
        operation is the same elementwise op as in :meth:`__call__`, so
        the result is bit-identical.  Not thread-safe (the scratch is
        shared per unit instance, like the engine that owns it).
        """
        sc = self._scratch.get(s.shape)
        if sc is None:
            sc = (
                np.empty(s.shape, dtype=np.float64),  # t (then f)
                np.empty(s.shape, dtype=np.float64),  # i / chord product
                np.empty(s.shape, dtype=np.int64),  # LUT index
                np.empty(s.shape, dtype=np.int32),  # shift exponent
                np.empty(s.shape, dtype=np.float64),  # intercept lookup
            )
            self._scratch[s.shape] = sc
        t, i, idx, i32, lut = sc
        np.clip(s, self.lo, self.hi, out=t)
        if self.style == "pow2":
            np.multiply(t, _LOG2E, out=t)
            np.floor(t, out=i)
            np.subtract(t, i, out=t)  # t = f in [0, 1)
            np.multiply(t, self.segments, out=lut)
            # The index clip of __call__ is an identity here: f < 1
            # strictly (even at 1 - ulp, f * segments rounds below
            # segments), so the truncating cast already lands the index
            # in [0, segments - 1]; NaN casts to INT64_MIN, which the
            # clip-mode takes send to 0 exactly like the explicit clip.
            np.copyto(idx, lut, casting="unsafe")  # C cast == .astype(int64)
            np.take(self.slopes, idx, out=out, mode="clip")
            np.multiply(out, t, out=out)
            np.take(self.intercepts, idx, out=lut, mode="clip")
            np.add(out, lut, out=out)
            np.copyto(i32, i, casting="unsafe")
            np.ldexp(out, i32, out=out)
        else:
            width = (self.hi - self.lo) / self.segments
            np.subtract(t, self.lo, out=i)
            np.divide(i, width, out=i)
            np.floor(i, out=i)
            np.copyto(idx, i, casting="unsafe")
            np.clip(idx, 0, self.segments - 1, out=idx)
            np.take(self.slopes, idx, out=out, mode="clip")
            np.multiply(out, t, out=out)
            np.take(self.intercepts, idx, out=lut, mode="clip")
            np.add(out, lut, out=out)
        if not self._nonneg:
            np.maximum(out, 0.0, out=out)
        return self.out_format.quantize_into(out, out, saturate=not self._sat_free)

    def lut_size_bits(self) -> int:
        """Total LUT storage (two tables of ``segments`` coefficients)."""
        return 2 * self.segments * self.coeff_format.total_bits


def max_pwl_error(unit: PWLExpUnit, samples: int = 4096) -> float:
    """Maximum absolute error of the unit against ``exp`` over its range."""
    xs = np.linspace(unit.lo, unit.hi, samples)
    return float(np.max(np.abs(unit(xs) - np.exp(xs))))


def max_pwl_relative_error(
    unit: PWLExpUnit, lo: float = -4.0, hi: float = None, samples: int = 4096
) -> float:
    """Maximum relative error over the softmax-dominant score range."""
    hi = unit.hi if hi is None else hi
    xs = np.linspace(lo, hi, samples)
    ref = np.exp(xs)
    return float(np.max(np.abs(unit(xs) - ref) / ref))
