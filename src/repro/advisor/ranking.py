"""Deterministic candidate ranking: cheapest feasible config first.

The order encodes the provisioning objective, not a single score:

1. **Feasible before infeasible** — a config that misses an SLO at
   nominal load is not a smaller win, it is not an answer.
2. Among feasible candidates, **fewest workers** — workers are the cost
   axis, and a feasible 2-worker config beats a feasible 4-worker one
   regardless of throughput to spare.
3. Then **headroom** (descending): at equal cost, prefer the config
   that survives the most load growth before its binding constraint
   fails.
4. Then **nominal goodput** (descending) and the worst nominal margin
   (descending) as quality tiebreaks.
5. Finally the **run id** (ascending) — a content hash, so the complete
   order is reproducible across processes even between exact ties.

Infeasible candidates sort by how close they are to feasible (worst
nominal margin, descending) then by workers — the top infeasible row is
the natural "what to relax" suggestion when nothing passes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .search import CandidateResult

__all__ = ["rank", "sort_key"]


def sort_key(result: CandidateResult) -> Tuple:
    feasible = result.feasible
    worst = result.nominal.worst.margin
    if feasible:
        return (
            0,
            result.candidate.workers,
            -(result.headroom or 0.0),
            -result.goodput_rps,
            -worst,
            result.run_id,
        )
    return (1, -worst, result.candidate.workers, -result.goodput_rps, result.run_id)


def rank(results: Sequence[CandidateResult]) -> List[CandidateResult]:
    return sorted(results, key=sort_key)
