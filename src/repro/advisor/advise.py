"""The advisor's entry point: traffic spec in, ranked advice out.

:func:`advise` is the one call the CLI, the registered experiment and
the tests share: evaluate every candidate in the search space against
the traffic spec (feasibility scan included), rank them, then run the
component-ablation matrix over the top ``ablate_top`` ranked candidates.
Everything downstream — the rendered table, the JSON view, the exported
decision pack — is a projection of the returned :class:`Advice`.

Determinism contract (pinned by ``tests/advisor/``): the same traffic
spec and search space produce byte-identical ranked order, run ids and
rendered output across invocations and processes.  Nothing in the
pipeline reads a wall clock or an unseeded RNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.base import stable_run_id
from .ablation import ComponentScore, ablate
from .ranking import rank
from .search import (
    DEFAULT_SCALE_GRID,
    CandidateResult,
    RunCache,
    SearchSpace,
    evaluate,
)
from .spec import TrafficSpec

__all__ = ["Advice", "advise"]


@dataclass(frozen=True)
class Advice:
    """Everything one ``advise`` call decided, in rank order."""

    traffic: TrafficSpec
    space: SearchSpace
    ranked: Tuple[CandidateResult, ...]
    ablations: Dict[str, Tuple[ComponentScore, ...]]  # run_id -> matrix
    scale_grid: Tuple[float, ...]

    @property
    def winner(self) -> CandidateResult:
        return self.ranked[0]

    @property
    def advice_id(self) -> str:
        """Content hash of the whole decision's inputs."""
        return stable_run_id(
            "advice",
            {
                "traffic": self.traffic.to_dict(),
                "space": self.space.to_dict(),
                "scale_grid": list(self.scale_grid),
            },
        )

    def ablation_of(self, result: CandidateResult) -> Tuple[ComponentScore, ...]:
        return self.ablations.get(result.run_id, ())

    def to_dict(self) -> dict:
        return {
            "advice_id": self.advice_id,
            "traffic": self.traffic.to_dict(),
            "traffic_id": self.traffic.traffic_id,
            "space": self.space.to_dict(),
            "scale_grid": list(self.scale_grid),
            "winner_run_id": self.winner.run_id,
            "ranked": [r.to_dict() for r in self.ranked],
            "ablations": {
                run_id: [s.to_dict() for s in scores]
                for run_id, scores in sorted(self.ablations.items())
            },
        }

    def render(self, top: Optional[int] = None) -> str:
        """Aligned text table of the ranked candidates + winner matrix."""
        from ..experiments.base import format_table

        rows = []
        shown = self.ranked[:top] if top else self.ranked
        for i, r in enumerate(shown):
            rows.append(
                {
                    "rank": i + 1,
                    "config": r.candidate.label,
                    "feasible": "yes" if r.feasible else "NO",
                    "headroom": f"x{r.headroom:g}" if r.headroom else "-",
                    "binding": r.binding.name,
                    "margin": round(r.binding.margin, 4),
                    "goodput_rps": round(r.goodput_rps),
                    "met_rate": round(r.nominal.metrics["deadline_met_rate"], 4),
                    "run_id": r.run_id,
                }
            )
        lines = [
            f"== advise: {self.traffic.traffic_id} ==  [{self.advice_id}]",
            format_table(rows),
        ]
        matrix = self.ablation_of(self.winner)
        if matrix:
            lines.append("")
            lines.append(f"winner ablation ({self.winner.candidate.label}):")
            lines.append(
                format_table(
                    [
                        {
                            "component": s.component,
                            "importance": round(s.importance, 4),
                            "goodput_without": round(s.ablated_goodput_rps),
                            "feasible_without": "yes" if s.feasible_without else "NO",
                            "harmful": "HARMFUL" if s.harmful else "",
                        }
                        for s in matrix
                    ]
                )
            )
        return "\n".join(lines)


def advise(
    traffic: TrafficSpec,
    space: Optional[SearchSpace] = None,
    scales: Sequence[float] = DEFAULT_SCALE_GRID,
    cache: Optional[RunCache] = None,
    ablate_top: int = 3,
) -> Advice:
    """Search, rank and ablate: the full advisor pipeline."""
    space = space or SearchSpace()
    cache = cache if cache is not None else RunCache()
    results = [
        evaluate(candidate, traffic, scales=scales, cache=cache)
        for candidate in space.candidates()
    ]
    ranked = rank(results)
    ablations: Dict[str, Tuple[ComponentScore, ...]] = {}
    for result in ranked[: max(0, ablate_top)]:
        ablations[result.run_id] = tuple(ablate(result, traffic, cache=cache))
    return Advice(
        traffic=traffic,
        space=space,
        ranked=tuple(ranked),
        ablations=ablations,
        scale_grid=tuple(sorted(set(float(s) for s in scales) | {1.0})),
    )
