"""Automated component ablation: which knobs earn their keep?

For a ranked candidate, the ablation matrix re-runs the *same traffic*
with exactly one component toggled off at a time:

* ``admission``  — the admission policy replaced by ``admit-all``;
* ``stealing``   — work stealing disabled;
* ``shedding``   — ``drop_expired`` off (expired requests are served
  late instead of dropped);
* ``policy``     — the batch policy replaced by plain ``greedy-fifo``.

A component already off in the candidate (``admit-all`` admission,
``steal=False``, ...) is *not applicable* and is skipped rather than
scored as a no-op — the matrix only contains informative rows.

Each row's **importance** is the relative goodput the component is
responsible for at nominal load: ``(base - ablated) / base`` on
``goodput_rps``.  Positive means the component helps; a component whose
removal *improves* goodput beyond a small tolerance is flagged
**harmful** — the overload sweep's admit+shed-at-moderate-rho story
shows real configurations do carry such components, and surfacing them
is the point of running the matrix instead of trusting the narrative.

Ablated runs share the search's run-id scheme and cache: the ablation
of component X is itself a candidate, so if the search already
simulated that configuration the matrix reuses it for free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from .search import Candidate, CandidateResult, RunCache, evaluate
from .spec import TrafficSpec

__all__ = ["COMPONENTS", "ComponentScore", "toggled", "ablate", "HARMFUL_TOLERANCE"]

COMPONENTS: Tuple[str, ...] = ("admission", "stealing", "shedding", "policy")

# A component is harmful only when removing it wins more than this
# relative goodput — below it, the delta is tie-break noise.
HARMFUL_TOLERANCE = 0.01


def toggled(candidate: Candidate, component: str) -> Optional[Candidate]:
    """The candidate with one component off; None when not applicable."""
    if component == "admission":
        if candidate.admission == "admit-all":
            return None
        return replace(candidate, admission="admit-all")
    if component == "stealing":
        if not candidate.steal or candidate.workers == 1:
            return None  # a 1-worker pool has nobody to steal from
        return replace(candidate, steal=False)
    if component == "shedding":
        if not candidate.drop_expired:
            return None
        return replace(candidate, drop_expired=False)
    if component == "policy":
        if candidate.policy == "greedy-fifo":
            return None
        return replace(candidate, policy="greedy-fifo")
    raise KeyError(f"unknown component {component!r}; known: {COMPONENTS}")


@dataclass(frozen=True)
class ComponentScore:
    """One ablation row: what removing one component costs (or wins)."""

    component: str
    run_id: str  # of the ablated configuration
    base_goodput_rps: float
    ablated_goodput_rps: float
    importance: float  # (base - ablated) / base
    feasible_without: bool  # still feasible at nominal load when off?
    harmful: bool

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "run_id": self.run_id,
            "base_goodput_rps": self.base_goodput_rps,
            "ablated_goodput_rps": self.ablated_goodput_rps,
            "importance": self.importance,
            "feasible_without": self.feasible_without,
            "harmful": self.harmful,
        }


def ablate(
    result: CandidateResult,
    traffic: TrafficSpec,
    cache: Optional[RunCache] = None,
    components: Sequence[str] = COMPONENTS,
) -> List[ComponentScore]:
    """Score every applicable component of one ranked candidate.

    Rows come back sorted by importance (descending) then component
    name — the order a reader wants: biggest contributor first, harmful
    components at the bottom.
    """
    base = result.nominal.metrics["goodput_rps"]
    scores: List[ComponentScore] = []
    for component in components:
        variant = toggled(result.candidate, component)
        if variant is None:
            continue
        # Nominal load only: importance is a statement about the
        # operating point, not about the whole headroom scan.
        ablated = evaluate(variant, traffic, scales=(1.0,), cache=cache)
        abl_goodput = ablated.nominal.metrics["goodput_rps"]
        importance = (base - abl_goodput) / base if base else 0.0
        scores.append(
            ComponentScore(
                component=component,
                run_id=ablated.run_id,
                base_goodput_rps=base,
                ablated_goodput_rps=abl_goodput,
                importance=round(importance, 6),
                feasible_without=ablated.nominal.feasible,
                harmful=importance < -HARMFUL_TOLERANCE,
            )
        )
    scores.sort(key=lambda s: (-s.importance, s.component))
    return scores
