"""Configuration search over the deterministic cluster simulator.

The advisor's core loop: enumerate a :class:`SearchSpace` of candidate
configurations (workers x batch policy x admission x backend x batch
cap), replay the *same* :class:`~repro.advisor.spec.TrafficSpec` against
each on the cost-model clock, and score every candidate with

* per-constraint **margins** at nominal load — ``slo:<class>`` is the
  class's deadline-met rate minus its floor, ``loss`` is the loss-budget
  headroom ``max_loss_frac - (rejected + shed + failed) / submitted``;
* a **feasibility headroom**: the largest load multiple on a fixed scale
  grid the candidate still clears every constraint at; and
* the **binding constraint**: the constraint that fails first as load
  scales past the headroom — the answer to "what breaks first if
  traffic grows?", which is what distinguishes a provisioning decision
  from a leaderboard entry.

Every simulation is identified by a stable content-hashed run id
(:func:`repro.experiments.base.stable_run_id` over traffic + candidate
+ scale) and memoised in a :class:`RunCache`, optionally persisted to
disk as one JSON file per run — re-running a search or an ablation
matrix reuses every simulation whose configuration is unchanged, which
is what makes the advisor's run matrix resumable.

The clock is pinned to :meth:`CostModelClock.flat` for the same reason
the overload sweep pins it: candidate comparisons are claims about
control dynamics at a designed service scale, and must not move when
``make bench-update`` re-snapshots the calibrated host overheads.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import json

from ..cluster import (
    ADMISSIONS,
    POLICIES,
    ClusterReport,
    CostModelClock,
    SimConfig,
    make_admission,
    make_policy,
    simulate,
)
from ..experiments.base import stable_run_id
from .spec import TrafficSpec

__all__ = [
    "Candidate",
    "SearchSpace",
    "Constraint",
    "Evaluation",
    "CandidateResult",
    "RunCache",
    "evaluate",
    "DEFAULT_SCALE_GRID",
]

# Load multiples the feasibility scan probes, ascending from nominal.
DEFAULT_SCALE_GRID: Tuple[float, ...] = (1.0, 1.25, 1.5, 2.0, 3.0)


@dataclass(frozen=True)
class Candidate:
    """One deployable configuration: what the advisor ranks."""

    workers: int = 2
    policy: str = "edf"
    admission: str = "admit-all"
    backend: str = "functional"
    max_batch_size: int = 8
    drop_expired: bool = True
    steal: bool = True
    admission_slack: float = 1.0  # est-wait only
    queue_depth: int = 64  # queue-depth only

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; known: {sorted(POLICIES)}")
        if self.admission not in ADMISSIONS:
            raise ValueError(
                f"unknown admission {self.admission!r}; known: {sorted(ADMISSIONS)}"
            )

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "policy": self.policy,
            "admission": self.admission,
            "backend": self.backend,
            "max_batch_size": self.max_batch_size,
            "drop_expired": self.drop_expired,
            "steal": self.steal,
            "admission_slack": self.admission_slack,
            "queue_depth": self.queue_depth,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Candidate":
        return cls(**dict(payload))

    @property
    def label(self) -> str:
        bits = [f"{self.workers}w", self.policy, self.admission, f"b{self.max_batch_size}"]
        if not self.drop_expired:
            bits.append("no-shed")
        if not self.steal:
            bits.append("no-steal")
        if self.backend != "functional":
            bits.append(self.backend)
        return "/".join(bits)

    def run_id(self, traffic: TrafficSpec) -> str:
        """Stable id of (traffic, candidate) — the row key of the matrix."""
        return stable_run_id(
            "advise", {"traffic": traffic.to_dict(), "candidate": self.to_dict()}
        )

    def sim_config(self, traffic: TrafficSpec) -> SimConfig:
        policy_kwargs: dict = {"drop_expired": self.drop_expired}
        if self.policy == "weighted-fair":
            # Tighter budgets earn proportionally larger DRR shares; the
            # weights derive from the traffic spec, not a side channel.
            policy_kwargs["weights"] = fair_weights(traffic)
        admission_kwargs: dict = {}
        if self.admission == "est-wait":
            admission_kwargs["slack"] = self.admission_slack
        elif self.admission == "queue-depth":
            admission_kwargs["max_depth"] = self.queue_depth
        return SimConfig(
            workers=self.workers,
            max_batch_size=self.max_batch_size,
            steal=self.steal,
            policy=make_policy(self.policy, **policy_kwargs),
            admission=make_admission(self.admission, **admission_kwargs),
            service=CostModelClock.flat(),
            backend=self.backend,
        )


def fair_weights(traffic: TrafficSpec) -> Dict[str, float]:
    """Per-class DRR weights: inverse deadline, normalised to min 1.0."""
    inv = {t.name: 1.0 / t.deadline_units for t in traffic.slo}
    floor = min(inv.values())
    return {name: round(v / floor, 4) for name, v in inv.items()}


@dataclass(frozen=True)
class SearchSpace:
    """The candidate grid one ``advise`` call enumerates."""

    workers: Tuple[int, ...] = (1, 2, 4)
    policies: Tuple[str, ...] = ("greedy-fifo", "edf", "weighted-fair")
    admissions: Tuple[str, ...] = ("admit-all", "est-wait")
    backends: Tuple[str, ...] = ("functional",)
    batch_caps: Tuple[int, ...] = (8,)

    def candidates(self) -> List[Candidate]:
        """Deterministic enumeration order: the ranker's final tiebreak."""
        return [
            Candidate(
                workers=w, policy=p, admission=a, backend=b, max_batch_size=cap
            )
            for w, p, a, b, cap in product(
                self.workers, self.policies, self.admissions,
                self.backends, self.batch_caps,
            )
        ]

    def to_dict(self) -> dict:
        return {
            "workers": list(self.workers),
            "policies": list(self.policies),
            "admissions": list(self.admissions),
            "backends": list(self.backends),
            "batch_caps": list(self.batch_caps),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SearchSpace":
        return cls(**{k: tuple(v) for k, v in dict(payload).items()})


@dataclass(frozen=True)
class Constraint:
    """One feasibility term: non-negative margin means satisfied."""

    name: str  # "slo:<class>" or "loss"
    margin: float

    @property
    def ok(self) -> bool:
        return self.margin >= 0.0

    def to_dict(self) -> dict:
        return {"name": self.name, "margin": self.margin, "ok": self.ok}


def constraints_of(report: ClusterReport, traffic: TrafficSpec) -> List[Constraint]:
    """Score one simulation against the spec's feasibility targets."""
    out: List[Constraint] = []
    for target in traffic.slo:
        cls = report.class_report(target.name)
        out.append(
            Constraint(
                name=f"slo:{target.name}",
                margin=round(cls.deadline_met_rate - target.min_met_rate, 6),
            )
        )
    lost = report.rejected + report.shed + report.failed
    loss_frac = lost / report.submitted if report.submitted else 0.0
    out.append(Constraint(name="loss", margin=round(traffic.max_loss_frac - loss_frac, 6)))
    return out


@dataclass(frozen=True)
class Evaluation:
    """One simulated point: a candidate at one load multiple."""

    run_id: str
    scale: float
    metrics: dict  # ClusterReport.to_dict() minus per-worker noise
    constraints: Tuple[Constraint, ...]

    @property
    def feasible(self) -> bool:
        return all(c.ok for c in self.constraints)

    @property
    def worst(self) -> Constraint:
        return min(self.constraints, key=lambda c: (c.margin, c.name))

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "scale": self.scale,
            "metrics": self.metrics,
            "constraints": [c.to_dict() for c in self.constraints],
            "feasible": self.feasible,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Evaluation":
        return cls(
            run_id=payload["run_id"],
            scale=payload["scale"],
            metrics=dict(payload["metrics"]),
            constraints=tuple(
                Constraint(c["name"], c["margin"]) for c in payload["constraints"]
            ),
        )


class RunCache:
    """Content-addressed store of evaluations, optionally on disk.

    Keys are ``<run_id>@x<scale>``; the value is the JSON-serialisable
    :class:`Evaluation`.  Because run ids hash every code-relevant knob,
    a hit is a claim the simulation would reproduce byte-identically —
    so a second ``advise`` call (or an ablation matrix overlapping the
    search) replays cached points instead of re-simulating them.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, Evaluation] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(run_id: str, scale: float) -> str:
        return f"{run_id}@x{scale:g}"

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def get(self, run_id: str, scale: float) -> Optional[Evaluation]:
        key = self.key(run_id, scale)
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if self.directory is not None and self._path(key).exists():
            with open(self._path(key), "r", encoding="utf-8") as fh:
                ev = Evaluation.from_dict(json.load(fh))
            self._memory[key] = ev
            self.hits += 1
            return ev
        self.misses += 1
        return None

    def put(self, evaluation: Evaluation) -> None:
        key = self.key(evaluation.run_id, evaluation.scale)
        self._memory[key] = evaluation
        if self.directory is not None:
            with open(self._path(key), "w", encoding="utf-8") as fh:
                json.dump(evaluation.to_dict(), fh, sort_keys=True, indent=1)


def _evaluate_point(
    candidate: Candidate,
    traffic: TrafficSpec,
    scale: float,
    cache: Optional[RunCache],
) -> Evaluation:
    run_id = candidate.run_id(traffic)
    if cache is not None:
        hit = cache.get(run_id, scale)
        if hit is not None:
            return hit
    report = simulate(traffic.source(scale), candidate.sim_config(traffic))
    conserved = report.submitted == (
        report.completed + report.rejected + report.shed + report.failed
    )
    if not conserved:  # pragma: no cover - simulator invariant
        raise AssertionError(f"conservation violated for {candidate.label} @x{scale}")
    metrics = report.to_dict()
    metrics.pop("workers", None)  # per-worker detail is not decision input
    metrics.pop("fault_activity", None)
    evaluation = Evaluation(
        run_id=run_id,
        scale=scale,
        metrics=metrics,
        constraints=tuple(constraints_of(report, traffic)),
    )
    if cache is not None:
        cache.put(evaluation)
    return evaluation


@dataclass(frozen=True)
class CandidateResult:
    """A candidate's full scorecard across the load-scale grid."""

    candidate: Candidate
    run_id: str
    nominal: Evaluation  # at scale 1.0
    scan: Tuple[Evaluation, ...]  # ascending scale grid, includes nominal
    headroom: Optional[float]  # largest contiguous feasible scale (None: infeasible at 1.0)
    binding: Constraint  # what fails first as load grows
    binding_scale: Optional[float]  # scale the binding constraint failed at

    @property
    def feasible(self) -> bool:
        return self.nominal.feasible

    @property
    def goodput_rps(self) -> float:
        return self.nominal.metrics["goodput_rps"]

    def to_dict(self) -> dict:
        return {
            "candidate": self.candidate.to_dict(),
            "label": self.candidate.label,
            "run_id": self.run_id,
            "feasible": self.feasible,
            "headroom": self.headroom,
            "binding": self.binding.to_dict(),
            "binding_scale": self.binding_scale,
            "nominal": self.nominal.to_dict(),
            "scan": [e.to_dict() for e in self.scan],
        }


def evaluate(
    candidate: Candidate,
    traffic: TrafficSpec,
    scales: Sequence[float] = DEFAULT_SCALE_GRID,
    cache: Optional[RunCache] = None,
) -> CandidateResult:
    """Score one candidate: nominal margins + feasibility scan.

    The scan walks the ascending scale grid and stops at the first
    infeasible point; the *headroom* is the last feasible scale before
    it, and the *binding constraint* is the worst-margin constraint at
    that first failure.  A candidate that never fails inside the grid
    reports the top scale as headroom and its thinnest margin there as
    the (non-failing) binding constraint with ``binding_scale=None`` —
    "nothing broke, but this is what would".
    """
    grid = tuple(sorted(set(float(s) for s in scales) | {1.0}))
    if grid[0] < 1.0:
        raise ValueError(f"scale grid must start at nominal load, got {grid[0]}")
    scan: List[Evaluation] = []
    headroom: Optional[float] = None
    binding: Optional[Constraint] = None
    binding_scale: Optional[float] = None
    for scale in grid:
        point = _evaluate_point(candidate, traffic, scale, cache)
        scan.append(point)
        if point.feasible:
            headroom = scale
        else:
            binding = point.worst
            binding_scale = scale
            break
    nominal = scan[0]
    if binding is None:
        binding = scan[-1].worst  # thinnest margin at the top of the grid
    return CandidateResult(
        candidate=candidate,
        run_id=candidate.run_id(traffic),
        nominal=nominal,
        scan=tuple(scan),
        headroom=headroom,
        binding=binding,
        binding_scale=binding_scale,
    )
