"""Decision packs: the advisor's exportable, hash-pinned artefact.

A pack is a directory with four files:

* ``candidates.json``  — the full :meth:`Advice.to_dict` payload
  (every ranked candidate, every scan point, every ablation row);
* ``comparison.csv``   — the ranked table, one row per candidate, for
  spreadsheets and diff-friendly review;
* ``DECISION_REPORT.md`` — the human story: winner, why (margins,
  headroom, binding constraint), component importances, runner-ups;
* ``manifest.json``    — the SHA-256 of each artefact plus one
  pack-level :func:`~repro.experiments.base.manifest_hash` over them.

Every byte is a pure function of the :class:`~repro.advisor.advise.Advice`
— no timestamps, no hostnames, no float repr drift — so re-exporting
the same advice reproduces the manifest hash exactly.  That is the
property the regression test pins: a changed manifest hash means the
*decision* changed, not the clock.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
from pathlib import Path
from typing import Dict, Union

from ..experiments.base import manifest_hash
from .advise import Advice

__all__ = ["export_pack", "pack_manifest"]

CANDIDATES_JSON = "candidates.json"
COMPARISON_CSV = "comparison.csv"
REPORT_MD = "DECISION_REPORT.md"
MANIFEST_JSON = "manifest.json"


def _sha256_bytes(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _candidates_bytes(advice: Advice) -> bytes:
    return (json.dumps(advice.to_dict(), indent=2, sort_keys=True) + "\n").encode()


def _comparison_bytes(advice: Advice) -> bytes:
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        [
            "rank", "run_id", "workers", "policy", "admission", "backend",
            "max_batch_size", "feasible", "headroom", "binding", "binding_margin",
            "goodput_rps", "met_rate", "p99_ms",
        ]
    )
    for i, r in enumerate(advice.ranked):
        c = r.candidate
        writer.writerow(
            [
                i + 1, r.run_id, c.workers, c.policy, c.admission, c.backend,
                c.max_batch_size, r.feasible,
                "" if r.headroom is None else f"{r.headroom:g}",
                r.binding.name, f"{r.binding.margin:.6f}",
                f"{r.goodput_rps:.3f}",
                f"{r.nominal.metrics['deadline_met_rate']:.4f}",
                f"{r.nominal.metrics['latency_p99_ms']:.3f}",
            ]
        )
    return buf.getvalue().encode()


def _report_bytes(advice: Advice) -> bytes:
    w = advice.winner
    lines = [
        "# Provisioning decision",
        "",
        f"Advice `{advice.advice_id}` over traffic `{advice.traffic.traffic_id}` "
        f"({advice.traffic.num_requests} requests, {advice.traffic.arrival} arrivals "
        f"at rho {advice.traffic.rho:g}, {len(advice.traffic.slo)} SLO classes).",
        "",
        "## Winner",
        "",
        f"**{w.candidate.label}** (`{w.run_id}`)",
        "",
    ]
    if w.feasible:
        lines.append(
            f"Feasible at nominal load with headroom to x{w.headroom:g}; the "
            f"binding constraint is `{w.binding.name}`"
            + (
                f", which fails first at x{w.binding_scale:g}."
                if w.binding_scale is not None
                else f" (thinnest margin, {w.binding.margin:+.4f}, never failing inside the grid)."
            )
        )
    else:
        lines.append(
            f"**No candidate was feasible at nominal load.** Closest miss: "
            f"`{w.binding.name}` at margin {w.binding.margin:+.4f}; consider "
            "relaxing that target or widening the search space."
        )
    lines.append("")
    lines.append("Nominal-load margins:")
    lines.append("")
    for c in w.nominal.constraints:
        lines.append(f"- `{c.name}`: {c.margin:+.4f} ({'ok' if c.ok else 'VIOLATED'})")
    matrix = advice.ablation_of(w)
    if matrix:
        lines += [
            "",
            "## Component importance (winner)",
            "",
            "| component | importance | goodput without | feasible without | flag |",
            "|---|---|---|---|---|",
        ]
        for s in matrix:
            lines.append(
                f"| {s.component} | {s.importance:+.4f} | "
                f"{s.ablated_goodput_rps:.0f} rps | "
                f"{'yes' if s.feasible_without else 'no'} | "
                f"{'HARMFUL' if s.harmful else ''} |"
            )
    lines += [
        "",
        "## Ranked candidates",
        "",
        "| rank | config | feasible | headroom | binding | margin | goodput |",
        "|---|---|---|---|---|---|---|",
    ]
    for i, r in enumerate(advice.ranked):
        lines.append(
            f"| {i + 1} | {r.candidate.label} | {'yes' if r.feasible else 'NO'} | "
            f"{'x%g' % r.headroom if r.headroom else '-'} | {r.binding.name} | "
            f"{r.binding.margin:+.4f} | {r.goodput_rps:.0f} rps |"
        )
    lines.append("")
    return "\n".join(lines).encode()


def pack_manifest(advice: Advice) -> Dict[str, str]:
    """Per-artefact SHA-256 table of the pack (before writing anything)."""
    return {
        CANDIDATES_JSON: _sha256_bytes(_candidates_bytes(advice)),
        COMPARISON_CSV: _sha256_bytes(_comparison_bytes(advice)),
        REPORT_MD: _sha256_bytes(_report_bytes(advice)),
    }


def export_pack(advice: Advice, out_dir: Union[str, Path]) -> dict:
    """Write the four-artefact decision pack; return the manifest.

    The returned dict is exactly what lands in ``manifest.json``:
    ``{"files": {name: sha256}, "manifest_hash": ..., "advice_id": ...,
    "winner_run_id": ...}``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    artefacts = {
        CANDIDATES_JSON: _candidates_bytes(advice),
        COMPARISON_CSV: _comparison_bytes(advice),
        REPORT_MD: _report_bytes(advice),
    }
    files = {name: _sha256_bytes(blob) for name, blob in artefacts.items()}
    manifest = {
        "advice_id": advice.advice_id,
        "winner_run_id": advice.winner.run_id,
        "files": files,
        "manifest_hash": manifest_hash(files),
    }
    for name, blob in artefacts.items():
        (out / name).write_bytes(blob)
    with open(out / MANIFEST_JSON, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest
