"""Provisioning advisor: config search, ablation, decision packs.

The decision layer over the cluster simulator (ROADMAP direction 4).
Given a declarative :class:`TrafficSpec` — arrival process, request
mix, SLO classes with deadline budgets, feasibility targets — the
advisor searches a :class:`SearchSpace` of deployable configurations on
the deterministic cost-model clock, ranks them cheapest-feasible-first
with per-constraint margins and load headroom, scores each ranked
candidate's components by automated ablation, and exports the winner as
a manifest-hashed decision pack.

    from repro.advisor import TrafficSpec, advise, export_pack

    advice = advise(TrafficSpec(rho=1.2))
    print(advice.render(top=5))
    export_pack(advice, "out/pack")

Everything is content-addressed: traffic specs, candidates and whole
advice objects carry stable hashed ids (the same
:func:`repro.experiments.base.stable_run_id` scheme the experiment
sweeps stamp), so runs cache, resume and pin byte-identically.
"""

from .ablation import COMPONENTS, ComponentScore, ablate, toggled
from .advise import Advice, advise
from .export import export_pack, pack_manifest
from .ranking import rank, sort_key
from .search import (
    DEFAULT_SCALE_GRID,
    Candidate,
    CandidateResult,
    Constraint,
    Evaluation,
    RunCache,
    SearchSpace,
    evaluate,
)
from .spec import SLOTarget, TrafficSpec, reference_scales

__all__ = [
    "TrafficSpec",
    "SLOTarget",
    "reference_scales",
    "Candidate",
    "SearchSpace",
    "Constraint",
    "Evaluation",
    "CandidateResult",
    "RunCache",
    "evaluate",
    "DEFAULT_SCALE_GRID",
    "rank",
    "sort_key",
    "COMPONENTS",
    "ComponentScore",
    "ablate",
    "toggled",
    "Advice",
    "advise",
    "export_pack",
    "pack_manifest",
]
