"""Declarative traffic specs: the advisor's candidate-independent input.

A :class:`TrafficSpec` describes *traffic*, not a deployment: how many
requests, what structural mix (the same pattern families the serving
trace generator draws), how they arrive (Poisson or bursty on/off), the
SLO classes with their deadline budgets, and the feasibility targets a
configuration must meet.  Everything a candidate configuration could
change — workers, policy, admission, backend, batch caps — is *absent*
by construction, so one spec can be replayed against every candidate in
a search space and two candidates always see byte-identical work.

Deadlines and offered load are expressed in the simulator's
scale-free units (see :func:`repro.cluster.service_scales`): deadline
budgets in *dispatch units* and load as ``rho`` — offered rate over the
full-batch capacity of ONE reference worker — so a spec stays meaningful
when the cost model is recalibrated.  The reference scales are pinned to
the uncalibrated flat clock and the default backend, making them (and
therefore the spec's content hash) independent of both the benchmark
snapshot and any candidate's backend choice.

Specs are JSON round-trippable (:meth:`TrafficSpec.to_dict` /
:meth:`TrafficSpec.from_dict` / :meth:`TrafficSpec.load`) and content
hashed (:attr:`TrafficSpec.traffic_id`), which is one half of every
advisor run id — the other half being the candidate (see
:mod:`repro.advisor.search`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Tuple, Union

from ..cluster import (
    CostModelClock,
    OnOffProcess,
    OpenLoopSource,
    PoissonProcess,
    SLOClass,
    WorkloadSpec,
    open_loop,
    service_scales,
)
from ..experiments.base import stable_run_id

__all__ = ["SLOTarget", "TrafficSpec", "reference_scales"]

ARRIVALS = ("poisson", "bursty")

# Reference full batch for capacity/deadline units: candidates may cap
# batches differently, but the *units* a spec is written in must not
# move with the candidate under evaluation.
REFERENCE_FULL_BATCH = 8
REFERENCE_BACKEND = "functional"

# Bursty arrivals: the on state emits at BURST_CONTRAST x the mean rate
# (off emits nothing), and a mean on-period carries BURST_LENGTH
# requests.  Residence times scale inversely with the rate, so scaling
# the load compresses the same burst structure in time instead of
# changing it.
BURST_CONTRAST = 2.0
BURST_LENGTH = 20.0


@dataclass(frozen=True)
class SLOTarget:
    """One SLO class plus the feasibility bar it must clear.

    ``deadline_units`` is the latency budget in reference dispatch
    units (one request + one whole batch overhead on the flat clock);
    ``min_met_rate`` is the class's deadline-met-rate floor — the
    constraint named ``slo:<name>`` in advisor reports.
    """

    name: str
    deadline_units: float
    share: float = 1.0
    min_met_rate: float = 0.9

    def __post_init__(self) -> None:
        if self.deadline_units <= 0:
            raise ValueError(f"deadline_units must be positive, got {self.deadline_units}")
        if self.share <= 0:
            raise ValueError(f"share must be positive, got {self.share}")
        if not 0.0 < self.min_met_rate <= 1.0:
            raise ValueError(f"min_met_rate must be in (0, 1], got {self.min_met_rate}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "deadline_units": self.deadline_units,
            "share": self.share,
            "min_met_rate": self.min_met_rate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SLOTarget":
        return cls(**dict(payload))


DEFAULT_SLO_TARGETS: Tuple[SLOTarget, ...] = (
    SLOTarget("interactive", deadline_units=60.0, share=0.5, min_met_rate=0.9),
    SLOTarget("bulk", deadline_units=400.0, share=0.5, min_met_rate=0.9),
)


def reference_scales(spec: "TrafficSpec") -> Tuple[float, float]:
    """(amortised unit, dispatch unit) of the spec's reference worker.

    Pinned to the flat clock, the default backend and the reference
    full batch — deliberately *not* the candidate's own settings — so
    the units a spec is written in are a property of the traffic alone.
    """
    return _raw_scales(
        spec.num_requests, spec.n, spec.window, spec.heads,
        spec.head_dim, spec.mixed,
    )


@dataclass(frozen=True)
class TrafficSpec:
    """Declarative description of the traffic to provision for."""

    num_requests: int = 160
    n: int = 256
    window: int = 32
    heads: int = 2
    head_dim: int = 8
    mixed: bool = True
    arrival: str = "poisson"  # "poisson" | "bursty"
    rho: float = 1.2  # offered load / one reference worker's capacity
    slo: Tuple[SLOTarget, ...] = DEFAULT_SLO_TARGETS
    max_loss_frac: float = 0.2  # (rejected + shed + failed) / submitted cap
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival {self.arrival!r}; known: {ARRIVALS}")
        if self.rho <= 0:
            raise ValueError(f"rho must be positive, got {self.rho}")
        if not self.slo:
            raise ValueError("need at least one SLO target")
        if len({t.name for t in self.slo}) != len(self.slo):
            raise ValueError("SLO target names must be unique")
        if not 0.0 < self.max_loss_frac <= 1.0:
            raise ValueError(f"max_loss_frac must be in (0, 1], got {self.max_loss_frac}")

    # -- identity / serialisation --------------------------------------

    def to_dict(self) -> dict:
        return {
            "num_requests": self.num_requests,
            "n": self.n,
            "window": self.window,
            "heads": self.heads,
            "head_dim": self.head_dim,
            "mixed": self.mixed,
            "arrival": self.arrival,
            "rho": self.rho,
            "slo": [t.to_dict() for t in self.slo],
            "max_loss_frac": self.max_loss_frac,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TrafficSpec":
        data = dict(payload)
        data["slo"] = tuple(SLOTarget.from_dict(t) for t in data.get("slo", ()))
        if not data["slo"]:
            data.pop("slo")
        return cls(**data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrafficSpec":
        """Read a spec from a JSON file (the ``advise --traffic`` path)."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    @property
    def traffic_id(self) -> str:
        """Content hash of the traffic description (half of a run id)."""
        return stable_run_id("traffic", self.to_dict())

    # -- simulation inputs ---------------------------------------------

    def workload(self) -> WorkloadSpec:
        _, dispatch_s = _raw_scales(
            self.num_requests, self.n, self.window, self.heads,
            self.head_dim, self.mixed,
        )
        return WorkloadSpec(
            num_requests=self.num_requests,
            n=self.n,
            window=self.window,
            heads=self.heads,
            head_dim=self.head_dim,
            mixed=self.mixed,
            slo_classes=tuple(
                SLOClass(t.name, deadline_s=t.deadline_units * dispatch_s, share=t.share)
                for t in self.slo
            ),
            seed=self.seed,
        )

    def rate_rps(self, scale: float = 1.0) -> float:
        """Offered arrival rate at ``scale`` x the spec's nominal load."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        unit_s, _ = reference_scales(self)
        return scale * self.rho / unit_s

    def source(self, scale: float = 1.0) -> OpenLoopSource:
        """Open-loop request source at ``scale`` x the nominal load.

        The request *mix* is identical at every scale (open_loop drives
        arrivals from an offset RNG stream), and for both arrival kinds
        the draw structure scales linearly with rate — so scaling the
        load compresses the same arrival pattern in time.  That is what
        makes a load-margin scan a controlled experiment rather than a
        comparison of unrelated traces.
        """
        rate = self.rate_rps(scale)
        if self.arrival == "poisson":
            process = PoissonProcess(rate_rps=rate)
        else:
            mean_on_s = BURST_LENGTH / (BURST_CONTRAST * rate)
            process = OnOffProcess(
                rate_on_rps=BURST_CONTRAST * rate,
                rate_off_rps=0.0,
                mean_on_s=mean_on_s,
                mean_off_s=mean_on_s * (BURST_CONTRAST - 1.0),
            )
        return open_loop(self.workload(), process)

    def scaled(self, rho: float) -> "TrafficSpec":
        """The same traffic at a different nominal load."""
        return replace(self, rho=rho)


def _raw_scales(num_requests, n, window, heads, head_dim, mixed) -> Tuple[float, float]:
    spec = WorkloadSpec(
        num_requests=num_requests, n=n, window=window, heads=heads,
        head_dim=head_dim, mixed=mixed,
    )
    return service_scales(
        spec, CostModelClock.flat(),
        full_batch=REFERENCE_FULL_BATCH, backend=REFERENCE_BACKEND,
    )
