"""Per-sequence autoregressive decode state and stepping.

One-shot encoder attention hands the engine a finished sequence;
*decode* grows it one token per step and re-runs attention against the
incrementally extended key set.  Recompiling a plan per length would
spend a cold compile on every token, so :class:`DecodeSession` compiles
at **length buckets** (powers of two via
:func:`repro.serving.batching.length_bucket`) and masks the not-yet-
written tail with ``valid_lens``:

* steps *within* a bucket reuse the bucket's cached plan — plan-cache
  hits, zero compiles;
* *crossing* a bucket (length 16→17, 32→33, …) is the only cold
  compile, and each bucket is compiled exactly once per structure.

KV state lifecycle
------------------
:class:`KVState` owns the growing Q/K/V history.  Buffers are allocated
at the current bucket capacity; ``append`` writes the next row in
place, and a bucket crossing reallocates at the next power of two and
copies (amortised O(1) per token, like a growable array).  Rows past
``length`` stay zero — exactly the padding the engine masks out.

Numerical contract
------------------
Every step output is **bit-identical to a from-scratch full-length
recompute**: a fresh engine handed the whole history in one call (same
bucket, ``valid_lens=[length]``) produces byte-for-byte the session's
output — incremental state adds zero numerical drift.  For purely
banded patterns (sliding window, dilated, multi-band) the outputs are
furthermore bit-identical to an *exact-length* ``attend()`` with no
padding at all.  Global-token patterns keep that exact-length identity
on every non-global row; the global rows themselves are equivalent only
up to the engine's documented partial-softmax regrouping (the
global-row pass grouping depends on the padded length, and the exp LUT
makes regrouping observable).  The parity suite pins all three tiers.

Global tokens must lie inside the valid prefix (the engine rejects a
global key it cannot read), so the session activates a global token
only once the sequence has grown past it — one extra structural compile
per activation, bounded by the number of global tokens.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import HardwareConfig
from ..core.salo import SALO, pattern_structure_key
from ..patterns.base import AttentionPattern, Band
from ..patterns.hybrid import HybridSparsePattern
from ..serving.batching import length_bucket

__all__ = ["KVState", "DecodeSession", "decode_pattern"]


def decode_pattern(
    bands: Tuple[Band, ...],
    global_tokens: Tuple[int, ...],
    bucket: int,
    valid_len: int,
) -> HybridSparsePattern:
    """Bucket-length pattern for a sequence of ``valid_len`` tokens.

    Bands carry over unchanged (they are relative offsets); global
    tokens are filtered to the valid prefix — the engine requires every
    global key to be readable by every sequence in the call.
    """
    if valid_len > bucket:
        raise ValueError(f"valid_len {valid_len} exceeds bucket {bucket}")
    active = tuple(g for g in global_tokens if g < valid_len)
    return HybridSparsePattern(bucket, list(bands), active)


class KVState:
    """Growing Q/K/V history with bucket-capacity buffers.

    Buffers hold ``capacity = length_bucket(length)`` rows; the tail
    past ``length`` is zero.  ``padded(capacity)`` is a zero-copy view
    of the internal buffers, so a warm decode step allocates nothing.
    """

    def __init__(self, hidden: int, bucket_floor: int = 16) -> None:
        if hidden <= 0:
            raise ValueError("hidden must be positive")
        self.hidden = hidden
        self.bucket_floor = bucket_floor
        self._len = 0
        self._cap = 0
        self._q = np.zeros((0, hidden))
        self._k = np.zeros((0, hidden))
        self._v = np.zeros((0, hidden))
        self.grows = 0

    @property
    def length(self) -> int:
        return self._len

    @property
    def capacity(self) -> int:
        """Current bucket (padded length of every attend call)."""
        return self._cap

    def _ensure(self, new_len: int) -> bool:
        cap = length_bucket(new_len, self.bucket_floor)
        if cap <= self._cap:
            return False
        for name in ("_q", "_k", "_v"):
            old = getattr(self, name)
            buf = np.zeros((cap, self.hidden))
            buf[: self._len] = old[: self._len]
            setattr(self, name, buf)
        self._cap = cap
        self.grows += 1
        return True

    def extend(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> bool:
        """Append a block of rows (the prompt); returns True on regrow."""
        q = np.asarray(q, dtype=float)
        k = np.asarray(k, dtype=float)
        v = np.asarray(v, dtype=float)
        if q.ndim != 2 or q.shape[1] != self.hidden:
            raise ValueError(f"expected (m, {self.hidden}) rows, got {q.shape}")
        if q.shape != k.shape or q.shape != v.shape:
            raise ValueError("q/k/v row blocks must share a shape")
        m = q.shape[0]
        if m == 0:
            raise ValueError("cannot extend with zero rows")
        grew = self._ensure(self._len + m)
        lo = self._len
        self._q[lo : lo + m] = q
        self._k[lo : lo + m] = k
        self._v[lo : lo + m] = v
        self._len += m
        return grew

    def append(self, q_row: np.ndarray, k_row: np.ndarray, v_row: np.ndarray) -> bool:
        """Append one token; returns True when a bucket was crossed."""
        return self.extend(
            np.asarray(q_row, dtype=float).reshape(1, -1),
            np.asarray(k_row, dtype=float).reshape(1, -1),
            np.asarray(v_row, dtype=float).reshape(1, -1),
        )

    def padded(self, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """History zero-padded to ``n`` rows (zero-copy at capacity)."""
        if n == self._cap:
            return self._q, self._k, self._v
        if n < self._len:
            raise ValueError(f"cannot pad {self._len} rows into {n}")
        q = np.zeros((n, self.hidden))
        k = np.zeros((n, self.hidden))
        v = np.zeros((n, self.hidden))
        q[: self._len] = self._q[: self._len]
        k[: self._len] = self._k[: self._len]
        v[: self._len] = self._v[: self._len]
        return q, k, v

    def history(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Views of the live rows (no padding, no copy)."""
        return (
            self._q[: self._len],
            self._k[: self._len],
            self._v[: self._len],
        )


class DecodeSession:
    """One autoregressive sequence against a shared :class:`SALO` engine.

    ``prefill`` ingests the prompt and returns the full attention
    output (its last row seeds the first generated token);  ``step``
    appends one token and returns that token's attention row.  All
    calls go through the shared engine's plan cache, so many sessions
    on one engine amortise each bucket's compile across every sequence
    and every step that touches it.

    The ``pattern`` argument defines the *structure family*: its bands
    and its **complete** global-token set.  Pass the full-length family
    pattern — a short instance whose constructor already dropped
    out-of-range globals would silently truncate the family, because
    the session takes the global set exactly as given and activates
    each global once the sequence grows past it.
    """

    def __init__(
        self,
        pattern: AttentionPattern,
        salo: Optional[SALO] = None,
        heads: int = 1,
        bucket_floor: int = 16,
        scale: Optional[float] = None,
    ) -> None:
        if pattern_structure_key(pattern) is None:
            raise ValueError(
                "decode requires a structured pattern (bands + globals); "
                f"{type(pattern).__name__} is opaque"
            )
        self.salo = salo if salo is not None else SALO(HardwareConfig())
        self.heads = heads
        self.bucket_floor = bucket_floor
        self.scale = scale
        self._bands = tuple(pattern.bands() or ())
        self._globals = tuple(pattern.global_tokens())
        self._patterns: Dict[Tuple[int, Tuple[int, ...]], HybridSparsePattern] = {}
        self._state: Optional[KVState] = None
        self.steps = 0
        self.bucket_crossings = 0
        self.last_output: Optional[np.ndarray] = None

    @property
    def length(self) -> int:
        return self._state.length if self._state is not None else 0

    @property
    def bucket(self) -> int:
        """Padded length of the current plan (0 before prefill)."""
        return self._state.capacity if self._state is not None else 0

    @property
    def state(self) -> KVState:
        if self._state is None:
            raise RuntimeError("prefill() first")
        return self._state

    def bucket_pattern(self) -> HybridSparsePattern:
        """The pattern the next attend call will execute."""
        return self._pattern_for(self.state.capacity, self.state.length)

    def _pattern_for(self, bucket: int, valid_len: int) -> HybridSparsePattern:
        active = tuple(g for g in self._globals if g < valid_len)
        key = (bucket, active)
        pat = self._patterns.get(key)
        if pat is None:
            pat = decode_pattern(self._bands, self._globals, bucket, valid_len)
            self._patterns[key] = pat
        return pat

    def _attend(self) -> np.ndarray:
        state = self.state
        pattern = self._pattern_for(state.capacity, state.length)
        q, k, v = state.padded(state.capacity)
        result = self.salo.attend(
            pattern,
            q[None],
            k[None],
            v[None],
            heads=self.heads,
            scale=self.scale,
            valid_lens=[state.length],
        )
        self.last_output = result.output[0, : state.length]
        return self.last_output

    def prefill(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Ingest the prompt; returns the full (L, hidden) output."""
        if self._state is not None:
            raise RuntimeError("prefill() may only be called once")
        q = np.asarray(q, dtype=float)
        if q.ndim != 2:
            raise ValueError("prompt must be (L, hidden)")
        self._state = KVState(q.shape[1], self.bucket_floor)
        self._state.extend(q, k, v)
        self.steps += 1
        return self._attend().copy()

    def step(
        self, q_row: np.ndarray, k_row: np.ndarray, v_row: np.ndarray
    ) -> np.ndarray:
        """Append one token; returns its (hidden,) attention output."""
        crossed = self.state.append(q_row, k_row, v_row)
        if crossed:
            self.bucket_crossings += 1
        self.steps += 1
        return self._attend()[self.state.length - 1].copy()
