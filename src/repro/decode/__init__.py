"""Autoregressive decode: per-sequence KV state, bucketed incremental
plans, and continuous batching over the shared engine lane axis.

* :class:`DecodeSession` — one sequence, one token per step, plans
  compiled per length bucket and reused via the SALO plan cache.
* :class:`DecodeScheduler` — many sequences folded into one running
  batch; joins and retirements happen between steps.
* :mod:`repro.cluster.decode` builds the fleet-level simulator (TTFT /
  ITL / tokens-per-second) on the same primitives.
"""

from .scheduler import (
    DecodeRequest,
    DecodeRunResult,
    DecodeScheduler,
    DecodeStepReport,
    default_next_token,
)
from .session import DecodeSession, KVState, decode_pattern

__all__ = [
    "DecodeRequest",
    "DecodeRunResult",
    "DecodeScheduler",
    "DecodeSession",
    "DecodeStepReport",
    "KVState",
    "decode_pattern",
    "default_next_token",
]
