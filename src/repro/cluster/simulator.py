"""Heap-driven discrete-event loop over the engine pool.

Three event kinds drive the clock forward on every run:

* **arrival** — a request lands; the pool routes it to a worker, the
  admission policy accepts it (or records a rejection — the overload
  valve) and, if that worker is idle, its batch policy is consulted
  immediately.  Policy consultations may also *shed* queued requests
  whose deadlines became unreachable (``drop_expired``); rejected and
  shed requests are terminal outcomes fed back to closed-loop sources
  exactly like completions, preserving the conservation law
  ``submitted == completed + rejected + shed + failed`` on every
  drained run.
* **service-complete** — a worker finishes a batch: completions are
  recorded, closed-loop sources may inject follow-up arrivals, the
  worker steals work if its own queue ran dry, and the policy is
  consulted for the next batch.
* **batch-close timer** — a holding policy (max-wait / size-latency)
  named a future instant at which an open queue must be re-examined;
  nothing else changes at that time, so the consultation is cheap.

Two more fire only for shedding policies and fault runs respectively:

* **expiry timer** — with ``drop_expired``, every admitted request with
  a finite deadline arms a timer at its absolute deadline; at that
  instant all already-doomed queued requests are shed, so expiry takes
  effect *between* policy consultations too (an idle-queue request no
  longer waits for the next arrival to be recognised as dead).
* **fault events** — with a :class:`~repro.cluster.faults.FaultInjector`
  configured, worker **crash**/**rejoin** instants come straight from
  the specs, a periodic **heartbeat probe** detects silent crashes
  (missed probes: ``up -> suspect -> down``, then the down worker's
  orphans are requeued oldest-deadline-first or failed), and
  **retry** timers re-enqueue transiently failed batch members after
  capped exponential backoff.  Without an (active) injector none of
  these events exist and the run is byte-identical to the fault-free
  simulator.

Simulated time is whatever the configured
:class:`~repro.cluster.pool.ServiceModel` says a batch costs — with the
default :class:`~repro.cluster.pool.CostModelClock`, every duration
derives from the paper's cycle model (``SALO.estimate``) and the run is
fully deterministic: same seed, same report, no wall-clock reads (fault
randomness comes from the injector's own seeded stream).  Ties in the
event heap break by insertion order, which is itself deterministic.

The *measured* counterpart is :class:`~repro.transport.cluster.
TransportCluster`: the same routing/retry/requeue semantics and the
same :class:`~repro.cluster.metrics.MetricsCollector` accounting, but
driven wall-clock over real :class:`~repro.transport.base.
WorkerTransport` workers (including out-of-process ones that can
genuinely be ``kill -9``'d) instead of this event heap.  Claims modelled
here are cross-checked there; the conservation law is pinned in both.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..core.salo import SALO
from ..serving.batching import Batch
from ..serving.request import AttentionRequest
from ..serving.admission import (
    AdmissionContext,
    AdmissionPolicy,
    AdmitAll,
    queue_drain_estimate,
)
from .arrivals import RequestSource
from .faults import FaultInjector, RecoveryConfig, WORKER_SUSPECT, WORKER_UP
from .metrics import MetricsCollector, ClusterReport, RequestRecord
from .policy import BatchPolicy, GreedyFIFOPolicy, recovery_order
from .pool import CircuitBreaker, CostModelClock, EnginePool, ServiceModel, Worker

__all__ = ["SimConfig", "ClusterSimulator", "simulate"]

_ARRIVE, _COMPLETE, _TIMER = 0, 1, 2
_EXPIRE, _CRASH, _REJOIN, _PROBE, _RETRY = 3, 4, 5, 6, 7
_MIN_TIMER_STEP = 1e-9  # forward progress guard for degenerate timers


@dataclass
class SimConfig:
    """Knobs of one cluster simulation.

    ``backend`` names the registered execution backend every worker
    engine is built from (``"functional"``, ``"functional-legacy"``,
    ``"systolic"``, ...; see :func:`repro.api.list_backends`).  A custom
    ``salo_factory`` overrides it and may not be combined with a
    non-default backend.

    ``faults`` is an optional :class:`~repro.cluster.faults.FaultInjector`;
    ``recovery`` holds the heartbeat / retry / requeue knobs that decide
    how the cluster responds to what the injector breaks.  With no
    injector (or an empty one) the run is byte-identical to the
    fault-free simulator — no probes, no RNG draws, no extra events.
    """

    workers: int = 2
    max_batch_size: int = 8
    bucket_floor: int = 16
    pad_to_bucket: bool = False
    steal: bool = True
    affinity_miss_prob: float = 0.1
    policy: BatchPolicy = field(default_factory=GreedyFIFOPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmitAll)
    service: ServiceModel = field(default_factory=CostModelClock)
    salo_factory: Callable[[], SALO] = SALO
    backend: str = "functional"
    faults: Optional[FaultInjector] = None
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)


class ClusterSimulator:
    """Runs one :class:`~repro.cluster.arrivals.RequestSource` to empty."""

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.config = config if config is not None else SimConfig()
        cfg = self.config
        if cfg.salo_factory is SALO:
            factory_kwargs = {"backend": cfg.backend}
        elif cfg.backend != "functional":
            raise ValueError("pass either salo_factory or backend in SimConfig, not both")
        else:
            factory_kwargs = {"salo_factory": cfg.salo_factory}
        self.pool = EnginePool(
            workers=cfg.workers,
            max_batch_size=cfg.max_batch_size,
            bucket_floor=cfg.bucket_floor,
            pad_to_bucket=cfg.pad_to_bucket,
            affinity_miss_prob=cfg.affinity_miss_prob,
            **factory_kwargs,
        )
        self.metrics = MetricsCollector()
        self._heap: List[Tuple[float, int, int, object]] = []
        self._seq = 0
        self._routed: Dict[Hashable, int] = {}  # request id -> routed worker id
        self._timer_armed: Dict[int, float] = {}  # worker id -> armed time
        # --- fault tolerance state (empty and inert on fault-free runs) ---
        self._injector = cfg.faults if cfg.faults is not None and cfg.faults.active else None
        if cfg.faults is not None:
            cfg.faults.validate_workers(cfg.workers)
        self._recovery = cfg.recovery
        if cfg.recovery.breaker_threshold is not None:
            # Grey-failure valve: one breaker per worker, watching its
            # own dispatch outcomes (see CircuitBreaker in pool.py).
            for w in self.pool.workers:
                w.breaker = CircuitBreaker(
                    threshold=cfg.recovery.breaker_threshold,
                    window=cfg.recovery.breaker_window,
                    min_samples=cfg.recovery.breaker_min_samples,
                    cooldown_s=cfg.recovery.breaker_cooldown_s,
                )
        self._inflight: Dict[int, Tuple[Batch, float, float]] = {}  # wid -> (batch, t0, t1)
        self._lost: Dict[int, List[AttentionRequest]] = {}  # wid -> orphaned in-flight
        self._attempts: Dict[Hashable, int] = {}  # request id -> transient failures so far
        self._retries = 0
        self._requeues = 0

    # ------------------------------------------------------------------
    def _push(self, t: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, kind, payload))

    def _arm_timer(self, worker: Worker, t: float, now: float) -> None:
        t = max(t, now + _MIN_TIMER_STEP)
        armed = self._timer_armed.get(worker.wid)
        if armed is not None and armed <= t:
            return  # an earlier (or equal) consultation is already scheduled
        self._timer_armed[worker.wid] = t
        self._push(t, _TIMER, worker)

    def _dispatch(self, worker: Worker, now: float) -> None:
        """Consult the policy; launch a batch or arm its re-check timer.

        A dead worker never dispatches: a crashed-but-undetected one
        silently sits on its queue (that is what detection latency
        means), a marked-down one has no queue left to consult.
        """
        if worker.busy or not worker.alive or not worker.healthy:
            return
        decision = self.config.policy.next_batch(worker.queue, now)
        for req in decision.shed:
            self._routed.pop(req.request_id, None)
            self.metrics.note_shed(req, now)
            self._drop_feedback(req, now)
        batch = decision.batch
        if batch is not None:
            cold = worker.is_cold_plan(batch)
            service = self.config.service.service_s(worker, batch, cold)
            failed = False
            if self._injector is not None:
                service *= self._injector.service_factor(worker.wid, now)
                failed = self._injector.dispatch_fails(worker.wid, now)
            worker.note_dispatch(batch, service, cold)
            self._inflight[worker.wid] = (batch, now, now + service)
            self._push(
                now + service,
                _COMPLETE,
                (worker, batch, now, worker.crash_epoch, failed),
            )
        elif decision.next_check_s is not None:
            self._arm_timer(worker, decision.next_check_s, now)

    def _drop_feedback(self, request: AttentionRequest, now: float) -> None:
        """Tell the source a request left the system without being served.

        A rejection or shed is a *terminal* outcome for the request, and
        closed-loop clients must learn of it the same way they learn of a
        completion — otherwise their request budget would deadlock
        waiting on work that will never finish.
        """
        for req in self._source.on_complete(request, now):
            self._push(max(req.arrival_s, now), _ARRIVE, req)

    def _admission_context(self, worker: Worker, request: AttentionRequest, now: float) -> AdmissionContext:
        """Admission view of the routed worker at ``now``.

        The wait estimate is the batch-amortisation-aware queue-drain
        model (:func:`repro.serving.admission.queue_drain_estimate`):
        the backlog drains in batches of ``max_batch_size``, each
        charging one batch overhead — deterministic, cheap (the worker's
        SALO stats cache absorbs repeats), and *lazy*: policies that
        never read it never pay for it.
        """

        def estimate() -> Tuple[float, float]:
            unit = worker.salo.estimate(
                request.pattern, heads=request.heads, head_dim=request.head_dim
            ).latency_s
            overhead = getattr(self.config.service, "batch_overhead_s", 0.0)
            wait = queue_drain_estimate(
                worker.depth(), unit, overhead, self.config.max_batch_size
            )
            return (wait, unit + overhead)

        return AdmissionContext(now=now, depth=worker.depth(), estimator=estimate)

    # ------------------------------------------------------------------
    def _on_arrive(self, request: AttentionRequest, now: float) -> None:
        self.metrics.note_arrival(now)
        worker = self.pool.route(request, now)
        ctx = self._admission_context(worker, request, now)
        if not self.config.admission.admit(request, ctx):
            self.metrics.note_rejection(request, now)
            self._drop_feedback(request, now)
            return
        self._routed[request.request_id] = worker.wid
        worker.queue.enqueue(request)
        if self.config.policy.drop_expired and math.isfinite(request.absolute_deadline_s):
            # Expiry timer: shed the moment the deadline passes, not at
            # the next policy consultation.  The handler sweeps globally,
            # so one event per admitted request suffices even after the
            # request is stolen, requeued or retried onto another worker.
            self._push(request.absolute_deadline_s, _EXPIRE, None)
        self._dispatch(worker, now)

    def _on_complete(
        self,
        worker: Worker,
        batch: Batch,
        dispatched: float,
        epoch: int,
        failed: bool,
        now: float,
    ) -> None:
        if epoch != worker.crash_epoch:
            # The worker crashed (and possibly rejoined) after launching
            # this batch: the completion never happened.  Its members
            # were captured as orphans at crash time and are recovered
            # when the failure is detected — not here.
            return
        self._inflight.pop(worker.wid, None)
        worker.note_complete()
        if worker.breaker is not None:
            worker.breaker.record(not failed, now)
        if failed:
            self._retry_or_fail(batch, now)
            self._dispatch(worker, now)
            return
        source_arrivals: List[AttentionRequest] = []
        for req in batch.requests:
            self._attempts.pop(req.request_id, None)
            self.metrics.note_completion(
                RequestRecord(
                    request_id=req.request_id,
                    slo_class=req.slo_class,
                    arrival_s=req.arrival_s,
                    dispatch_s=dispatched,
                    complete_s=now,
                    worker=worker.wid,
                    batch_size=batch.size,
                    deadline_s=req.deadline_s,
                    stolen=self._routed.get(req.request_id, worker.wid) != worker.wid,
                )
            )
            source_arrivals.extend(self._source.on_complete(req, now))
        for req in source_arrivals:
            self._push(max(req.arrival_s, now), _ARRIVE, req)
        self._dispatch(worker, now)

    def _balance(self, now: float) -> None:
        """Idle workers with dry queues steal from saturated peers.

        Runs after every event, so an engine never sits idle while a
        *busy* peer has backlog (idle peers holding requests open under a
        max-wait policy are off limits — see ``EnginePool.steal_into``).
        Dead or down workers cannot steal; a crashed-but-undetected peer
        can still be stolen *from* (its queue is real work, and stealing
        it is recovery the thief does not even know it is performing).
        """
        if not self.config.steal:
            return
        for worker in self.pool.workers:
            if worker.busy or worker.queue.pending:
                continue
            if not worker.alive or not worker.healthy:
                continue
            if worker.breaker_open(now):
                # a breaker-open thief would drag work onto the very
                # worker the breaker is shielding traffic from
                continue
            if self.pool.steal_into(worker, now):
                self._dispatch(worker, now)

    # ------------------------------------------------------------------
    # Fault handling (none of these run without an active injector,
    # except _on_expire which belongs to drop_expired policies).
    def _fail(self, request: AttentionRequest, now: float) -> None:
        """Terminal failure: budget exhausted or nowhere left to requeue."""
        self._routed.pop(request.request_id, None)
        self._attempts.pop(request.request_id, None)
        self.metrics.note_failed(request, now)
        self._drop_feedback(request, now)

    def _shed_now(self, request: AttentionRequest, now: float) -> None:
        self._routed.pop(request.request_id, None)
        self.metrics.note_shed(request, now)
        self._drop_feedback(request, now)

    def _reenqueue(self, request: AttentionRequest, now: float) -> bool:
        """Route a recovered request onto a worker believed healthy.

        False when every worker is marked down — there is nowhere to
        put the request and the caller must fail it.
        """
        target = self.pool.route(request, now)
        if not target.healthy:
            return False
        self._routed[request.request_id] = target.wid
        target.queue.enqueue(request)
        self._dispatch(target, now)
        return True

    def _recover_requests(self, requests: List[AttentionRequest], now: float) -> None:
        """Give a down worker's orphans their terminal-or-requeued fate."""
        for req in recovery_order(requests):
            if self.config.policy.drop_expired and req.absolute_deadline_s <= now:
                self._shed_now(req, now)
            elif self._recovery.requeue and self._reenqueue(req, now):
                self._requeues += 1
            else:
                self._fail(req, now)

    def _retry_or_fail(self, batch: Batch, now: float) -> None:
        """A dispatch came back with a transient error: back off and retry
        each member against its budget; the attempt past the budget is
        terminal."""
        rec = self._recovery
        for req in batch.requests:
            attempt = self._attempts.get(req.request_id, 0) + 1
            self._attempts[req.request_id] = attempt
            if attempt > rec.max_retries:
                self._fail(req, now)
                continue
            self._retries += 1
            delay = rec.backoff_s(attempt)
            if self._injector is not None:
                delay += self._injector.jitter(delay, rec.backoff_jitter)
            self._push(now + delay, _RETRY, req)

    def _on_retry(self, request: AttentionRequest, now: float) -> None:
        if self.config.policy.drop_expired and request.absolute_deadline_s <= now:
            self._shed_now(request, now)  # the backoff outlived the deadline
        elif not self._reenqueue(request, now):
            self._fail(request, now)

    def _on_expire(self, now: float) -> None:
        """An admitted request's deadline just passed: sweep all queues."""
        for worker in self.pool.workers:
            for req in worker.queue.prune(lambda r: r.absolute_deadline_s <= now):
                self._shed_now(req, now)

    def _on_crash(self, wid: int, now: float) -> None:
        worker = self.pool.workers[wid]
        if not worker.alive:
            return  # overlapping crash specs: already dead
        meta = self._inflight.pop(wid, None)
        if meta is not None:
            batch, _, end_s = meta
            # The unfinished remainder of the batch never ran.
            worker.busy_s -= max(0.0, end_s - now)
            self._lost.setdefault(wid, []).extend(batch.requests)
        worker.crash(now)

    def _on_rejoin(self, wid: int, now: float) -> None:
        worker = self.pool.workers[wid]
        if worker.alive:
            return  # spurious (e.g. the crash spec itself was a no-op)
        worker.rejoin(now)
        # A crash short enough to dodge detection still lost its
        # in-flight batch; the replacement process recovers it now.
        orphans = self._lost.pop(wid, [])
        if orphans:
            self._recover_requests(orphans, now)
        self._dispatch(worker, now)

    def _mark_down(self, worker: Worker, now: float) -> None:
        worker.mark_down(now)
        self._inflight.pop(worker.wid, None)
        orphans = self._lost.pop(worker.wid, [])
        orphans.extend(worker.queue.prune(lambda r: True))
        if orphans:
            self._recover_requests(orphans, now)

    def _on_probe(self, now: float) -> None:
        """Heartbeat sweep: refresh live workers, time out silent ones."""
        rec = self._recovery
        for worker in self.pool.workers:
            if worker.alive:
                worker.last_heartbeat_s = now
                if worker.state == WORKER_SUSPECT:
                    worker.state = WORKER_UP
            elif worker.healthy:
                if worker.state == WORKER_UP:
                    worker.state = WORKER_SUSPECT
                if now - worker.last_heartbeat_s >= rec.heartbeat_timeout_s:
                    self._mark_down(worker, now)
            elif worker.queue.pending:
                # Arrivals routed while every worker was down: drain them
                # so the run cannot wedge on an unreachable queue.
                self._recover_requests(worker.queue.prune(lambda r: True), now)
        if (
            self._heap
            or self.pool.pending
            or any(w.busy for w in self.pool.workers)
            or any(self._lost.values())
        ):
            self._push(now + rec.heartbeat_interval_s, _PROBE, None)

    # ------------------------------------------------------------------
    def run(self, source: RequestSource) -> ClusterReport:
        """Drive the event loop until every queued request completed."""
        self._source = source
        for req in source.initial():
            self._push(req.arrival_s, _ARRIVE, req)
        if self._injector is not None:
            for t, wid in self._injector.crash_events():
                self._push(t, _CRASH, wid)
            for t, wid in self._injector.rejoin_events():
                self._push(t, _REJOIN, wid)
            self._push(self._recovery.heartbeat_interval_s, _PROBE, None)
        while self._heap:
            t, _, kind, payload = heapq.heappop(self._heap)
            if kind == _ARRIVE:
                self._on_arrive(payload, t)
            elif kind == _COMPLETE:
                worker, batch, dispatched, epoch, failed = payload
                self._on_complete(worker, batch, dispatched, epoch, failed, t)
            elif kind == _TIMER:
                worker = payload
                if self._timer_armed.get(worker.wid) is not None and t >= self._timer_armed[worker.wid]:
                    del self._timer_armed[worker.wid]
                self._dispatch(worker, t)
            elif kind == _EXPIRE:
                self._on_expire(t)
            elif kind == _CRASH:
                self._on_crash(payload, t)
            elif kind == _REJOIN:
                self._on_rejoin(payload, t)
            elif kind == _PROBE:
                self._on_probe(t)
            else:  # _RETRY
                self._on_retry(payload, t)
            self._balance(t)
            self.metrics.sample(t, self.pool.pending, self.pool.busy_workers)
        lost = sum(len(v) for v in self._lost.values())
        if self.pool.pending or lost:  # pragma: no cover - policy bug guard
            raise RuntimeError(
                f"simulation drained its event heap with {self.pool.pending} "
                f"requests still queued and {lost} lost in-flight (policy "
                "never closed a batch, or recovery never ran)"
            )
        return self.metrics.report(
            self.pool.workers,
            self.pool.steals,
            retries=self._retries,
            requeues=self._requeues,
        )


def simulate(source: RequestSource, config: Optional[SimConfig] = None) -> ClusterReport:
    """One-shot convenience wrapper: build a simulator, run the source."""
    return ClusterSimulator(config).run(source)
