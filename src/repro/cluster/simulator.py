"""Heap-driven discrete-event loop over the engine pool.

Three event kinds drive the clock forward:

* **arrival** — a request lands; the pool routes it to a worker, the
  admission policy accepts it (or records a rejection — the overload
  valve) and, if that worker is idle, its batch policy is consulted
  immediately.  Policy consultations may also *shed* queued requests
  whose deadlines became unreachable (``drop_expired``); rejected and
  shed requests are terminal outcomes fed back to closed-loop sources
  exactly like completions, preserving the conservation law
  ``submitted == completed + rejected + shed`` on every drained run.
* **service-complete** — a worker finishes a batch: completions are
  recorded, closed-loop sources may inject follow-up arrivals, the
  worker steals work if its own queue ran dry, and the policy is
  consulted for the next batch.
* **batch-close timer** — a holding policy (max-wait / size-latency)
  named a future instant at which an open queue must be re-examined;
  nothing else changes at that time, so the consultation is cheap.

Simulated time is whatever the configured
:class:`~repro.cluster.pool.ServiceModel` says a batch costs — with the
default :class:`~repro.cluster.pool.CostModelClock`, every duration
derives from the paper's cycle model (``SALO.estimate``) and the run is
fully deterministic: same seed, same report, no wall-clock reads.  Ties
in the event heap break by insertion order, which is itself
deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..core.salo import SALO
from ..serving.batching import Batch
from ..serving.request import AttentionRequest
from ..serving.admission import AdmissionContext, AdmissionPolicy, AdmitAll
from .arrivals import RequestSource
from .metrics import MetricsCollector, ClusterReport, RequestRecord
from .policy import BatchPolicy, GreedyFIFOPolicy
from .pool import CostModelClock, EnginePool, ServiceModel, Worker

__all__ = ["SimConfig", "ClusterSimulator", "simulate"]

_ARRIVE, _COMPLETE, _TIMER = 0, 1, 2
_MIN_TIMER_STEP = 1e-9  # forward progress guard for degenerate timers


@dataclass
class SimConfig:
    """Knobs of one cluster simulation.

    ``backend`` names the registered execution backend every worker
    engine is built from (``"functional"``, ``"functional-legacy"``,
    ``"systolic"``, ...; see :func:`repro.api.list_backends`).  A custom
    ``salo_factory`` overrides it and may not be combined with a
    non-default backend.
    """

    workers: int = 2
    max_batch_size: int = 8
    bucket_floor: int = 16
    pad_to_bucket: bool = False
    steal: bool = True
    affinity_miss_prob: float = 0.1
    policy: BatchPolicy = field(default_factory=GreedyFIFOPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmitAll)
    service: ServiceModel = field(default_factory=CostModelClock)
    salo_factory: Callable[[], SALO] = SALO
    backend: str = "functional"


class ClusterSimulator:
    """Runs one :class:`~repro.cluster.arrivals.RequestSource` to empty."""

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.config = config if config is not None else SimConfig()
        cfg = self.config
        if cfg.salo_factory is SALO:
            factory_kwargs = {"backend": cfg.backend}
        elif cfg.backend != "functional":
            raise ValueError("pass either salo_factory or backend in SimConfig, not both")
        else:
            factory_kwargs = {"salo_factory": cfg.salo_factory}
        self.pool = EnginePool(
            workers=cfg.workers,
            max_batch_size=cfg.max_batch_size,
            bucket_floor=cfg.bucket_floor,
            pad_to_bucket=cfg.pad_to_bucket,
            affinity_miss_prob=cfg.affinity_miss_prob,
            **factory_kwargs,
        )
        self.metrics = MetricsCollector()
        self._heap: List[Tuple[float, int, int, object]] = []
        self._seq = 0
        self._routed: Dict[Hashable, int] = {}  # request id -> routed worker id
        self._timer_armed: Dict[int, float] = {}  # worker id -> armed time

    # ------------------------------------------------------------------
    def _push(self, t: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, kind, payload))

    def _arm_timer(self, worker: Worker, t: float, now: float) -> None:
        t = max(t, now + _MIN_TIMER_STEP)
        armed = self._timer_armed.get(worker.wid)
        if armed is not None and armed <= t:
            return  # an earlier (or equal) consultation is already scheduled
        self._timer_armed[worker.wid] = t
        self._push(t, _TIMER, worker)

    def _dispatch(self, worker: Worker, now: float) -> None:
        """Consult the policy; launch a batch or arm its re-check timer."""
        if worker.busy:
            return
        decision = self.config.policy.next_batch(worker.queue, now)
        for req in decision.shed:
            self._routed.pop(req.request_id, None)
            self.metrics.note_shed(req, now)
            self._drop_feedback(req, now)
        batch = decision.batch
        if batch is not None:
            cold = worker.is_cold_plan(batch)
            service = self.config.service.service_s(worker, batch, cold)
            worker.note_dispatch(batch, service, cold)
            self._push(now + service, _COMPLETE, (worker, batch, now))
        elif decision.next_check_s is not None:
            self._arm_timer(worker, decision.next_check_s, now)

    def _drop_feedback(self, request: AttentionRequest, now: float) -> None:
        """Tell the source a request left the system without being served.

        A rejection or shed is a *terminal* outcome for the request, and
        closed-loop clients must learn of it the same way they learn of a
        completion — otherwise their request budget would deadlock
        waiting on work that will never finish.
        """
        for req in self._source.on_complete(request, now):
            self._push(max(req.arrival_s, now), _ARRIVE, req)

    def _admission_context(self, worker: Worker, request: AttentionRequest, now: float) -> AdmissionContext:
        """Admission view of the routed worker at ``now``.

        The wait estimate is deliberately coarse — backlog depth times
        the request's own cost-model unit, plus one batch overhead — but
        it is deterministic, cheap (the worker's SALO stats cache absorbs
        repeats), and *lazy*: policies that never read it never pay for
        it.
        """

        def estimate() -> Tuple[float, float]:
            unit = worker.salo.estimate(
                request.pattern, heads=request.heads, head_dim=request.head_dim
            ).latency_s
            overhead = getattr(self.config.service, "batch_overhead_s", 0.0)
            return (worker.depth() * unit + overhead, unit + overhead)

        return AdmissionContext(now=now, depth=worker.depth(), estimator=estimate)

    # ------------------------------------------------------------------
    def _on_arrive(self, request: AttentionRequest, now: float) -> None:
        self.metrics.note_arrival(now)
        worker = self.pool.route(request)
        ctx = self._admission_context(worker, request, now)
        if not self.config.admission.admit(request, ctx):
            self.metrics.note_rejection(request, now)
            self._drop_feedback(request, now)
            return
        self._routed[request.request_id] = worker.wid
        worker.queue.enqueue(request)
        self._dispatch(worker, now)

    def _on_complete(self, worker: Worker, batch: Batch, dispatched: float, now: float) -> None:
        worker.note_complete()
        source_arrivals: List[AttentionRequest] = []
        for req in batch.requests:
            self.metrics.note_completion(
                RequestRecord(
                    request_id=req.request_id,
                    slo_class=req.slo_class,
                    arrival_s=req.arrival_s,
                    dispatch_s=dispatched,
                    complete_s=now,
                    worker=worker.wid,
                    batch_size=batch.size,
                    deadline_s=req.deadline_s,
                    stolen=self._routed.get(req.request_id, worker.wid) != worker.wid,
                )
            )
            source_arrivals.extend(self._source.on_complete(req, now))
        for req in source_arrivals:
            self._push(max(req.arrival_s, now), _ARRIVE, req)
        self._dispatch(worker, now)

    def _balance(self, now: float) -> None:
        """Idle workers with dry queues steal from saturated peers.

        Runs after every event, so an engine never sits idle while a
        *busy* peer has backlog (idle peers holding requests open under a
        max-wait policy are off limits — see ``EnginePool.steal_into``).
        """
        if not self.config.steal:
            return
        for worker in self.pool.workers:
            if worker.busy or worker.queue.pending:
                continue
            if self.pool.steal_into(worker, now):
                self._dispatch(worker, now)

    # ------------------------------------------------------------------
    def run(self, source: RequestSource) -> ClusterReport:
        """Drive the event loop until every queued request completed."""
        self._source = source
        for req in source.initial():
            self._push(req.arrival_s, _ARRIVE, req)
        while self._heap:
            t, _, kind, payload = heapq.heappop(self._heap)
            if kind == _ARRIVE:
                self._on_arrive(payload, t)
            elif kind == _COMPLETE:
                worker, batch, dispatched = payload
                self._on_complete(worker, batch, dispatched, t)
            else:  # _TIMER
                worker = payload
                if self._timer_armed.get(worker.wid) is not None and t >= self._timer_armed[worker.wid]:
                    del self._timer_armed[worker.wid]
                self._dispatch(worker, t)
            self._balance(t)
            self.metrics.sample(t, self.pool.pending, self.pool.busy_workers)
        if self.pool.pending:  # pragma: no cover - policy bug guard
            raise RuntimeError(
                f"simulation drained its event heap with {self.pool.pending} "
                "requests still queued (policy never closed a batch)"
            )
        return self.metrics.report(self.pool.workers, self.pool.steals)


def simulate(source: RequestSource, config: Optional[SimConfig] = None) -> ClusterReport:
    """One-shot convenience wrapper: build a simulator, run the source."""
    return ClusterSimulator(config).run(source)
