"""Arrival processes: the traffic a simulated SALO cluster serves.

Three open-loop generators (Poisson, MMPP-style on-off bursts, recorded
trace replay) and one closed-loop source (a fixed client population with
think times).  All of them emit timestamped
:class:`~repro.serving.request.AttentionRequest` objects over the same
pattern-family mix the serve CLI's synthetic traces use, decorated with
an SLO class and its latency deadline — the unit the discrete-event
simulator consumes.

Open-loop sources fix the arrival times up front (load independent of
service capacity — the "heavy traffic" regime); the closed-loop source
reacts to completions (each client keeps one request outstanding), which
self-throttles at the cluster's capacity.  Both are consumed through the
:class:`RequestSource` interface so the simulator's event loop does not
care which regime drives it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..patterns.base import AttentionPattern
from ..serving.request import AttentionRequest
from ..serving.trace import TraceSpec, pattern_families

__all__ = [
    "SLOClass",
    "DEFAULT_SLO_CLASSES",
    "WorkloadSpec",
    "RequestFactory",
    "ArrivalProcess",
    "PoissonProcess",
    "OnOffProcess",
    "RequestSource",
    "OpenLoopSource",
    "ClosedLoopSource",
    "open_loop",
    "replay_source",
]


@dataclass(frozen=True)
class SLOClass:
    """One service class: a name, a latency budget, a traffic share."""

    name: str
    deadline_s: Optional[float]  # None: no deadline (best effort)
    share: float = 1.0  # sampling weight within the workload mix

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.share <= 0:
            raise ValueError(f"share must be positive, got {self.share}")


DEFAULT_SLO_CLASSES: Tuple[SLOClass, ...] = (
    SLOClass("interactive", deadline_s=0.05, share=0.5),
    SLOClass("bulk", deadline_s=0.5, share=0.5),
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of the simulated traffic (mirrors ``TraceSpec`` + SLOs)."""

    num_requests: int = 128
    n: int = 256
    window: int = 32
    heads: int = 2
    head_dim: int = 8
    global_tokens: Tuple[int, ...] = (0,)
    mixed: bool = True  # several pattern families / lengths
    slo_classes: Tuple[SLOClass, ...] = DEFAULT_SLO_CLASSES
    seed: int = 0

    def trace_spec(self) -> TraceSpec:
        return TraceSpec(
            num_requests=self.num_requests,
            n=self.n,
            window=self.window,
            heads=self.heads,
            head_dim=self.head_dim,
            global_tokens=self.global_tokens,
            mixed=self.mixed,
            seed=self.seed,
        )


class RequestFactory:
    """Draws requests over the workload's pattern families and SLO mix.

    One RNG stream (seeded by the spec) drives family choice, data and
    SLO class, so a workload is reproducible independent of the arrival
    process layered on top.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.families: List[AttentionPattern] = pattern_families(spec.trace_spec())
        self.rng = np.random.default_rng(spec.seed)
        self._serial = 0
        shares = np.asarray([c.share for c in spec.slo_classes], dtype=np.float64)
        self._class_p = shares / shares.sum()

    def make(self, arrival_s: float) -> AttentionRequest:
        spec = self.spec
        rng = self.rng
        pattern = self.families[int(rng.integers(len(self.families)))]
        hidden = spec.heads * spec.head_dim
        q, k, v = (rng.standard_normal((pattern.n, hidden)) for _ in range(3))
        cls = spec.slo_classes[int(rng.choice(len(spec.slo_classes), p=self._class_p))]
        self._serial += 1
        return AttentionRequest(
            request_id=self._serial,
            pattern=pattern,
            q=q,
            k=k,
            v=v,
            heads=spec.heads,
            arrival_s=arrival_s,
            deadline_s=cls.deadline_s,
            slo_class=cls.name,
        )


# ----------------------------------------------------------------------
# Open-loop arrival processes
# ----------------------------------------------------------------------
class ArrivalProcess:
    """Generates ``count`` monotone arrival timestamps (open loop)."""

    name = "abstract"

    def times(self, rng: np.random.Generator, count: int) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at a constant mean rate."""

    rate_rps: float
    name: str = field(default="poisson", init=False)

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    def times(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.cumsum(rng.exponential(1.0 / self.rate_rps, size=count))


@dataclass(frozen=True)
class OnOffProcess(ArrivalProcess):
    """Two-state modulated Poisson process (MMPP-style bursts).

    The source alternates between an *on* state emitting at
    ``rate_on_rps`` and an *off* state emitting at ``rate_off_rps``
    (often 0); state residence times are exponential with the given
    means.  Mean rate is the residence-weighted mix; burstiness (the
    on/off rate contrast) is what stresses deadline-aware policies.
    """

    rate_on_rps: float
    rate_off_rps: float = 0.0
    mean_on_s: float = 0.01
    mean_off_s: float = 0.01
    name: str = field(default="on-off", init=False)

    def __post_init__(self) -> None:
        if self.rate_on_rps <= 0:
            raise ValueError(f"rate_on_rps must be positive, got {self.rate_on_rps}")
        if self.rate_off_rps < 0:
            raise ValueError(f"rate_off_rps must be >= 0, got {self.rate_off_rps}")
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("state residence means must be positive")

    def times(self, rng: np.random.Generator, count: int) -> np.ndarray:
        out = np.empty(count, dtype=np.float64)
        t = 0.0
        on = True
        state_end = rng.exponential(self.mean_on_s)
        emitted = 0
        while emitted < count:
            rate = self.rate_on_rps if on else self.rate_off_rps
            if rate <= 0:
                t = state_end
                on = not on
                state_end = t + rng.exponential(self.mean_on_s if on else self.mean_off_s)
                continue
            gap = rng.exponential(1.0 / rate)
            if t + gap <= state_end:
                t += gap
                out[emitted] = t
                emitted += 1
            else:
                # No arrival before the state flips; advance to the flip.
                t = state_end
                on = not on
                state_end = t + rng.exponential(self.mean_on_s if on else self.mean_off_s)
        return out


# ----------------------------------------------------------------------
# Sources: what the simulator's event loop consumes
# ----------------------------------------------------------------------
class RequestSource:
    """Feeds the simulator: initial arrivals + completion reactions."""

    def initial(self) -> List[AttentionRequest]:
        raise NotImplementedError

    def on_complete(self, request: AttentionRequest, now: float) -> List[AttentionRequest]:
        """Arrivals triggered by a completion (closed-loop feedback)."""
        return []


class OpenLoopSource(RequestSource):
    """A fixed, pre-timestamped request list (rate independent of load)."""

    def __init__(self, requests: Sequence[AttentionRequest]) -> None:
        self.requests = list(requests)

    def initial(self) -> List[AttentionRequest]:
        return list(self.requests)


def open_loop(spec: WorkloadSpec, process: ArrivalProcess) -> OpenLoopSource:
    """Workload + arrival process -> a replayable open-loop source.

    A separate RNG stream (offset seed) drives the arrival process so
    the request mix is identical across processes — policy comparisons
    then see the same work at different timings.
    """
    factory = RequestFactory(spec)
    times = process.times(np.random.default_rng(spec.seed + 0x9E3779B9), spec.num_requests)
    if np.any(np.diff(times) < 0):
        raise ValueError(f"arrival process {process.name} produced non-monotone times")
    return OpenLoopSource([factory.make(float(t)) for t in times])


def replay_source(
    requests: Sequence[AttentionRequest],
    slo_classes: Optional[Sequence[SLOClass]] = None,
    seed: int = 0,
) -> OpenLoopSource:
    """Replay a recorded trace (e.g. ``serving.synthetic_trace`` with an
    ``ArrivalSpec``) as simulator traffic — the serving-layer bridge.

    Requests keep their recorded arrival timestamps; those without a
    deadline are assigned SLO classes from ``slo_classes`` (sampled by
    share) so per-class accounting stays meaningful.
    """
    rng = np.random.default_rng(seed)
    classes = tuple(slo_classes) if slo_classes else DEFAULT_SLO_CLASSES
    shares = np.asarray([c.share for c in classes], dtype=np.float64)
    p = shares / shares.sum()
    decorated: List[AttentionRequest] = []
    for req in sorted(requests, key=lambda r: r.arrival_s):
        if req.deadline_s is None:
            cls = classes[int(rng.choice(len(classes), p=p))]
            req = AttentionRequest(
                request_id=req.request_id,
                pattern=req.pattern,
                q=req.q,
                k=req.k,
                v=req.v,
                heads=req.heads,
                arrival_s=req.arrival_s,
                deadline_s=cls.deadline_s,
                slo_class=cls.name,
            )
        decorated.append(req)
    return OpenLoopSource(decorated)


class ClosedLoopSource(RequestSource):
    """A fixed client population with think times (self-throttling).

    Each of ``clients`` keeps at most one request outstanding: it
    submits, waits for completion, thinks for an exponential
    ``think_time_s``, then submits again, until the workload's request
    budget is spent.  Offered load adapts to cluster capacity — the
    saturation-measurement counterpart of the open-loop generators.
    """

    def __init__(
        self, spec: WorkloadSpec, clients: int, think_time_s: float = 0.0
    ) -> None:
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if think_time_s < 0:
            raise ValueError(f"think_time_s must be >= 0, got {think_time_s}")
        self.spec = spec
        self.clients = min(clients, spec.num_requests)
        self.think_time_s = think_time_s
        self.factory = RequestFactory(spec)
        self._think_rng = np.random.default_rng(spec.seed + 0x51F15EED)
        self._remaining = spec.num_requests

    def _next(self, at: float) -> AttentionRequest:
        self._remaining -= 1
        return self.factory.make(at)

    def initial(self) -> List[AttentionRequest]:
        return [self._next(0.0) for _ in range(min(self.clients, self._remaining))]

    def on_complete(self, request: AttentionRequest, now: float) -> List[AttentionRequest]:
        if self._remaining <= 0:
            return []
        think = (
            float(self._think_rng.exponential(self.think_time_s))
            if self.think_time_s > 0
            else 0.0
        )
        return [self._next(now + think)]
