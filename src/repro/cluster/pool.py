"""Engine pool: N SALO workers, plan-affinity routing, work stealing.

Each :class:`Worker` owns a full :class:`~repro.core.salo.SALO` instance
(its *warm* plan cache is the point: compiled plans are per-engine
state) plus a plan-keyed request queue.  The :class:`EnginePool` routes
arrivals by scoring workers on *cache-hit probability over queue
pressure* — a worker that has served a structure before will skip
scheduling, compilation and the cost models on a repeat, so sending the
repeat there is usually worth a slightly deeper queue.  When a worker
runs dry it steals queued work from the most loaded peer, trading a cold
compile for idleness.

Service-time clocks
-------------------
The simulator charges a batch's service time through a
:class:`ServiceModel`:

* :class:`CostModelClock` — **deterministic**: the paper's cycle model
  via ``SALO.estimate`` is the service-time oracle (the accelerator runs
  the plan once per sequence, so a batch of ``b`` costs ``b`` times the
  per-sequence latency), plus a host-side dispatch overhead per batch
  and a cold-compile penalty the first time a worker serves a structure.
  Both host-side terms are **calibrated from the committed bench
  snapshot** (``BENCH_engines.json``): the dispatch overhead is the
  measured sequential-vs-batched attend gap, and the compile penalty is
  a measured per-pass rate times the served plan's own pass count, so a
  4096-token longformer pays ~200x the cold cost of a toy plan instead
  of one flat constant.  Flat seed-era constants remain as the fallback
  when no snapshot ships.  No wall clock is read anywhere on this path.
* :class:`MeasuredClock` — executes the batch on the worker's engine and
  uses the measured wall time; grounding runs that trade determinism for
  end-to-end realism.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from ..core.salo import SALO
from ..serving.batching import Batch, BatchScheduler
from ..serving.request import AttentionRequest
from ..serving.session import execute_batch
from .faults import WORKER_DOWN, WORKER_UP

__all__ = [
    "CircuitBreaker",
    "Worker",
    "ServiceModel",
    "CostModelClock",
    "MeasuredClock",
    "EnginePool",
    "measured_clock_costs",
    "service_scales",
    "INTERACTIVE_BUDGET",
    "BULK_BUDGET",
]

# Default SLO deadline budgets as multiples of the dispatch unit (one
# request's cost-model latency plus a full per-batch overhead): shared
# by the CLI `simulate` defaults and the serving_capacity sweep so their
# deadline semantics cannot drift apart.
INTERACTIVE_BUDGET = 30.0
BULK_BUDGET = 400.0

# ----------------------------------------------------------------------
# Measured calibration for CostModelClock
# ----------------------------------------------------------------------

#: Seed-era flat constants, kept as the fallback when the bench snapshot
#: is missing (pruned checkout, installed package) or incomplete.
_FALLBACK_BATCH_OVERHEAD_S = 2e-5
_FALLBACK_COLD_COMPILE_S = 5e-4

_BENCH_SNAPSHOT = Path(__file__).resolve().parents[3] / "BENCH_engines.json"

_calibration: Optional[Tuple[Optional[float], Optional[float]]] = None
_compile_bench_passes: Optional[int] = None


def _bench_plan_passes() -> int:
    """Structural pass count of the compile bench's plan.

    ``test_plan_compile_longformer_4096`` reports one mean for compiling
    the whole longformer(4096, 512) plan; dividing by this count turns
    it into a per-pass rate.  The count comes from actually scheduling
    that pattern (once per process, cached) so the rate stays honest if
    the scheduler's pass decomposition ever changes.
    """
    global _compile_bench_passes
    if _compile_bench_passes is None:
        from ..core.config import HardwareConfig
        from ..patterns.library import longformer_pattern
        from ..scheduler.scheduler import DataScheduler

        plan = DataScheduler(HardwareConfig()).schedule(
            longformer_pattern(4096, 512, (0,)), heads=12, head_dim=64
        )
        _compile_bench_passes = len(plan.passes)
    return _compile_bench_passes


def measured_clock_costs() -> Tuple[Optional[float], Optional[float]]:
    """(dispatch overhead s, compile s per pass) from the bench snapshot.

    The dispatch overhead is the measured gap between eight sequential
    single-sequence attends and one batched attend of eight — seven
    extra engine dispatches — divided by seven; it is what one batch
    amortises, so :class:`CostModelClock` charges it once per batch.
    The compile rate divides the cold plan-compile bench's mean by that
    plan's structural pass count (index-tensor compilation is linear in
    passes).  Either element is ``None`` when the snapshot, or the bench
    it needs, is absent; callers then fall back to the flat constants.
    """
    global _calibration
    if _calibration is None:
        overhead = rate = None
        try:
            bench = json.loads(_BENCH_SNAPSHOT.read_text())["benchmarks"]
        except (OSError, KeyError, ValueError):  # pragma: no cover - no snapshot
            bench = {}
        try:
            seq = float(bench["test_attend_sequential_8"]["mean_s"])
            bat = float(bench["test_attend_batch_8"]["mean_s"])
            if seq > bat:
                overhead = (seq - bat) / 7.0
        except (KeyError, TypeError, ValueError):
            pass
        try:
            compile_s = float(bench["test_plan_compile_longformer_4096"]["mean_s"])
            if compile_s > 0:
                rate = compile_s / _bench_plan_passes()
        except (KeyError, TypeError, ValueError):
            pass
        _calibration = (overhead, rate)
    return _calibration


def service_scales(
    spec,
    clock: "CostModelClock",
    full_batch: int = 8,
    backend: Optional[str] = None,
) -> Tuple[float, float]:
    """(amortised unit, dispatch unit) of the cost model, in seconds.

    ``spec`` is a :class:`~repro.cluster.arrivals.WorkloadSpec`.  The
    *amortised unit* — mean per-request service over the workload's
    pattern families at full batches — sets pool capacity; the *dispatch
    unit* — one request plus one whole batch overhead — is the latency
    floor SLO deadlines are scaled from.  Shared by the CLI ``simulate``
    defaults and the ``serving_capacity`` sweep so the two cannot drift.

    ``backend`` names the registered backend whose cost model the scales
    are probed from — the **same** model the pool's workers charge
    service with, which is the whole point: a ``--backend dense``
    simulation must scale its SLO budgets from the dense cost model, not
    from the default SALO estimator, or budgets and service times come
    from two different machines.  ``None`` keeps the default SALO
    estimator (identical to the default ``functional`` backend's).
    """
    from ..serving.trace import pattern_families

    if full_batch < 1:
        raise ValueError(f"full_batch must be >= 1, got {full_batch}")
    if backend is None:
        estimator = SALO()
    else:
        from ..api import Runtime

        estimator = Runtime(backend=backend)
    units = [
        estimator.estimate(p, heads=spec.heads, head_dim=spec.head_dim).latency_s
        for p in pattern_families(spec.trace_spec())
    ]
    mean_unit = float(np.mean(units))
    return (
        mean_unit + clock.batch_overhead_s / full_batch,
        mean_unit + clock.batch_overhead_s,
    )


class CircuitBreaker:
    """Per-worker transient-error-rate breaker.

    Heartbeats catch *dead* workers; they miss **grey failures** — a
    worker that answers probes but fails most of its dispatches (flaky
    NIC, failing DIMM, a bad cable on one link).  The breaker watches a
    sliding window of recent dispatch outcomes and *opens* once the
    failure rate over at least ``min_samples`` outcomes reaches
    ``threshold``: the router stops sending the worker new traffic for
    ``cooldown_s``.  After the cooldown the breaker is **half-open** —
    the worker is routable again and the next completed dispatch is its
    probe: a success recloses the breaker (window reset), a failure
    re-opens it for another cooldown.

    Everything is driven by the caller's clock and the recorded
    outcomes — no wall time, no RNG — so simulations stay replayable.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        window: int = 8,
        min_samples: int = 4,
        cooldown_s: float = 2e-3,
    ) -> None:
        if not (0.0 < threshold <= 1.0):
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if window < min_samples:
            raise ValueError(
                f"window ({window}) must be >= min_samples ({min_samples})"
            )
        if not (cooldown_s > 0):
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        self.threshold = threshold
        self.window = window
        self.min_samples = min_samples
        self.cooldown_s = cooldown_s
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self.open_until_s: Optional[float] = None
        self.trips = 0

    def is_open(self, now: float) -> bool:
        """True while the cooldown holds; past it the breaker is
        half-open and the worker routable (its next outcome decides)."""
        return self.open_until_s is not None and now < self.open_until_s

    def record(self, ok: bool, now: float) -> None:
        """Fold one dispatch outcome in; may trip, re-trip or reclose."""
        if self.open_until_s is not None:
            if now < self.open_until_s:
                # outcome of a dispatch launched before the trip: the
                # breaker already acted on this failure burst
                return
            # half-open probe outcome
            if ok:
                self.open_until_s = None
                self._outcomes.clear()
                self._outcomes.append(True)
            else:
                self.open_until_s = now + self.cooldown_s
                self.trips += 1
            return
        self._outcomes.append(ok)
        if len(self._outcomes) < self.min_samples:
            return
        failures = sum(1 for o in self._outcomes if not o)
        if failures / len(self._outcomes) >= self.threshold:
            self.open_until_s = now + self.cooldown_s
            self.trips += 1
            self._outcomes.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(threshold={self.threshold}, "
            f"window={self.window}, trips={self.trips})"
        )


class Worker:
    """One engine: a SALO instance, its queue, and accounting.

    Lifecycle (``up -> suspect -> down -> rejoined up``): ``alive`` is
    ground truth — whether the process exists — while ``state`` is what
    the *cluster believes* from heartbeats.  The gap between the two is
    detection latency: a freshly crashed worker is dead but still routed
    to, exactly like a real node whose failure nobody has noticed yet.
    A worker that rejoins comes back with a **cold plan cache**: its
    ``warm``/``warm_plans`` sets are cleared, so its next batch of any
    structure pays the cold-compile penalty again — a replacement
    process, not a resurrection.
    """

    def __init__(
        self,
        wid: int,
        salo: SALO,
        max_batch_size: int = 8,
        bucket_floor: int = 16,
        pad_to_bucket: bool = False,
    ) -> None:
        self.wid = wid
        self.salo = salo
        self.queue = BatchScheduler(
            max_batch_size=max_batch_size,
            bucket_floor=bucket_floor,
            pad_to_bucket=pad_to_bucket,
        )
        self.busy = False
        self.inflight = 0  # requests in the batch currently executing
        self.busy_s = 0.0  # accumulated service time
        self.batches = 0
        self.served = 0
        self.stolen_in = 0  # requests stolen from peers
        self.cold_compiles = 0
        self.warm: set = set()  # group keys this worker has served (routing)
        self.warm_plans: set = set()  # plan keys actually compiled (cold accounting)
        # --- lifecycle / health (see repro.cluster.faults) ---
        self.alive = True  # ground truth: does the process exist
        self.state = WORKER_UP  # what heartbeats have established
        self.crash_epoch = 0  # invalidates in-flight completions on crash
        self.last_heartbeat_s = 0.0
        self.crashed_at_s: Optional[float] = None
        self.down_since_s: Optional[float] = None
        self.downtime_s = 0.0  # accumulated across finished down windows
        self.crashes = 0
        self.rejoins = 0
        self.detect_delays: List[float] = []  # crash -> marked-down latency
        # Optional transient-error circuit breaker (see CircuitBreaker);
        # attached by the simulator when RecoveryConfig enables it.
        self.breaker: Optional[CircuitBreaker] = None

    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        """Routable as far as the cluster knows (not marked down)."""
        return self.state != WORKER_DOWN

    def breaker_open(self, now: Optional[float]) -> bool:
        """True when the circuit breaker is holding traffic off this
        worker (grey failure).  Lifecycle-independent: a breaker-open
        worker is alive and heartbeating, just not worth routing to."""
        return (
            self.breaker is not None
            and now is not None
            and self.breaker.is_open(now)
        )

    def crash(self, now: float) -> None:
        """The process dies.  Nothing else learns of it until heartbeats
        time out: ``state`` stays as-is, arrivals keep routing here, and
        the epoch bump silently invalidates the in-flight completion."""
        self.alive = False
        self.crashes += 1
        self.crash_epoch += 1
        self.crashed_at_s = now

    def mark_down(self, now: float) -> None:
        """Heartbeat timeout fired: the cluster now *knows* the worker is
        gone.  Records detection latency and frees the busy slot (the
        batch it held is lost; the simulator recovers its members)."""
        self.state = WORKER_DOWN
        self.down_since_s = now
        if self.crashed_at_s is not None:
            self.detect_delays.append(now - self.crashed_at_s)
            self.crashed_at_s = None
        self.busy = False
        self.inflight = 0

    def rejoin(self, now: float) -> None:
        """A replacement process comes up: healthy again, cold caches."""
        self.alive = True
        self.state = WORKER_UP
        if self.down_since_s is not None:
            self.downtime_s += now - self.down_since_s
            self.down_since_s = None
        self.crashed_at_s = None
        self.last_heartbeat_s = now
        self.rejoins += 1
        self.busy = False
        self.inflight = 0
        self.warm.clear()
        self.warm_plans.clear()

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Queue pressure the router scores against: queued + executing."""
        return self.queue.pending + self.inflight

    def is_warm(self, group_key: Tuple) -> bool:
        return group_key in self.warm

    def is_cold_plan(self, batch: Batch) -> bool:
        """True when this batch's dispatch compiles a new plan here.

        Keyed on the executed plan, not the group key: in
        ``pad_to_bucket`` mode one group key covers both the exact- and
        bucket-length plans, and only the one actually run gets warm.
        """
        return batch.plan_key() not in self.warm_plans

    def note_dispatch(self, batch: Batch, service_s: float, cold: bool) -> None:
        self.busy = True
        self.inflight = batch.size
        self.busy_s += service_s
        self.batches += 1
        self.served += batch.size
        if cold:
            self.cold_compiles += 1
        self.warm.add(batch.key)
        self.warm_plans.add(batch.plan_key())

    def note_complete(self) -> None:
        self.busy = False
        self.inflight = 0


class ServiceModel:
    """Maps (worker, batch) to a service time; may execute the batch."""

    #: True when service times are free of wall-clock reads (replayable).
    deterministic = True

    def service_s(self, worker: Worker, batch: Batch, cold: bool) -> float:
        raise NotImplementedError


class CostModelClock(ServiceModel):
    """Paper-grounded oracle: ``SALO.estimate`` latency per sequence.

    ``batch_overhead_s`` models the host-side dispatch cost one engine
    call amortises across the batch (queue pop, operand staging) — the
    term that makes batching a throughput win in simulated time, exactly
    as it is in the measured benches.  ``cold_compile_s`` is charged the
    first time a worker serves a structure (scheduling + plan
    compilation + engine build on its SALO), which is what plan-affinity
    routing exists to avoid.

    **Defaults are measured, not guessed.**  When an argument is left
    ``None`` the clock calibrates it from the committed bench snapshot
    via :func:`measured_clock_costs`: the dispatch overhead from the
    sequential-vs-batched attend gap, and the cold penalty as a per-pass
    compile rate times *the served plan's own structural pass count*
    (read off the estimate, so a 4096-token plan pays proportionally
    more than a toy one).  Passing an explicit value disables the
    corresponding calibration — an explicit ``cold_compile_s`` is
    charged flat, as before.  Estimates with no pass count (the oracle
    backends) and snapshot-less checkouts also fall back to the flat
    constants.

    .. warning:: **Units depend on the backend.**  The latency oracle is
       whatever ``SALO.estimate`` returns for the worker's engine.  For
       the accelerator backends that is the paper's cycle model
       (accelerator-seconds); for the ``dense`` oracle it is a GPU
       roofline (1080Ti-seconds), and the oracle backends additionally
       report zero plan-cache stats to pool accounting (they compile no
       plans, so ``cold_compile_s`` models work they never do).
       Simulated times are therefore comparable *within* one backend
       but **not across backends** — a ``--backend dense`` simulation
       answers "what would a GPU cluster do", not "how much faster is
       the GPU than the accelerator".  Cross-backend latency comparisons
       belong to the measured benches, which share one wall clock.
    """

    deterministic = True

    def __init__(
        self,
        batch_overhead_s: Optional[float] = None,
        cold_compile_s: Optional[float] = None,
    ) -> None:
        measured_overhead, compile_rate = measured_clock_costs()
        self._compile_rate_s: Optional[float] = None
        if batch_overhead_s is None:
            batch_overhead_s = (
                measured_overhead
                if measured_overhead is not None
                else _FALLBACK_BATCH_OVERHEAD_S
            )
        if cold_compile_s is None:
            self._compile_rate_s = compile_rate  # None when no snapshot
            cold_compile_s = _FALLBACK_COLD_COMPILE_S
        if batch_overhead_s < 0 or cold_compile_s < 0:
            raise ValueError("overheads must be >= 0")
        self.batch_overhead_s = batch_overhead_s
        self.cold_compile_s = cold_compile_s

    @classmethod
    def flat(cls) -> "CostModelClock":
        """The uncalibrated clock: flat 20 us dispatch, 0.5 ms compile.

        For scenario-scaled simulations — the overload/capacity sweeps
        and tests that size arrival rates, deadlines and heartbeat
        timings against a fixed service scale.  Those scenarios pin this
        clock so a bench re-snapshot cannot silently move them; runs
        meant to reflect the measured host should construct
        :class:`CostModelClock` with defaults instead.
        """
        return cls(
            batch_overhead_s=_FALLBACK_BATCH_OVERHEAD_S,
            cold_compile_s=_FALLBACK_COLD_COMPILE_S,
        )

    def _cold_penalty_s(self, stats) -> float:
        """Compile penalty for this dispatch: measured rate x plan passes.

        Flat ``cold_compile_s`` when the clock was built with an
        explicit penalty, when no bench snapshot calibrated a rate, or
        when the estimate carries no pass count (oracle backends, which
        compile nothing — the flat constant keeps modelling the generic
        warm-up work they skip).
        """
        if self._compile_rate_s is not None:
            passes = getattr(getattr(stats, "plan", None), "num_passes", None)
            if passes:
                return self._compile_rate_s * float(passes)
        return self.cold_compile_s

    def service_s(self, worker: Worker, batch: Batch, cold: bool) -> float:
        req = batch.requests[0]
        pattern = batch.execution_pattern()
        stats = worker.salo.estimate(pattern, heads=req.heads, head_dim=req.head_dim)
        service = stats.latency_s * batch.size + self.batch_overhead_s
        if cold:
            service += self._cold_penalty_s(stats)
        return service


class MeasuredClock(ServiceModel):
    """Run the batch on the worker's engine; the wall clock is the time."""

    deterministic = False

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock

    def service_s(self, worker: Worker, batch: Batch, cold: bool) -> float:
        t0 = self.clock()
        execute_batch(worker.salo, batch)
        return self.clock() - t0


class EnginePool:
    """Routes requests across workers; steals work for idle ones.

    Each worker's engine comes from ``salo_factory`` — by default a
    fresh :class:`~repro.core.salo.SALO` per worker.  ``backend``
    instead names a registered backend
    (:func:`repro.api.engine_factory` builds the per-worker factory),
    so a pool of legacy-path or oracle engines is one string away;
    passing both a custom factory and a backend name is ambiguous and
    rejected.
    """

    def __init__(
        self,
        workers: int,
        salo_factory: Callable[[], SALO] = SALO,
        max_batch_size: int = 8,
        bucket_floor: int = 16,
        pad_to_bucket: bool = False,
        affinity_miss_prob: float = 0.1,
        backend: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend is not None:
            if salo_factory is not SALO:
                raise ValueError(
                    "pass either salo_factory or backend, not both"
                )
            from ..api import engine_factory

            salo_factory = engine_factory(backend)
        if not 0.0 < affinity_miss_prob <= 1.0:
            raise ValueError(
                f"affinity_miss_prob must be in (0, 1], got {affinity_miss_prob}"
            )
        self.workers: List[Worker] = [
            Worker(
                wid,
                salo_factory(),
                max_batch_size=max_batch_size,
                bucket_floor=bucket_floor,
                pad_to_bucket=pad_to_bucket,
            )
            for wid in range(workers)
        ]
        self.affinity_miss_prob = affinity_miss_prob
        self.steals = 0

    # ------------------------------------------------------------------
    def route(self, request: AttentionRequest, now: float) -> Worker:
        """Pick the worker maximising cache-hit probability per queue slot.

        Score = P(plan cache hit) / (1 + depth): a warm worker wins until
        its backlog outweighs the compile it would save (with miss
        probability 0.1, a warm worker is preferred up to ~10x the queue
        depth).  Ties break toward the shallower queue, then the lower
        id — fully deterministic.

        Workers *marked down* are skipped — but workers that crashed and
        have not yet missed enough heartbeats still receive traffic (the
        router only knows what detection has told it).  Workers whose
        circuit breaker is open at ``now`` (grey failures: alive,
        heartbeating, failing dispatches) are skipped the same way —
        which is why ``now`` is **required**: an omitted clock used to
        silently disable the breaker check, routing traffic straight
        into tripped workers.  If every worker is excluded the request
        still routes (to the best of the excluded set) and is recovered
        by the next heartbeat sweep or breaker probe.
        """
        if now is None:
            raise TypeError(
                "EnginePool.route requires the caller's clock: an omitted "
                "`now` would silently skip the circuit-breaker check and "
                "route into tripped workers"
            )
        key = self.workers[0].queue.group_key(request)
        candidates = [
            w for w in self.workers if w.healthy and not w.breaker_open(now)
        ]
        if not candidates:
            candidates = [w for w in self.workers if w.healthy] or self.workers
        best: Optional[Worker] = None
        best_score: Optional[Tuple[float, int, int]] = None
        for worker in candidates:
            hit_p = 1.0 if worker.is_warm(key) else self.affinity_miss_prob
            score = (-hit_p / (1 + worker.depth()), worker.depth(), worker.wid)
            if best_score is None or score < best_score:
                best, best_score = worker, score
        return best

    def steal_into(self, thief: Worker, now: float) -> int:
        """Move queued work from the most loaded *busy* peer to an idle thief.

        Takes up to ``max_batch_size`` requests from the back of the
        victim's deepest queue (the work the victim would reach last),
        re-enqueues them on the thief and returns the count.  The thief
        pays a cold compile unless it happens to be warm for the stolen
        structure — idleness is worse.  Only busy victims qualify: an
        idle worker with queued requests is *holding* them open on
        purpose (a max-wait policy building a batch), and robbing it
        would defeat the policy rather than reduce idleness.
        """
        victim: Optional[Worker] = None
        for worker in self.workers:
            if worker is thief or not worker.busy or worker.queue.pending == 0:
                continue
            if victim is None or worker.queue.pending > victim.queue.pending:
                victim = worker
        if victim is None:
            return 0
        stolen = victim.queue.steal(thief.queue.max_batch_size)
        if not stolen:
            return 0
        thief.queue.requeue(stolen)
        thief.stolen_in += len(stolen)
        self.steals += 1
        return len(stolen)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return sum(w.queue.pending for w in self.workers)

    @property
    def busy_workers(self) -> int:
        return sum(1 for w in self.workers if w.busy)
