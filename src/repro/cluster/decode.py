"""Prefill/decode phase separation in the cluster simulator.

One-shot requests arrive with their full Q/K/V and leave after one
service; a *decode* sequence arrives with a prompt, produces its first
token when its first step completes (prefill), then holds a lane for
one engine step per generated token until its output budget is met.
This module simulates a fleet of continuous-batching decode workers on
the deterministic cost-model clock:

* **arrivals** — :class:`DecodeWorkloadSpec` draws prompt lengths,
  output-length distributions (geometric, capped) and ITL SLO classes
  from one seeded RNG stream;
* **service** — each worker step costs
  ``latency(bucket pattern) x lanes + batch overhead (+ cold compile)``
  via :class:`~repro.cluster.pool.CostModelClock`, with per-worker
  per-bucket warm-plan tracking so the first step in a bucket is the
  only cold one (mirroring the real decode path's plan cache);
* **metrics** — time-to-first-token (TTFT), inter-token latency (ITL)
  p50/p99, tokens/s, and time-weighted concurrency, per run and per SLO
  class;
* **conservation** — the existing four-way sequence law (``submitted ==
  completed + rejected + shed + failed`` through
  :class:`~repro.cluster.metrics.MetricsCollector`) plus a token-level
  law for admitted sequences: every target token is exactly one of
  completed, shed, or failed.

Admission reuses the :mod:`repro.serving.admission` policies through a
decode-aware queue-drain estimator: the wait is the time until enough
lanes retire (k-th smallest remaining token count times the current
step time), the service is the first step — so ``est-wait`` gates on
TTFT feasibility.  Shedding uses the same machinery's semantics:
TTFT-doomed queued sequences are shed at step boundaries, and lanes
whose inter-token gap blows past their ITL budget are shed mid-flight
(their produced tokens stay completed; the unproduced remainder is
shed).  Transient faults fail whole steps; a sequence whose retry
budget is exhausted moves to ``failed`` with its unproduced tokens.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.salo import SALO
from ..patterns.base import Band
from ..patterns.hybrid import HybridSparsePattern
from ..serving.admission import AdmissionContext, AdmissionPolicy
from ..serving.batching import length_bucket
from .arrivals import SLOClass
from .faults import FaultInjector
from .metrics import MetricsCollector, RequestRecord, _percentile
from .pool import CostModelClock

__all__ = [
    "DecodeSLOClass",
    "DEFAULT_DECODE_SLO_CLASSES",
    "DecodeWorkloadSpec",
    "DecodeSimConfig",
    "DecodeClusterSimulator",
    "DecodeClassReport",
    "DecodeReport",
]

_ARRIVE = 0
_STEP = 1


@dataclass(frozen=True)
class DecodeSLOClass(SLOClass):
    """An SLO class with decode semantics.

    ``deadline_s`` (inherited) is the **TTFT budget** — how long the
    client waits for the first token; ``itl_deadline_s`` is the
    per-token pacing budget between subsequent tokens.  Either may be
    ``None`` (best effort).
    """

    itl_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.itl_deadline_s is not None and self.itl_deadline_s <= 0:
            raise ValueError("itl_deadline_s must be positive or None")


#: Scenario-scale defaults against ``CostModelClock.flat()`` service
#: times (tens of microseconds per step at small buckets).
DEFAULT_DECODE_SLO_CLASSES: Tuple[DecodeSLOClass, ...] = (
    DecodeSLOClass("interactive", deadline_s=5e-3, share=0.7, itl_deadline_s=2e-3),
    DecodeSLOClass("bulk", deadline_s=5e-2, share=0.3, itl_deadline_s=None),
)


@dataclass(frozen=True)
class DecodeWorkloadSpec:
    """Decode-aware arrival spec: prompts plus output-length draws.

    Sequences arrive Poisson at ``rate_rps``; each draws a prompt
    length uniform in ``[prompt_min, prompt_max]``, an output budget
    geometric with mean ``mean_new_tokens`` capped at
    ``max_new_tokens``, and an SLO class by share weight — all from one
    RNG stream seeded by ``seed``, so the trace is a pure function of
    the spec.
    """

    sequences: int = 64
    rate_rps: float = 2000.0
    prompt_min: int = 4
    prompt_max: int = 48
    mean_new_tokens: float = 16.0
    max_new_tokens: int = 64
    window: int = 8
    global_tokens: Tuple[int, ...] = ()
    heads: int = 2
    head_dim: int = 8
    slo_classes: Tuple[DecodeSLOClass, ...] = DEFAULT_DECODE_SLO_CLASSES
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sequences < 1:
            raise ValueError("sequences must be >= 1")
        if not (self.rate_rps > 0):
            raise ValueError("rate_rps must be positive")
        if not (1 <= self.prompt_min <= self.prompt_max):
            raise ValueError("need 1 <= prompt_min <= prompt_max")
        if not (1 <= self.mean_new_tokens <= self.max_new_tokens):
            raise ValueError("need 1 <= mean_new_tokens <= max_new_tokens")
        if any(g < 0 for g in self.global_tokens):
            raise ValueError("global tokens must be non-negative")
        if not self.slo_classes:
            raise ValueError("need at least one SLO class")

    def bands(self) -> Tuple[Band, ...]:
        return (Band(-self.window, 0),)

    def max_length(self) -> int:
        return self.prompt_max + self.max_new_tokens

    def draw(self) -> List["_Seq"]:
        """The full deterministic arrival trace."""
        rng = np.random.default_rng(self.seed)
        shares = np.asarray([c.share for c in self.slo_classes], dtype=float)
        shares = shares / shares.sum()
        gaps = rng.exponential(1.0 / self.rate_rps, size=self.sequences)
        arrivals = np.cumsum(gaps)
        seqs = []
        for i in range(self.sequences):
            prompt_n = int(rng.integers(self.prompt_min, self.prompt_max + 1))
            target = int(min(rng.geometric(1.0 / self.mean_new_tokens),
                             self.max_new_tokens))
            slo = self.slo_classes[int(rng.choice(len(self.slo_classes), p=shares))]
            seqs.append(
                _Seq(
                    request_id=f"seq-{i}",
                    slo=slo,
                    arrival_s=float(arrivals[i]),
                    prompt_n=prompt_n,
                    target_tokens=target,
                )
            )
        return seqs


class _Seq:
    """One decode sequence in flight (duck-types the admission view)."""

    def __init__(self, request_id, slo, arrival_s, prompt_n, target_tokens):
        self.request_id = request_id
        self.slo = slo
        self.arrival_s = arrival_s
        self.prompt_n = prompt_n
        self.target_tokens = target_tokens
        self.produced = 0
        self.retries = 0
        self.first_dispatch_s: Optional[float] = None
        self.ttft_s: Optional[float] = None
        self.last_token_s: Optional[float] = None
        self.itl_gaps: List[float] = []

    # ---- the fields admission policies and drop records read --------
    @property
    def slo_class(self) -> str:
        return self.slo.name

    @property
    def deadline_s(self) -> Optional[float]:
        return self.slo.deadline_s  # TTFT budget

    client_id = None

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Current KV length: prompt plus every appended token."""
        return self.prompt_n + self.produced

    @property
    def remaining(self) -> int:
        return self.target_tokens - self.produced

    @property
    def done(self) -> bool:
        return self.produced >= self.target_tokens


class _DecodeWorker:
    """One continuous-batching worker: lanes + a FIFO admission queue."""

    def __init__(self, wid: int, salo: SALO, max_lanes: int, bucket_floor: int):
        self.wid = wid
        self.salo = salo
        self.max_lanes = max_lanes
        self.bucket_floor = bucket_floor
        self.lanes: List[_Seq] = []
        self.queue: Deque[_Seq] = deque()
        self.busy = False
        self.warm_plans: set = set()
        self.steps = 0
        self.tokens = 0
        self.busy_s = 0.0
        self.cold_compiles = 0
        self.lane_time_s = 0.0  # integral of lanes over busy time

    @property
    def depth(self) -> int:
        return len(self.lanes) + len(self.queue)


@dataclass
class DecodeSimConfig:
    """Knobs of one decode-cluster run."""

    workers: int = 2
    max_lanes: int = 8
    bucket_floor: int = 16
    admission: Optional[AdmissionPolicy] = None
    service: Optional[CostModelClock] = None  # default: calibrated clock
    shed_lagging: bool = True
    itl_shed_factor: float = 4.0  # gap > factor x itl budget -> shed
    max_retries: int = 3
    faults: Optional[FaultInjector] = None
    salo_factory: Callable[[], SALO] = SALO

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")
        if not (self.itl_shed_factor >= 1.0):
            raise ValueError("itl_shed_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass
class DecodeClassReport:
    """Per-SLO-class decode attainment."""

    name: str
    sequences: int
    tokens: int
    ttft_p50_s: float
    ttft_p99_s: float
    itl_p50_s: float
    itl_p99_s: float
    ttft_attainment: float  # fraction of first tokens within budget
    itl_attainment: float  # fraction of gaps within budget


@dataclass
class DecodeReport:
    """What a decode-cluster run answers: pacing, throughput, loss."""

    submitted: int
    completed: int
    rejected: int
    shed: int
    failed: int
    tokens_target_admitted: int
    tokens_completed: int
    tokens_shed: int
    tokens_failed: int
    tokens_per_s: float
    mean_concurrency: float
    steps: int
    retries: int
    makespan_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    itl_p50_s: float
    itl_p99_s: float
    classes: List[DecodeClassReport]
    workers: List[dict]

    @property
    def sequence_conservation(self) -> bool:
        return self.submitted == (
            self.completed + self.rejected + self.shed + self.failed
        )

    @property
    def token_conservation(self) -> bool:
        return self.tokens_target_admitted == (
            self.tokens_completed + self.tokens_shed + self.tokens_failed
        )

    def render(self) -> str:
        lines = [
            "decode cluster report",
            "=====================",
            f"sequences            {self.submitted} submitted = "
            f"{self.completed} completed + {self.rejected} rejected + "
            f"{self.shed} shed + {self.failed} failed",
            f"tokens (admitted)    {self.tokens_target_admitted} target = "
            f"{self.tokens_completed} completed + {self.tokens_shed} shed + "
            f"{self.tokens_failed} failed",
            f"throughput           {self.tokens_per_s:.0f} tokens/s over "
            f"{self.makespan_s * 1e3:.2f} ms ({self.steps} steps, "
            f"mean concurrency {self.mean_concurrency:.2f})",
            f"TTFT                 p50 {self.ttft_p50_s * 1e6:.0f} us / "
            f"p99 {self.ttft_p99_s * 1e6:.0f} us",
            f"ITL                  p50 {self.itl_p50_s * 1e6:.0f} us / "
            f"p99 {self.itl_p99_s * 1e6:.0f} us",
        ]
        if self.retries:
            lines.append(f"retries              {self.retries}")
        for c in self.classes:
            lines.append(
                f"  class {c.name:<12} {c.sequences} seq / {c.tokens} tok, "
                f"TTFT p99 {c.ttft_p99_s * 1e6:.0f} us "
                f"(attain {c.ttft_attainment:.0%}), "
                f"ITL p99 {c.itl_p99_s * 1e6:.0f} us "
                f"(attain {c.itl_attainment:.0%})"
            )
        for w in self.workers:
            lines.append(
                f"  worker {w['wid']}: {w['steps']} steps, {w['tokens']} tok, "
                f"busy {w['busy_s'] * 1e3:.2f} ms, "
                f"{w['cold_compiles']} cold compiles, "
                f"plan cache {w['plan_cache']['hits']}h/"
                f"{w['plan_cache']['misses']}m"
            )
        return "\n".join(lines)


class DecodeClusterSimulator:
    """Heap-driven decode simulation on the cost-model clock.

    Workers run continuous batches: one STEP event per worker while it
    has lanes; at each step completion every lane yields one token,
    finished lanes retire, queued sequences join, and the next step is
    scheduled — so joins and retirements happen between steps exactly
    as in :class:`repro.decode.DecodeScheduler`.
    """

    def __init__(self, config: Optional[DecodeSimConfig] = None) -> None:
        self.config = config or DecodeSimConfig()
        self.clock = (
            self.config.service if self.config.service is not None else CostModelClock()
        )
        self.metrics = MetricsCollector()
        self._patterns: Dict[Tuple, HybridSparsePattern] = {}
        self.retries = 0
        self.total_steps = 0
        self.lane_time_s = 0.0
        self.tokens_completed = 0
        self.tokens_shed = 0
        self.tokens_failed = 0
        self.tokens_target_admitted = 0

    # ------------------------------------------------------------------
    def _pattern_for(self, spec, bucket: int, min_len: int) -> HybridSparsePattern:
        active = tuple(g for g in spec.global_tokens if g < min_len)
        key = (bucket, active)
        pat = self._patterns.get(key)
        if pat is None:
            pat = HybridSparsePattern(bucket, list(spec.bands()), active)
            self._patterns[key] = pat
        return pat

    def _step_cost(self, worker: _DecodeWorker, spec) -> Tuple[float, bool]:
        bucket = length_bucket(
            max(s.length for s in worker.lanes), self.config.bucket_floor
        )
        min_len = min(s.length for s in worker.lanes)
        pattern = self._pattern_for(spec, bucket, min_len)
        stats = worker.salo.estimate(
            pattern, heads=spec.heads, head_dim=spec.head_dim
        )
        key = (bucket, pattern.global_tokens())
        cold = key not in worker.warm_plans
        service = stats.latency_s * len(worker.lanes) + self.clock.batch_overhead_s
        if cold:
            worker.warm_plans.add(key)
            worker.cold_compiles += 1
            # same package: the clock's per-plan cold penalty is the
            # decode path's compile cost too
            service += self.clock._cold_penalty_s(stats)
        return service, cold

    def _drain_wait_estimate(
        self, worker: _DecodeWorker, spec
    ) -> Tuple[float, float]:
        """(wait_s, first_step_s): decode-aware queue-drain estimate.

        A new sequence starts decoding once a lane is free.  Lanes free
        in remaining-token order, so the wait for the ``k``-th queued
        arrival is the ``k``-th smallest remaining budget times the
        current step time — a drain model, not depth x unit.
        """
        lanes = worker.lanes
        if lanes:
            bucket = length_bucket(
                max(s.length for s in lanes), self.config.bucket_floor
            )
            min_len = min(s.length for s in lanes)
            stats = worker.salo.estimate(
                self._pattern_for(spec, bucket, min_len),
                heads=spec.heads,
                head_dim=spec.head_dim,
            )
            step_s = stats.latency_s * len(lanes) + self.clock.batch_overhead_s
        else:
            bucket = length_bucket(spec.prompt_max, self.config.bucket_floor)
            stats = worker.salo.estimate(
                self._pattern_for(spec, bucket, spec.prompt_min),
                heads=spec.heads,
                head_dim=spec.head_dim,
            )
            step_s = stats.latency_s + self.clock.batch_overhead_s
        lanes_needed = worker.depth + 1 - worker.max_lanes
        if lanes_needed <= 0:
            return 0.0, step_s
        remaining = sorted(s.remaining for s in lanes)
        if lanes_needed <= len(remaining):
            wait = step_s * remaining[lanes_needed - 1]
        else:
            # queue deeper than the lane set: every lane must turn over
            waves = lanes_needed - len(remaining)
            wait = step_s * (remaining[-1] if remaining else 1) * (1 + waves)
        return wait, step_s

    # ------------------------------------------------------------------
    def run(self, spec: DecodeWorkloadSpec) -> DecodeReport:
        cfg = self.config
        workers = [
            _DecodeWorker(w, cfg.salo_factory(), cfg.max_lanes, cfg.bucket_floor)
            for w in range(cfg.workers)
        ]
        heap: List[Tuple[float, int, int, int]] = []
        order = 0
        seqs = spec.draw()
        for s in seqs:
            heapq.heappush(heap, (s.arrival_s, order, _ARRIVE, order))
            order += 1
        arrive_payload = {i: s for i, s in enumerate(seqs)}
        step_payload: Dict[int, Tuple[_DecodeWorker, float, bool]] = {}

        def begin_step(worker: _DecodeWorker, now: float) -> None:
            nonlocal order
            self._shed_boundary(worker, now)
            while worker.queue and len(worker.lanes) < worker.max_lanes:
                seq = worker.queue.popleft()
                worker.lanes.append(seq)
                if seq.first_dispatch_s is None:
                    seq.first_dispatch_s = now
            if not worker.lanes:
                worker.busy = False
                return
            worker.busy = True
            service, _cold = self._step_cost(worker, spec)
            fails = bool(
                cfg.faults is not None and cfg.faults.dispatch_fails(worker.wid, now)
            )
            worker.lane_time_s += service * len(worker.lanes)
            step_payload[order] = (worker, service, fails)
            heapq.heappush(heap, (now + service, order, _STEP, order))
            order += 1

        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if kind == _ARRIVE:
                seq = arrive_payload.pop(payload)
                self.metrics.note_arrival(now)
                worker = min(workers, key=lambda w: (w.depth, w.wid))
                ctx = AdmissionContext(
                    now=now,
                    depth=worker.depth,
                    estimator=lambda w=worker: self._drain_wait_estimate(w, spec),
                )
                policy = cfg.admission
                if policy is not None and not policy.admit(seq, ctx):
                    self.metrics.note_rejection(seq, now)
                    continue
                self.tokens_target_admitted += seq.target_tokens
                worker.queue.append(seq)
                if not worker.busy:
                    begin_step(worker, now)
            else:
                worker, service, fails = step_payload.pop(payload)
                worker.busy_s += service
                worker.steps += 1
                self.total_steps += 1
                if fails:
                    self.retries += 1
                    survivors = []
                    for seq in worker.lanes:
                        seq.retries += 1
                        if seq.retries > cfg.max_retries:
                            self.tokens_completed += seq.produced
                            self.tokens_failed += seq.remaining
                            self.metrics.note_failed(seq, now)
                        else:
                            survivors.append(seq)
                    worker.lanes = survivors
                else:
                    finished = []
                    for seq in worker.lanes:
                        seq.produced += 1
                        worker.tokens += 1
                        if seq.produced == 1:
                            seq.ttft_s = now - seq.arrival_s
                        else:
                            seq.itl_gaps.append(now - seq.last_token_s)
                        seq.last_token_s = now
                        if seq.done:
                            finished.append(seq)
                    for seq in finished:
                        worker.lanes.remove(seq)
                        self.tokens_completed += seq.produced
                        self.metrics.note_completion(
                            RequestRecord(
                                request_id=seq.request_id,
                                slo_class=seq.slo_class,
                                arrival_s=seq.arrival_s,
                                dispatch_s=seq.first_dispatch_s,
                                complete_s=now,
                                worker=worker.wid,
                                batch_size=len(worker.lanes) + len(finished),
                                deadline_s=None,
                            )
                        )
                self.metrics.sample(
                    now,
                    queued=sum(len(w.queue) for w in workers),
                    busy_workers=sum(1 for w in workers if w.busy),
                )
                begin_step(worker, now)

        leftover = [s for w in workers for s in list(w.lanes) + list(w.queue)]
        if leftover or arrive_payload:
            raise RuntimeError(
                f"drained simulation left {len(leftover)} sequences in flight"
            )
        return self._report(spec, seqs, workers)

    def _shed_boundary(self, worker: _DecodeWorker, now: float) -> None:
        """TTFT-doomed queued sequences and ITL-lagging lanes shed here."""
        cfg = self.config
        kept: Deque[_Seq] = deque()
        while worker.queue:
            seq = worker.queue.popleft()
            budget = seq.slo.deadline_s
            if budget is not None and now - seq.arrival_s > budget:
                self.tokens_shed += seq.target_tokens
                self.metrics.note_shed(seq, now)
            else:
                kept.append(seq)
        worker.queue = kept
        if not cfg.shed_lagging:
            return
        survivors = []
        for seq in worker.lanes:
            budget = seq.slo.itl_deadline_s
            lagging = (
                budget is not None
                and seq.last_token_s is not None
                and now - seq.last_token_s > cfg.itl_shed_factor * budget
            )
            if lagging and not seq.done:
                self.tokens_completed += seq.produced
                self.tokens_shed += seq.remaining
                self.metrics.note_shed(seq, now)
            else:
                survivors.append(seq)
        worker.lanes = survivors

    # ------------------------------------------------------------------
    def _report(self, spec, seqs, workers) -> DecodeReport:
        m = self.metrics
        completed_ids = {r.request_id for r in m.records}
        dropped = {d.request_id: d.kind for d in m.drops}
        ttfts = []
        gaps = []
        per_class: Dict[str, dict] = {}
        for seq in seqs:
            cls = per_class.setdefault(
                seq.slo_class,
                {"slo": seq.slo, "seqs": 0, "tokens": 0, "ttfts": [], "gaps": []},
            )
            if seq.request_id in completed_ids or dropped.get(seq.request_id) in (
                "shed",
                "failed",
            ):
                # produced tokens count toward pacing stats even when
                # the tail was shed or failed
                if seq.ttft_s is not None:
                    ttfts.append(seq.ttft_s)
                    cls["ttfts"].append(seq.ttft_s)
                gaps.extend(seq.itl_gaps)
                cls["gaps"].extend(seq.itl_gaps)
                cls["tokens"] += seq.produced
            if seq.request_id in completed_ids:
                cls["seqs"] += 1
        start = m.first_arrival_s or 0.0
        makespan = max(m.last_complete_s - start, 0.0)
        classes = []
        for name in sorted(per_class):
            c = per_class[name]
            slo = c["slo"]
            ttft_ok = (
                sum(1 for t in c["ttfts"] if t <= slo.deadline_s) / len(c["ttfts"])
                if slo.deadline_s is not None and c["ttfts"]
                else 1.0
            )
            itl_ok = (
                sum(1 for g in c["gaps"] if g <= slo.itl_deadline_s) / len(c["gaps"])
                if slo.itl_deadline_s is not None and c["gaps"]
                else 1.0
            )
            classes.append(
                DecodeClassReport(
                    name=name,
                    sequences=c["seqs"],
                    tokens=c["tokens"],
                    ttft_p50_s=_percentile(c["ttfts"], 50),
                    ttft_p99_s=_percentile(c["ttfts"], 99),
                    itl_p50_s=_percentile(c["gaps"], 50),
                    itl_p99_s=_percentile(c["gaps"], 99),
                    ttft_attainment=ttft_ok,
                    itl_attainment=itl_ok,
                )
            )
        return DecodeReport(
            submitted=m.submitted,
            completed=len(m.records),
            rejected=m.rejected,
            shed=m.shed,
            failed=m.failed,
            tokens_target_admitted=self.tokens_target_admitted,
            tokens_completed=self.tokens_completed,
            tokens_shed=self.tokens_shed,
            tokens_failed=self.tokens_failed,
            tokens_per_s=self.tokens_completed / makespan if makespan else 0.0,
            mean_concurrency=(
                sum(w.lane_time_s for w in workers) / makespan if makespan else 0.0
            ),
            steps=self.total_steps,
            retries=self.retries,
            makespan_s=makespan,
            ttft_p50_s=_percentile(ttfts, 50),
            ttft_p99_s=_percentile(ttfts, 99),
            itl_p50_s=_percentile(gaps, 50),
            itl_p99_s=_percentile(gaps, 99),
            classes=classes,
            workers=[
                {
                    "wid": w.wid,
                    "steps": w.steps,
                    "tokens": w.tokens,
                    "busy_s": w.busy_s,
                    "cold_compiles": w.cold_compiles,
                    "plan_cache": w.salo.cache_info(),
                }
                for w in workers
            ],
        )
