"""Cluster-simulation metrics: per-request records -> ClusterReport.

The simulator appends one :class:`RequestRecord` per completed request,
one :class:`DropRecord` per request it rejected at admission or shed
from a queue, and samples a small time series (queue depth, busy
workers) at every event; :meth:`MetricsCollector.report` reduces them to
the numbers a capacity study reads off: per-SLO-class latency
percentiles, *goodput* (deadline-met completions per second — the metric
a deployment is actually provisioned for), per-class goodput shares with
a Jain fairness index, and per-worker utilisation.

Conservation is the collector's core invariant: every submitted request
ends up in exactly one of {completed, rejected, shed, failed, still
queued}, so ``submitted == completed + rejected + shed + failed`` holds
for every drained simulation (the property suite in ``tests/cluster``
pins it across all policies, admission modes and fault specs; the
``failed`` bucket is zero on every fault-free run).  All percentile and
rate computations are guarded for the degenerate edges — zero
completions, all-rejected runs, single-sample classes — mirroring
``ServingStats``.

Fault-tolerance accounting (availability, retries, requeues, per-worker
downtime and detection latency) is carried on the same report but only
*rendered* when a run actually saw fault activity, keeping fault-free
reports byte-identical to the pre-fault simulator's output.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

__all__ = [
    "RequestRecord",
    "DropRecord",
    "WorkerReport",
    "ClassReport",
    "SeriesPoint",
    "MetricsCollector",
    "ClusterReport",
    "jain_index",
]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (k * sum x^2)`` over shares.

    1.0 means perfectly even allocation, ``1/k`` means one of ``k``
    parties holds everything.  Degenerate edges: fewer than two parties
    is trivially fair (1.0); all-zero allocations (nobody got anything)
    also report 1.0 — equal misery is still equal.
    """
    xs = np.asarray(list(values), dtype=np.float64)
    if xs.size < 2:
        return 1.0
    denom = xs.size * float(np.sum(xs * xs))
    if denom == 0.0:
        return 1.0
    return float(np.sum(xs)) ** 2 / denom


def _percentile(values: Sequence[float], q: float) -> float:
    """``np.percentile`` that tolerates empty inputs (returns 0.0)."""
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass
class RequestRecord:
    """Lifecycle of one simulated request (all times in simulated s)."""

    request_id: Hashable
    slo_class: str
    arrival_s: float
    dispatch_s: float
    complete_s: float
    worker: int
    batch_size: int
    deadline_s: Optional[float]  # latency budget (relative to arrival)
    stolen: bool = False  # served by a worker it was not routed to

    @property
    def queue_s(self) -> float:
        return self.dispatch_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        return self.complete_s - self.arrival_s

    @property
    def deadline_met(self) -> bool:
        return self.deadline_s is None or self.latency_s <= self.deadline_s


@dataclass
class DropRecord:
    """One request that was never served: rejected, shed, or failed.

    ``kind`` is ``"rejected"`` (turned away at arrival by the admission
    policy), ``"shed"`` (admitted, then dropped from a queue by a
    ``drop_expired`` sweep once its deadline became unreachable), or
    ``"failed"`` (lost to faults: transient-error retry budget
    exhausted, or orphaned by a down worker with requeueing disabled or
    no healthy worker left to take it).
    """

    request_id: Hashable
    slo_class: str
    t_s: float  # simulated time of the drop
    kind: str
    deadline_s: Optional[float] = None


@dataclass
class WorkerReport:
    """Per-worker accounting over the simulated horizon."""

    wid: int
    utilization: float  # busy_s / makespan
    busy_s: float
    batches: int
    served: int
    mean_batch_size: float
    stolen_in: int
    cold_compiles: int
    plan_cache: dict  # SALO.cache_info() of the worker's engine
    # Fault-tolerance accounting (all zero on fault-free runs):
    crashes: int = 0
    rejoins: int = 0
    downtime_s: float = 0.0  # marked-down time, incl. still down at end
    detect_s: float = 0.0  # mean crash -> marked-down latency
    breaker_trips: int = 0  # circuit-breaker opens (grey failures)

    def to_dict(self) -> dict:
        """JSON-ready view (plan-cache counters flattened alongside)."""
        return asdict(self)


@dataclass
class ClassReport:
    """Latency/goodput statistics of one SLO class.

    A class can appear with zero completions (every member rejected or
    shed under overload control); its percentiles are then 0.0 and its
    rates are defined as 0.0 rather than dividing by zero.
    """

    name: str
    completed: int
    deadline_s: Optional[float]
    latency_p50_ms: float
    latency_p99_ms: float
    queue_p50_ms: float
    deadline_met_rate: float
    goodput_rps: float  # deadline-met completions per simulated second
    rejected: int = 0  # turned away at admission
    shed: int = 0  # dropped by a drop_expired sweep
    goodput_share: float = 0.0  # this class's slice of cluster goodput
    failed: int = 0  # lost to faults (terminal)

    @property
    def submitted(self) -> int:
        """Arrivals of this class: completed + rejected + shed + failed."""
        return self.completed + self.rejected + self.shed + self.failed

    def to_dict(self) -> dict:
        """JSON-ready view; the derived ``submitted`` rides along so
        consumers can check per-class conservation without re-deriving."""
        out = asdict(self)
        out["submitted"] = self.submitted
        return out


@dataclass
class SeriesPoint:
    """One sample of cluster state (taken at every simulator event)."""

    t_s: float
    queued: int
    busy_workers: int


@dataclass
class ClusterReport:
    """Everything a capacity decision needs from one simulation run.

    Conservation: ``submitted == completed + rejected + shed + failed``
    for every drained run (nothing left queued, nothing lost in flight),
    and the same identity holds per SLO class.  ``failed``, ``retries``,
    ``requeues`` and ``availability`` are the fault-tolerance view; on a
    fault-free run they are 0 / 0 / 0 / 1.0 and stay out of
    :meth:`render` entirely.
    """

    completed: int
    makespan_s: float
    throughput_rps: float
    goodput_rps: float
    deadline_met_rate: float
    mean_batch_size: float
    latency_p50_ms: float
    latency_p99_ms: float
    classes: List[ClassReport]
    workers: List[WorkerReport]
    steals: int
    submitted: int = 0
    rejected: int = 0
    shed: int = 0
    fairness_index: float = 1.0  # Jain index over per-class goodput
    failed: int = 0  # terminal fault losses
    retries: int = 0  # transient-error redispatches scheduled
    requeues: int = 0  # orphans re-routed off down workers
    availability: float = 1.0  # 1 - downtime / (workers x makespan)
    series: List[SeriesPoint] = field(repr=False, default_factory=list)

    def class_report(self, name: str) -> ClassReport:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"no SLO class {name!r} in report")

    def to_dict(self, include_series: bool = False) -> dict:
        """JSON-ready view of the whole report.

        The machine-readable twin of :meth:`render` — what the CLI's
        ``--json`` mode prints and the provisioning advisor consumes.
        Per-class and per-worker sub-blocks are nested dicts (see
        :meth:`ClassReport.to_dict` / :meth:`WorkerReport.to_dict`);
        every value is a plain int/float/str/bool, so the result
        round-trips through ``json`` without custom encoders.  The event
        time series is omitted unless ``include_series`` (it is the one
        block that grows with run length, not configuration size).
        """
        out = {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "failed": self.failed,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "deadline_met_rate": self.deadline_met_rate,
            "mean_batch_size": self.mean_batch_size,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "fairness_index": self.fairness_index,
            "steals": self.steals,
            "retries": self.retries,
            "requeues": self.requeues,
            "availability": self.availability,
            "fault_activity": self.fault_activity,
            "classes": [cls.to_dict() for cls in self.classes],
            "workers": [w.to_dict() for w in self.workers],
        }
        if include_series:
            out["series"] = [asdict(p) for p in self.series]
        return out

    def render(self) -> str:
        lines = [
            f"requests submitted   {self.submitted} "
            f"(rejected {self.rejected}, shed {self.shed})",
            f"requests completed   {self.completed}",
            f"makespan             {self.makespan_s * 1e3:.2f} ms (simulated)",
            f"throughput           {self.throughput_rps:.0f} req/s",
            f"goodput              {self.goodput_rps:.0f} req/s "
            f"(deadline-met rate {self.deadline_met_rate:.1%})",
            f"mean batch size      {self.mean_batch_size:.2f}",
            f"latency p50/p99      {self.latency_p50_ms:.3f} / {self.latency_p99_ms:.3f} ms",
            f"work steals          {self.steals}",
            f"fairness (Jain)      {self.fairness_index:.3f} over per-class goodput",
        ]
        for cls in self.classes:
            budget = "none" if cls.deadline_s is None else f"{cls.deadline_s * 1e3:.0f} ms"
            lines.append(
                f"  class {cls.name:<12} n={cls.completed:<5} deadline {budget:>7}  "
                f"p50 {cls.latency_p50_ms:.3f} ms  p99 {cls.latency_p99_ms:.3f} ms  "
                f"met {cls.deadline_met_rate:.1%}  rej {cls.rejected}  shed {cls.shed}  "
                f"share {cls.goodput_share:.1%}"
            )
        for w in self.workers:
            lines.append(
                f"  worker {w.wid}: util {w.utilization:.1%}  "
                f"batches {w.batches} (mean size {w.mean_batch_size:.2f})  "
                f"stolen-in {w.stolen_in}  cold compiles {w.cold_compiles}  "
                f"plan cache {w.plan_cache['hits']}h/{w.plan_cache['misses']}m"
            )
        # Fault-tolerance block: appended only when the run actually saw
        # fault activity, so fault-free renders stay byte-identical to
        # the pre-fault simulator's output.
        if self.fault_activity:
            lines.append(
                f"fault tolerance      failed {self.failed}  "
                f"retries {self.retries}  requeues {self.requeues}"
            )
            lines.append(f"availability         {self.availability:.1%}")
            for w in self.workers:
                if not (w.crashes or w.rejoins or w.downtime_s > 0 or w.breaker_trips):
                    continue
                lines.append(
                    f"  worker {w.wid}: crashes {w.crashes}  rejoins {w.rejoins}  "
                    f"down {w.downtime_s * 1e3:.2f} ms  "
                    f"detect {w.detect_s * 1e3:.2f} ms  "
                    f"breaker trips {w.breaker_trips}"
                )
        return "\n".join(lines)

    @property
    def fault_activity(self) -> bool:
        """Did anything fault-related happen this run?"""
        return bool(
            self.failed
            or self.retries
            or self.requeues
            or any(
                w.crashes or w.rejoins or w.downtime_s > 0 or w.breaker_trips
                for w in self.workers
            )
        )


class MetricsCollector:
    """Accumulates records + time series during a simulation run."""

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []
        self.drops: List[DropRecord] = []
        self.series: List[SeriesPoint] = []
        self.submitted: int = 0
        self.first_arrival_s: Optional[float] = None
        self.last_complete_s: float = 0.0

    # ------------------------------------------------------------------
    def note_arrival(self, t: float) -> None:
        self.submitted += 1
        if self.first_arrival_s is None or t < self.first_arrival_s:
            self.first_arrival_s = t

    def note_completion(self, record: RequestRecord) -> None:
        self.records.append(record)
        self.last_complete_s = max(self.last_complete_s, record.complete_s)

    def _note_drop(self, request, t: float, kind: str) -> None:
        self.drops.append(
            DropRecord(
                request_id=request.request_id,
                slo_class=request.slo_class,
                t_s=t,
                kind=kind,
                deadline_s=request.deadline_s,
            )
        )

    def note_rejection(self, request, t: float) -> None:
        """An admission policy turned the request away at arrival."""
        self._note_drop(request, t, "rejected")

    def note_shed(self, request, t: float) -> None:
        """A drop_expired sweep dropped the request from a queue."""
        self._note_drop(request, t, "shed")

    def note_failed(self, request, t: float) -> None:
        """Faults claimed the request: retry budget gone or unrecoverable."""
        self._note_drop(request, t, "failed")

    def sample(self, t: float, queued: int, busy_workers: int) -> None:
        self.series.append(SeriesPoint(t_s=t, queued=queued, busy_workers=busy_workers))

    # ------------------------------------------------------------------
    @property
    def rejected(self) -> int:
        return sum(1 for d in self.drops if d.kind == "rejected")

    @property
    def shed(self) -> int:
        return sum(1 for d in self.drops if d.kind == "shed")

    @property
    def failed(self) -> int:
        return sum(1 for d in self.drops if d.kind == "failed")

    def report(self, workers, steals: int, retries: int = 0, requeues: int = 0) -> ClusterReport:
        """Reduce to a :class:`ClusterReport` (safe on empty runs)."""
        records = self.records
        completed = len(records)
        start = self.first_arrival_s if self.first_arrival_s is not None else 0.0
        makespan = max(self.last_complete_s - start, 0.0)
        latencies = [r.latency_s for r in records]
        met = [r for r in records if r.deadline_met]
        throughput = completed / makespan if makespan > 0 else 0.0
        goodput = len(met) / makespan if makespan > 0 else 0.0

        by_class: Dict[str, List[RequestRecord]] = {}
        for r in records:
            by_class.setdefault(r.slo_class, []).append(r)
        drops_by_class: Dict[str, List[DropRecord]] = {}
        for d in self.drops:
            drops_by_class.setdefault(d.slo_class, []).append(d)
        classes = []
        total_met = len(met)
        for name in sorted(set(by_class) | set(drops_by_class)):
            recs = by_class.get(name, [])
            cls_drops = drops_by_class.get(name, [])
            cls_met = [r for r in recs if r.deadline_met]
            # Every guard below covers a real overload-control outcome:
            # a class can end a run with zero completions (all rejected
            # or shed), and the report must still render finite numbers.
            deadline_s = (
                recs[0].deadline_s if recs else cls_drops[0].deadline_s
            )
            classes.append(
                ClassReport(
                    name=name,
                    completed=len(recs),
                    deadline_s=deadline_s,
                    latency_p50_ms=_percentile([r.latency_s for r in recs], 50) * 1e3,
                    latency_p99_ms=_percentile([r.latency_s for r in recs], 99) * 1e3,
                    queue_p50_ms=_percentile([r.queue_s for r in recs], 50) * 1e3,
                    deadline_met_rate=len(cls_met) / len(recs) if recs else 0.0,
                    goodput_rps=len(cls_met) / makespan if makespan > 0 else 0.0,
                    rejected=sum(1 for d in cls_drops if d.kind == "rejected"),
                    shed=sum(1 for d in cls_drops if d.kind == "shed"),
                    goodput_share=len(cls_met) / total_met if total_met else 0.0,
                    failed=sum(1 for d in cls_drops if d.kind == "failed"),
                )
            )

        worker_reports = []
        total_downtime = 0.0
        for w in workers:
            # A worker still marked down when the run drains has an open
            # downtime window: close it at the measurement horizon.
            downtime = getattr(w, "downtime_s", 0.0)
            down_since = getattr(w, "down_since_s", None)
            if down_since is not None:
                downtime += max(self.last_complete_s - down_since, 0.0)
            total_downtime += downtime
            delays = getattr(w, "detect_delays", [])
            worker_reports.append(
                WorkerReport(
                    wid=w.wid,
                    utilization=w.busy_s / makespan if makespan > 0 else 0.0,
                    busy_s=w.busy_s,
                    batches=w.batches,
                    served=w.served,
                    mean_batch_size=w.served / w.batches if w.batches else 0.0,
                    stolen_in=w.stolen_in,
                    cold_compiles=w.cold_compiles,
                    plan_cache=w.salo.cache_info(),
                    crashes=getattr(w, "crashes", 0),
                    rejoins=getattr(w, "rejoins", 0),
                    breaker_trips=getattr(getattr(w, "breaker", None), "trips", 0),
                    downtime_s=downtime,
                    detect_s=float(np.mean(delays)) if delays else 0.0,
                )
            )
        horizon = makespan * max(len(worker_reports), 1)
        availability = 1.0 - total_downtime / horizon if horizon > 0 else 1.0

        batch_sizes = [r.batch_size for r in records]
        return ClusterReport(
            completed=completed,
            makespan_s=makespan,
            throughput_rps=throughput,
            goodput_rps=goodput,
            deadline_met_rate=len(met) / completed if completed else 0.0,
            mean_batch_size=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            latency_p50_ms=_percentile(latencies, 50) * 1e3,
            latency_p99_ms=_percentile(latencies, 99) * 1e3,
            classes=classes,
            workers=worker_reports,
            steals=steals,
            submitted=self.submitted,
            rejected=self.rejected,
            shed=self.shed,
            fairness_index=jain_index([c.goodput_rps for c in classes]),
            failed=self.failed,
            retries=retries,
            requeues=requeues,
            availability=max(availability, 0.0),
            series=self.series,
        )
