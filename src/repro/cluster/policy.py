"""Batch-close policies: *when* to dispatch, not just which queue to pop.

The serving layer's :class:`~repro.serving.batching.BatchScheduler`
groups requests into same-plan queues; a :class:`BatchPolicy` decides
when a worker should close one of those queues into a batch.  The
decision trades batch occupancy (amortised dispatch cost, higher
throughput) against queueing delay (deadline risk):

* :class:`GreedyFIFOPolicy` — dispatch immediately, longest-waiting
  queue head first (what :meth:`BatchScheduler.next_batch` does; the
  PR 2 serving behaviour).
* :class:`MaxWaitPolicy` — hold a queue open until it fills
  ``max_batch_size`` or its head has waited ``max_wait_s``; bounded
  batching delay with better occupancy under trickle traffic.
* :class:`SizeLatencyPolicy` — the explicit size-vs-latency tradeoff:
  dispatch at ``target_size`` (below the scheduler's maximum), waiting
  at most ``max_wait_s``.
* :class:`EDFPolicy` — earliest-deadline-first across queues *and*
  members: the queue holding the most urgent request is served first and
  its most urgent members ride the batch.  Work-conserving; requests
  without a deadline sort after all deadlined ones (by arrival).

Policies return a :class:`BatchDecision`: a batch to launch now, and/or
the next instant the decision could change without a new arrival (the
simulator arms a timer for it).  They are pure functions of the queue
snapshot and the current time, so the discrete-event simulator stays
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from ..serving.batching import Batch, BatchScheduler
from ..serving.request import AttentionRequest

__all__ = [
    "BatchDecision",
    "BatchPolicy",
    "GreedyFIFOPolicy",
    "MaxWaitPolicy",
    "SizeLatencyPolicy",
    "EDFPolicy",
    "POLICIES",
    "make_policy",
]

_EPS = 1e-12  # float slack when comparing "has waited long enough"


@dataclass
class BatchDecision:
    """Outcome of one policy consultation.

    ``batch`` — launch now (``None``: nothing ready).
    ``next_check_s`` — earliest future time the answer could change with
    no new arrival; the simulator arms a timer (``None``: only a new
    arrival or completion can change the answer).
    """

    batch: Optional[Batch] = None
    next_check_s: Optional[float] = None


class BatchPolicy:
    """Decides when a worker closes a queue into a batch."""

    name = "abstract"

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GreedyFIFOPolicy(BatchPolicy):
    """Dispatch immediately: longest-waiting queue head, FIFO members."""

    name = "greedy-fifo"

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        return BatchDecision(batch=queue.next_batch())


class MaxWaitPolicy(BatchPolicy):
    """Wait for fuller batches, but never longer than ``max_wait_s``.

    A queue is *ready* once it holds ``target_size`` requests (default:
    the scheduler's ``max_batch_size``) or its head request has waited
    ``max_wait_s``.  Among ready queues the longest-waiting head goes
    first; with none ready, the decision names the earliest expiry so
    the caller can re-consult exactly then.
    """

    name = "max-wait"

    def __init__(self, max_wait_s: float, target_size: Optional[int] = None) -> None:
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if target_size is not None and target_size < 1:
            raise ValueError(f"target_size must be >= 1, got {target_size}")
        self.max_wait_s = max_wait_s
        self.target_size = target_size

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        target = self.target_size or queue.max_batch_size
        target = min(target, queue.max_batch_size)
        best_key: Optional[Tuple] = None
        best_arrival: Optional[float] = None
        next_expiry: Optional[float] = None
        for key, members in queue.group_items():
            head = members[0].arrival_s
            ready = len(members) >= target or (now - head) >= self.max_wait_s - _EPS
            if ready:
                if best_arrival is None or head < best_arrival:
                    best_key, best_arrival = key, head
            else:
                expiry = head + self.max_wait_s
                if next_expiry is None or expiry < next_expiry:
                    next_expiry = expiry
        if best_key is not None:
            return BatchDecision(batch=queue.take(best_key))
        return BatchDecision(next_check_s=next_expiry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_wait_s={self.max_wait_s})"


class SizeLatencyPolicy(MaxWaitPolicy):
    """Dispatch at ``target_size`` members, waiting at most ``max_wait_s``.

    The explicit occupancy-vs-latency knob: target 1 degenerates to
    greedy FIFO, target ``max_batch_size`` to :class:`MaxWaitPolicy`.
    """

    name = "size-latency"

    def __init__(self, target_size: int, max_wait_s: float) -> None:
        super().__init__(max_wait_s=max_wait_s, target_size=target_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(target_size={self.target_size}, "
            f"max_wait_s={self.max_wait_s})"
        )


def _urgency(request: AttentionRequest) -> Tuple[float, float]:
    """EDF sort key: absolute deadline first, arrival as tiebreak.

    ``absolute_deadline_s`` is ``inf`` for deadline-free requests, so
    best-effort traffic naturally yields to any deadlined request.
    """
    return (request.absolute_deadline_s, request.arrival_s)


class EDFPolicy(BatchPolicy):
    """Earliest-deadline-first with SLO classes (work-conserving).

    Serves the queue containing the globally most urgent request and
    fills the batch with that queue's most urgent members.  Batches stay
    same-plan (the scheduler's grouping invariant); urgency only decides
    *which* queue and *which* members.
    """

    name = "edf"

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        best_key: Optional[Tuple] = None
        best_urgency: Optional[Tuple[float, float]] = None
        for key, members in queue.group_items():
            urgency = min(_urgency(r) for r in members)
            if best_urgency is None or urgency < best_urgency:
                best_key, best_urgency = key, urgency
        if best_key is None:
            return BatchDecision()
        return BatchDecision(batch=queue.take(best_key, order=_urgency))


POLICIES: Dict[str, Type[BatchPolicy]] = {
    GreedyFIFOPolicy.name: GreedyFIFOPolicy,
    MaxWaitPolicy.name: MaxWaitPolicy,
    SizeLatencyPolicy.name: SizeLatencyPolicy,
    EDFPolicy.name: EDFPolicy,
}


def make_policy(name: str, **kwargs) -> BatchPolicy:
    """Instantiate a policy by registry name (CLI / experiment sweeps)."""
    if name not in POLICIES:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(POLICIES)}")
    return POLICIES[name](**kwargs)
