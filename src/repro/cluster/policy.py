"""Batch-close policies: *when* to dispatch, not just which queue to pop.

The serving layer's :class:`~repro.serving.batching.BatchScheduler`
groups requests into same-plan queues; a :class:`BatchPolicy` decides
when a worker should close one of those queues into a batch.  The
decision trades batch occupancy (amortised dispatch cost, higher
throughput) against queueing delay (deadline risk):

* :class:`GreedyFIFOPolicy` — dispatch immediately, longest-waiting
  queue head first (what :meth:`BatchScheduler.next_batch` does; the
  PR 2 serving behaviour).
* :class:`MaxWaitPolicy` — hold a queue open until it fills
  ``max_batch_size`` or its head has waited ``max_wait_s``; bounded
  batching delay with better occupancy under trickle traffic.
* :class:`SizeLatencyPolicy` — the explicit size-vs-latency tradeoff:
  dispatch at ``target_size`` (below the scheduler's maximum), waiting
  at most ``max_wait_s``.
* :class:`EDFPolicy` — earliest-deadline-first across queues *and*
  members: the queue holding the most urgent request is served first and
  its most urgent members ride the batch.  Work-conserving; requests
  without a deadline sort after all deadlined ones (by arrival), and
  *expired* requests (deadline already missed) sort after everything —
  doomed work must never displace feasible work.
* :class:`WeightedFairPolicy` — multi-tenant fairness: deficit
  round-robin over SLO classes with per-class weights.  Under sustained
  backlog each class's share of served requests converges to its weight
  share, so a flood from one tenant class cannot starve another.

Load shedding: every policy accepts ``drop_expired=True`` to sweep out
requests whose deadline has already passed before closing a batch —
they can no longer be served in time, so dropping them converts wasted
service into goodput.  Shed requests ride back on
:attr:`BatchDecision.shed` for the caller to account.

Policies return a :class:`BatchDecision`: a batch to launch now, the
requests shed by the sweep, and/or the next instant the decision could
change without a new arrival (the simulator arms a timer for it).  All
policies are deterministic functions of the queue snapshot, the current
time and (for :class:`WeightedFairPolicy`) their own deficit counters —
never of a wall clock or RNG — so the discrete-event simulator stays
replayable.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Type

from ..serving.batching import Batch, BatchScheduler
from ..serving.request import AttentionRequest

__all__ = [
    "BatchDecision",
    "BatchPolicy",
    "GreedyFIFOPolicy",
    "MaxWaitPolicy",
    "SizeLatencyPolicy",
    "EDFPolicy",
    "WeightedFairPolicy",
    "POLICIES",
    "make_policy",
    "recovery_order",
]

_EPS = 1e-12  # float slack when comparing "has waited long enough"


@dataclass
class BatchDecision:
    """Outcome of one policy consultation.

    ``batch`` — launch now (``None``: nothing ready).
    ``shed`` — requests dropped by the expiry sweep (``drop_expired``);
    the caller records them as shed, they will never be served.
    ``next_check_s`` — earliest future time the answer could change with
    no new arrival; the simulator arms a timer (``None``: only a new
    arrival or completion can change the answer).
    """

    batch: Optional[Batch] = None
    next_check_s: Optional[float] = None
    shed: Tuple[AttentionRequest, ...] = field(default=())


class BatchPolicy:
    """Decides when a worker closes a queue into a batch.

    ``drop_expired`` enables the load-shedding sweep shared by every
    policy: before a consultation inspects the queues, requests whose
    absolute deadline is already in the past are removed and returned on
    :attr:`BatchDecision.shed`.  Serving them is pure waste — completion
    happens strictly after dispatch, so a request expired at dispatch
    time cannot meet its deadline.
    """

    name = "abstract"

    def __init__(self, drop_expired: bool = False) -> None:
        self.drop_expired = drop_expired

    def shed_expired(self, queue: BatchScheduler, now: float) -> Tuple[AttentionRequest, ...]:
        """Sweep out already-doomed requests (no-op unless ``drop_expired``)."""
        if not self.drop_expired:
            return ()
        return tuple(queue.prune(lambda r: r.absolute_deadline_s <= now))

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GreedyFIFOPolicy(BatchPolicy):
    """Dispatch immediately: longest-waiting queue head, FIFO members."""

    name = "greedy-fifo"

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        shed = self.shed_expired(queue, now)
        return BatchDecision(batch=queue.next_batch(), shed=shed)


class MaxWaitPolicy(BatchPolicy):
    """Wait for fuller batches, but never longer than ``max_wait_s``.

    A queue is *ready* once it holds ``target_size`` requests (default:
    the scheduler's ``max_batch_size``) or its head request has waited
    ``max_wait_s``.  Among ready queues the longest-waiting head goes
    first; with none ready, the decision names the earliest expiry so
    the caller can re-consult exactly then.
    """

    name = "max-wait"

    def __init__(
        self,
        max_wait_s: float,
        target_size: Optional[int] = None,
        drop_expired: bool = False,
    ) -> None:
        super().__init__(drop_expired=drop_expired)
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if target_size is not None and target_size < 1:
            raise ValueError(f"target_size must be >= 1, got {target_size}")
        self.max_wait_s = max_wait_s
        self.target_size = target_size

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        shed = self.shed_expired(queue, now)
        target = self.target_size or queue.max_batch_size
        target = min(target, queue.max_batch_size)
        best_key: Optional[Tuple] = None
        best_arrival: Optional[float] = None
        next_expiry: Optional[float] = None
        for key, members in queue.group_items():
            head = members[0].arrival_s
            ready = len(members) >= target or (now - head) >= self.max_wait_s - _EPS
            if ready:
                if best_arrival is None or head < best_arrival:
                    best_key, best_arrival = key, head
            else:
                expiry = head + self.max_wait_s
                if next_expiry is None or expiry < next_expiry:
                    next_expiry = expiry
        if best_key is not None:
            return BatchDecision(batch=queue.take(best_key), shed=shed)
        return BatchDecision(next_check_s=next_expiry, shed=shed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_wait_s={self.max_wait_s})"


class SizeLatencyPolicy(MaxWaitPolicy):
    """Dispatch at ``target_size`` members, waiting at most ``max_wait_s``.

    The explicit occupancy-vs-latency knob: target 1 degenerates to
    greedy FIFO, target ``max_batch_size`` to :class:`MaxWaitPolicy`.
    """

    name = "size-latency"

    def __init__(
        self, target_size: int, max_wait_s: float, drop_expired: bool = False
    ) -> None:
        super().__init__(
            max_wait_s=max_wait_s, target_size=target_size, drop_expired=drop_expired
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(target_size={self.target_size}, "
            f"max_wait_s={self.max_wait_s})"
        )


def _urgency(request: AttentionRequest, now: float) -> Tuple[bool, float, float]:
    """EDF sort key at time ``now``: feasible first, then deadline, then arrival.

    ``absolute_deadline_s`` is ``inf`` for deadline-free requests, so
    best-effort traffic naturally yields to any *feasible* deadlined
    request.  A request whose deadline has already passed can no longer
    meet its SLO no matter when it is served, so the expired flag sorts
    it after every feasible request — including deadline-free ones, which
    can still complete "in time" — instead of letting its (small) stale
    deadline hijack the front of the order.
    """
    expired = request.absolute_deadline_s <= now
    return (expired, request.absolute_deadline_s, request.arrival_s)


def recovery_order(requests) -> list:
    """Oldest-deadline-first order for requeuing a down worker's orphans.

    The requests a crashed worker strands (its lost in-flight batch plus
    everything still queued) have already burned queueing time; the ones
    closest to their deadline have the least slack left, so recovery
    re-routes them first — the same urgency rule EDF dispatch uses, with
    arrival order breaking ties (and fully ordering best-effort traffic,
    whose deadline is ``inf``).
    """
    return sorted(requests, key=lambda r: (r.absolute_deadline_s, r.arrival_s))


class EDFPolicy(BatchPolicy):
    """Earliest-deadline-first with SLO classes (work-conserving).

    Serves the queue containing the globally most urgent request and
    fills the batch with that queue's most urgent members.  Batches stay
    same-plan (the scheduler's grouping invariant); urgency only decides
    *which* queue and *which* members.  Expired requests sort after all
    feasible ones (see :func:`_urgency`); with ``drop_expired=True`` they
    are shed outright instead of served late.
    """

    name = "edf"

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        shed = self.shed_expired(queue, now)
        best_key: Optional[Tuple] = None
        best_urgency: Optional[Tuple[bool, float, float]] = None
        for key, members in queue.group_items():
            urgency = min(_urgency(r, now) for r in members)
            if best_urgency is None or urgency < best_urgency:
                best_key, best_urgency = key, urgency
        if best_key is None:
            return BatchDecision(shed=shed)
        return BatchDecision(
            batch=queue.take(best_key, order=lambda r: _urgency(r, now)), shed=shed
        )


class WeightedFairPolicy(BatchPolicy):
    """Deficit round-robin over SLO classes: weighted multi-tenant shares.

    Each SLO class holds a credit balance.  When a batch slot opens, all
    *backlogged* classes (those with queued requests) are topped up in
    proportion to their weights until the richest class can afford a
    request, and that class is served: the queue whose earliest member of
    the class arrived first is closed, most urgent class members first.
    Every member of the dispatched batch — including same-plan members of
    other classes riding along to fill it — is charged to its own class,
    so under sustained backlog each class's share of served work
    converges to ``weight / sum(weights)``.  Credit of a class with
    nothing queued lapses (classic DRR), so an idle tenant cannot hoard
    a burst allowance.

    Charging is flat by default: every request costs one credit, so the
    converged share is a share of served *requests*.  With
    ``length_weighted=True`` a request instead costs
    ``n / length_unit`` credits — DRR's classic variable-quantum form,
    with sequence length standing in for service cost (the accelerator
    runs the plan once per sequence, so per-request service time scales
    with n at fixed structure).  The converged share is then a share of
    served *tokens*: a class sending 4x-longer requests completes ~4x
    fewer of them, instead of crowding out a short-request class of
    equal weight.

    The policy is stateful (the deficit counters persist across
    consultations) but strictly deterministic: credits evolve only
    through the decisions themselves.  Counters are kept *per queue* —
    one policy instance is shared by every worker of a simulated pool,
    and each worker's scheduler runs its own DRR round: lapsing or
    spending credit on one worker must not touch a class that is
    backlogged on another.
    """

    name = "weighted-fair"

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        default_weight: float = 1.0,
        drop_expired: bool = False,
        length_weighted: bool = False,
        length_unit: float = 64.0,
    ) -> None:
        super().__init__(drop_expired=drop_expired)
        if not (length_unit > 0) or not math.isfinite(length_unit):
            raise ValueError(
                f"length_unit must be positive and finite, got {length_unit}"
            )
        self.length_weighted = length_weighted
        self.length_unit = length_unit
        weights = dict(weights or {})
        # `not (w > 0)` instead of `w <= 0`: NaN slips through the
        # latter and a NaN weight turns the credit top-up into an
        # infinite loop (every comparison with NaN is False).
        for cls, w in weights.items():
            if not (w > 0) or not math.isfinite(w):
                raise ValueError(
                    f"weight for class {cls!r} must be positive and finite, got {w}"
                )
        if not (default_weight > 0) or not math.isfinite(default_weight):
            raise ValueError(
                f"default_weight must be positive and finite, got {default_weight}"
            )
        self.weights = weights
        self.default_weight = default_weight
        # Weak keys: a dead worker queue must not leak its counters — or
        # worse, donate them to a fresh queue reusing its memory address.
        self._credit: "weakref.WeakKeyDictionary[BatchScheduler, Dict[str, float]]" = (
            weakref.WeakKeyDictionary()
        )

    def weight(self, slo_class: str) -> float:
        return self.weights.get(slo_class, self.default_weight)

    def charge(self, request: AttentionRequest) -> float:
        """Credits one served request costs its class (DRR quantum units)."""
        if not self.length_weighted:
            return 1.0
        return request.n / self.length_unit

    def credit(self, queue: BatchScheduler) -> Dict[str, float]:
        """This queue's deficit counters (one DRR round per worker queue)."""
        return self._credit.setdefault(queue, {})

    def next_batch(self, queue: BatchScheduler, now: float) -> BatchDecision:
        shed = self.shed_expired(queue, now)
        items = queue.group_items()
        if not items:
            return BatchDecision(shed=shed)
        backlogged = sorted({r.slo_class for _, members in items for r in members})
        # Idle classes lose their balance: DRR's no-hoarding rule.
        credit = {
            c: v for c, v in self.credit(queue).items() if c in backlogged
        }
        self._credit[queue] = credit
        total_weight = sum(self.weight(c) for c in backlogged)
        # A class is affordable when its credit covers the charge of its
        # earliest queued request (its DRR head).  Flat charging makes
        # every cost 1.0 — the classic one-credit rule — without paying
        # for the head scan over every queued request.
        if self.length_weighted:
            head: Dict[str, AttentionRequest] = {}
            for _, members in items:
                for r in members:
                    h = head.get(r.slo_class)
                    if h is None or r.arrival_s < h.arrival_s:
                        head[r.slo_class] = r
            cost = {c: self.charge(head[c]) for c in backlogged}
        else:
            cost = dict.fromkeys(backlogged, 1.0)
        while True:
            # max() keeps the first maximal element of the sorted class
            # list, so surplus ties break deterministically by name.
            chosen = max(backlogged, key=lambda c: credit.get(c, 0.0) - cost[c])
            if credit.get(chosen, 0.0) >= cost[chosen]:
                break
            for c in backlogged:
                credit[c] = credit.get(c, 0.0) + self.weight(c) / total_weight
        best_key: Optional[Tuple] = None
        best_arrival: Optional[float] = None
        for key, members in items:
            arrivals = [r.arrival_s for r in members if r.slo_class == chosen]
            if arrivals and (best_arrival is None or min(arrivals) < best_arrival):
                best_key, best_arrival = key, min(arrivals)
        batch = queue.take(
            best_key, order=lambda r: (r.slo_class != chosen, _urgency(r, now))
        )
        for r in batch.requests:
            credit[r.slo_class] = credit.get(r.slo_class, 0.0) - self.charge(r)
        return BatchDecision(batch=batch, shed=shed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(weights={self.weights}, "
            f"length_weighted={self.length_weighted})"
        )


POLICIES: Dict[str, Type[BatchPolicy]] = {
    GreedyFIFOPolicy.name: GreedyFIFOPolicy,
    MaxWaitPolicy.name: MaxWaitPolicy,
    SizeLatencyPolicy.name: SizeLatencyPolicy,
    EDFPolicy.name: EDFPolicy,
    WeightedFairPolicy.name: WeightedFairPolicy,
}


def make_policy(name: str, **kwargs) -> BatchPolicy:
    """Instantiate a policy by registry name (CLI / experiment sweeps)."""
    if name not in POLICIES:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(POLICIES)}")
    return POLICIES[name](**kwargs)
