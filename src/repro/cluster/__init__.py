"""Discrete-event cluster simulator for SALO serving deployments.

Answers the provisioning question a deployed accelerator study needs:
*how many SALO engines, under which batching policy, meet a p99 latency
SLO at a given traffic level?*  Layered on the serving stack:

* :mod:`repro.cluster.arrivals` — traffic: Poisson / bursty (on-off)
  open-loop generators, recorded-trace replay, and a closed-loop client
  population, all emitting timestamped ``AttentionRequest`` s with SLO
  classes and latency deadlines.
* :mod:`repro.cluster.policy` — *when* a batch closes: greedy FIFO,
  max-wait timeout, size-vs-latency target, earliest-deadline-first,
  weighted-fair (deficit round-robin over SLO classes); every policy can
  also shed already-doomed requests (``drop_expired``).
* :mod:`repro.serving.admission` (re-exported here) — whether a request
  enters at all: admit-all, queue-depth cap, estimated-wait cap
  (cost-model doomed-at-arrival test), per-SLO-class token buckets —
  the overload valve that keeps rho > 1 traffic from collapsing goodput.
* :mod:`repro.cluster.pool` — N worker engines with plan-affinity
  routing (warm plan caches are per-engine state worth routing for),
  work stealing and per-worker accounting; service times come from the
  paper's cycle model (``SALO.estimate``) in the deterministic default,
  or measured engine wall time.
* :mod:`repro.cluster.faults` — deterministic fault injection (worker
  crash / straggler / transient dispatch errors) plus the heartbeat and
  retry/requeue recovery knobs; workers carry an ``up -> suspect ->
  down -> rejoined`` lifecycle and the conservation law gains a terminal
  ``failed`` bucket.
* :mod:`repro.cluster.simulator` / :mod:`repro.cluster.metrics` — the
  heap-driven event loop and the :class:`ClusterReport` (per-class
  percentiles, goodput, utilisation, queue-depth time series,
  availability and recovery counters under faults).
* :mod:`repro.cluster.decode` — the decode phase: continuous-batching
  workers stepping autoregressive sequences on the cost-model clock,
  with TTFT/ITL SLO classes, tokens/s-vs-concurrency metrics, and a
  token-level conservation law on top of the sequence-level one.

Entry points: the ``salo-repro simulate`` CLI subcommand and the
``serving_capacity`` experiment sweep.
"""

# Admission control lives in the serving layer (both the session door
# and the cluster arrival gate consume it); re-exported here because it
# is the cluster simulator's overload valve.
from ..serving.admission import (
    ADMISSIONS,
    AdmissionContext,
    AdmissionPolicy,
    AdmitAll,
    EstimatedWaitCap,
    QueueDepthCap,
    TokenBucketAdmission,
    make_admission,
    queue_drain_estimate,
)
from .arrivals import (
    DEFAULT_SLO_CLASSES,
    ClosedLoopSource,
    OnOffProcess,
    OpenLoopSource,
    PoissonProcess,
    RequestFactory,
    RequestSource,
    SLOClass,
    WorkloadSpec,
    open_loop,
    replay_source,
)
from .faults import (
    CrashSpec,
    FaultInjector,
    FaultSpec,
    RecoveryConfig,
    StragglerSpec,
    TransientSpec,
    WORKER_DOWN,
    WORKER_SUSPECT,
    WORKER_UP,
)
from .metrics import (
    ClassReport,
    ClusterReport,
    DropRecord,
    MetricsCollector,
    RequestRecord,
    WorkerReport,
    jain_index,
)
from .policy import (
    POLICIES,
    BatchDecision,
    BatchPolicy,
    EDFPolicy,
    GreedyFIFOPolicy,
    MaxWaitPolicy,
    SizeLatencyPolicy,
    WeightedFairPolicy,
    make_policy,
)
from .pool import (
    BULK_BUDGET,
    INTERACTIVE_BUDGET,
    CircuitBreaker,
    CostModelClock,
    EnginePool,
    MeasuredClock,
    ServiceModel,
    Worker,
    service_scales,
)
from .decode import (
    DEFAULT_DECODE_SLO_CLASSES,
    DecodeClassReport,
    DecodeClusterSimulator,
    DecodeReport,
    DecodeSimConfig,
    DecodeSLOClass,
    DecodeWorkloadSpec,
)
from .simulator import ClusterSimulator, SimConfig, simulate

__all__ = [
    "SLOClass",
    "DEFAULT_SLO_CLASSES",
    "WorkloadSpec",
    "RequestFactory",
    "RequestSource",
    "OpenLoopSource",
    "ClosedLoopSource",
    "PoissonProcess",
    "OnOffProcess",
    "open_loop",
    "replay_source",
    "BatchDecision",
    "BatchPolicy",
    "GreedyFIFOPolicy",
    "MaxWaitPolicy",
    "SizeLatencyPolicy",
    "EDFPolicy",
    "WeightedFairPolicy",
    "POLICIES",
    "make_policy",
    "AdmissionContext",
    "AdmissionPolicy",
    "AdmitAll",
    "QueueDepthCap",
    "EstimatedWaitCap",
    "TokenBucketAdmission",
    "ADMISSIONS",
    "make_admission",
    "queue_drain_estimate",
    "Worker",
    "CircuitBreaker",
    "EnginePool",
    "ServiceModel",
    "CostModelClock",
    "MeasuredClock",
    "service_scales",
    "INTERACTIVE_BUDGET",
    "BULK_BUDGET",
    "SimConfig",
    "ClusterSimulator",
    "simulate",
    "DecodeSLOClass",
    "DEFAULT_DECODE_SLO_CLASSES",
    "DecodeWorkloadSpec",
    "DecodeSimConfig",
    "DecodeClusterSimulator",
    "DecodeClassReport",
    "DecodeReport",
    "CrashSpec",
    "StragglerSpec",
    "TransientSpec",
    "FaultSpec",
    "FaultInjector",
    "RecoveryConfig",
    "WORKER_UP",
    "WORKER_SUSPECT",
    "WORKER_DOWN",
    "MetricsCollector",
    "RequestRecord",
    "DropRecord",
    "ClassReport",
    "WorkerReport",
    "ClusterReport",
    "jain_index",
]
