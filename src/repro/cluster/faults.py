"""Fault injection and recovery policy for the cluster simulator.

Real clusters lose workers.  This module gives the discrete-event
simulator a deterministic, seeded failure model — declarative
:class:`FaultSpec` s interpreted by a :class:`FaultInjector` — plus the
:class:`RecoveryConfig` knobs that decide what the cluster *does* about
failures (heartbeat detection, retry budgets, requeue semantics).

Failure model
-------------
* :class:`CrashSpec` — a worker dies at a simulated instant (possibly
  mid-batch: the in-flight batch is lost with it) and optionally rejoins
  ``down_for_s`` later with a **cold plan cache** — rejoining pays the
  cold-compile penalty the :class:`~repro.cluster.pool.CostModelClock`
  already models, exactly like a freshly provisioned engine.
* :class:`StragglerSpec` — a worker serves every batch dispatched inside
  a time window ``factor`` x slower (thermal throttling, a noisy
  neighbour, a failing disk — anything that degrades without killing).
* :class:`TransientSpec` — each dispatch fails with probability ``prob``
  (a dropped RPC, an ECC hiccup): the batch burns its full service time
  and returns an error instead of results.  Drawn from the injector's
  own seeded RNG stream, one draw per dispatch, so a run is replayable.

Detection and recovery
----------------------
Workers carry a lifecycle ``up -> suspect -> down -> (rejoined) up``.
The simulator probes every worker each ``heartbeat_interval_s``; a
crashed worker misses probes, turns *suspect* on the first miss, and is
marked *down* once ``heartbeat_timeout_s`` of silence has elapsed.
Marking a worker down triggers recovery: its orphaned work — lost
in-flight batch members plus everything still queued — is requeued
oldest-deadline-first onto healthy workers (or, with ``requeue=False``,
lands in the terminal ``failed`` bucket: the no-recovery baseline).
Transient dispatch errors retry with capped exponential backoff and
deterministic jitter against a per-request ``max_retries`` budget;
an exhausted budget is also terminal ``failed``.  The conservation law
the property suite pins therefore becomes::

    submitted == completed + rejected + shed + failed

The injector is pure configuration + one RNG stream: it never touches
the event heap itself.  The simulator asks it *what* fails and *when*;
the :class:`RecoveryConfig` says how the cluster responds.  The split is
the seam a future out-of-process transport driver plugs into — a real
worker process would report the same dispatch outcomes
(:data:`DISPATCH_OK` / :data:`DISPATCH_ERROR`) and miss the same
heartbeats, with only the probe transport changing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "CrashSpec",
    "StragglerSpec",
    "TransientSpec",
    "FaultSpec",
    "RecoveryConfig",
    "FaultInjector",
    "DISPATCH_OK",
    "DISPATCH_ERROR",
    "WORKER_UP",
    "WORKER_SUSPECT",
    "WORKER_DOWN",
]

# Dispatch outcomes: the wire protocol a transport driver would speak.
# A *lost* dispatch (worker crashed mid-batch) has no outcome at all —
# the completion event simply never arrives, which is why detection
# needs heartbeats rather than error returns.
DISPATCH_OK = "ok"
DISPATCH_ERROR = "transient-error"

# Worker lifecycle states (see repro.cluster.pool.Worker).
WORKER_UP = "up"
WORKER_SUSPECT = "suspect"
WORKER_DOWN = "down"


@dataclass(frozen=True)
class CrashSpec:
    """Worker ``worker`` dies at ``at_s``; rejoins ``down_for_s`` later.

    ``down_for_s=None`` means the worker never comes back.  A crash
    landing mid-batch loses the in-flight batch: its members are
    recovered (requeued or failed) only once the failure is *detected*
    via missed heartbeats — detection latency is part of the model.
    """

    worker: int
    at_s: float
    down_for_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if not (self.at_s >= 0):
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.down_for_s is not None and not (self.down_for_s > 0):
            raise ValueError(f"down_for_s must be positive, got {self.down_for_s}")


@dataclass(frozen=True)
class StragglerSpec:
    """Worker ``worker`` serves ``factor`` x slower during a window.

    Applies to batches *dispatched* in ``[start_s, start_s + duration_s)``
    — an already-running batch keeps its original completion time, just
    as a real slowdown only affects work scheduled onto the slow node.
    """

    worker: int
    start_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if not (self.start_s >= 0):
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if not (self.duration_s > 0):
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if not (self.factor >= 1.0) or not math.isfinite(self.factor):
            raise ValueError(f"factor must be >= 1 and finite, got {self.factor}")

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.start_s + self.duration_s


@dataclass(frozen=True)
class TransientSpec:
    """Each dispatch fails with probability ``prob`` (seeded RNG draw).

    ``worker=None`` applies to every worker; a window restricts the
    exposure in time.  The failed batch burns its full service time —
    the error is discovered at completion, not at launch.
    """

    prob: float
    worker: Optional[int] = None
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if not (0.0 <= self.prob < 1.0):
            raise ValueError(f"prob must be in [0, 1), got {self.prob}")
        if not (self.start_s >= 0):
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if not (self.end_s > self.start_s):
            raise ValueError("end_s must be after start_s")

    def covers(self, worker: int, t: float) -> bool:
        if self.worker is not None and self.worker != worker:
            return False
        return self.start_s <= t < self.end_s


FaultSpec = Union[CrashSpec, StragglerSpec, TransientSpec]


@dataclass(frozen=True)
class RecoveryConfig:
    """How the cluster responds to failures (all deterministic).

    ``heartbeat_interval_s`` — period of the health probe sweep; only
    armed when an injector with specs is configured, so fault-free runs
    see zero extra events.
    ``heartbeat_timeout_s`` — silence after which a missed-probe worker
    is marked down and its orphaned work recovered.
    ``max_retries`` — per-request budget of transient-error retries;
    the attempt that exhausts it lands the request in the terminal
    ``failed`` bucket.
    ``backoff_base_s`` / ``backoff_cap_s`` — retry delay is
    ``min(base * 2**(attempt-1), cap)`` plus deterministic jitter of up
    to ``backoff_jitter`` of the delay (drawn from the injector's RNG
    stream), decorrelating retry storms without wall-clock randomness.
    ``requeue`` — recover a down worker's orphaned requests onto healthy
    workers (oldest deadline first); ``False`` fails them instead (the
    no-recovery baseline the chaos experiment contrasts against).
    ``breaker_threshold`` — when set, every worker gets a
    :class:`~repro.cluster.pool.CircuitBreaker` that opens once this
    fraction of its last ``breaker_window`` dispatches (at least
    ``breaker_min_samples`` of them) failed transiently; the router then
    holds new traffic off the worker for ``breaker_cooldown_s`` before a
    half-open probe.  This catches **grey failures** heartbeats cannot:
    a worker that answers every probe while failing most of its work.
    ``None`` (the default) disables breakers entirely — existing
    configurations behave bit-for-bit as before.
    """

    heartbeat_interval_s: float = 1e-3
    heartbeat_timeout_s: float = 2e-3
    max_retries: int = 3
    backoff_base_s: float = 1e-4
    backoff_cap_s: float = 2e-3
    backoff_jitter: float = 0.1
    requeue: bool = True
    breaker_threshold: Optional[float] = None
    breaker_window: int = 8
    breaker_min_samples: int = 4
    breaker_cooldown_s: float = 2e-3

    def __post_init__(self) -> None:
        if not (self.heartbeat_interval_s > 0):
            raise ValueError(
                f"heartbeat_interval_s must be positive, got {self.heartbeat_interval_s}"
            )
        if not (self.heartbeat_timeout_s > 0):
            raise ValueError(
                f"heartbeat_timeout_s must be positive, got {self.heartbeat_timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not (self.backoff_base_s >= 0) or not (self.backoff_cap_s >= 0):
            raise ValueError("backoff delays must be >= 0")
        if not (0.0 <= self.backoff_jitter <= 1.0):
            raise ValueError(f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}")
        if self.breaker_threshold is not None and not (
            0.0 < self.breaker_threshold <= 1.0
        ):
            raise ValueError(
                f"breaker_threshold must be in (0, 1] or None, got {self.breaker_threshold}"
            )
        if self.breaker_min_samples < 1:
            raise ValueError(
                f"breaker_min_samples must be >= 1, got {self.breaker_min_samples}"
            )
        if self.breaker_window < self.breaker_min_samples:
            raise ValueError(
                f"breaker_window ({self.breaker_window}) must be >= "
                f"breaker_min_samples ({self.breaker_min_samples})"
            )
        if not (self.breaker_cooldown_s > 0):
            raise ValueError(
                f"breaker_cooldown_s must be positive, got {self.breaker_cooldown_s}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Deterministic part of the ``attempt``-th retry delay (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_base_s * (2.0 ** (attempt - 1)), self.backoff_cap_s)


class FaultInjector:
    """Interprets a list of :class:`FaultSpec` s for one simulation run.

    Deterministic: crash/rejoin instants and straggler windows come
    straight from the specs; transient failures and retry jitter come
    from one ``numpy`` RNG stream seeded by ``seed``, advanced only when
    a matching spec could actually fire.  Two runs with the same specs,
    seed and traffic are event-for-event identical; an injector with
    **no specs** never draws, never schedules, never multiplies — a run
    carrying one is byte-identical to a run with no injector at all
    (pinned by the property suite).
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.crashes: Tuple[CrashSpec, ...] = tuple(
            s for s in self.specs if isinstance(s, CrashSpec)
        )
        self.stragglers: Tuple[StragglerSpec, ...] = tuple(
            s for s in self.specs if isinstance(s, StragglerSpec)
        )
        self.transients: Tuple[TransientSpec, ...] = tuple(
            s for s in self.specs if isinstance(s, TransientSpec)
        )
        unknown = [
            s
            for s in self.specs
            if not isinstance(s, (CrashSpec, StragglerSpec, TransientSpec))
        ]
        if unknown:
            raise TypeError(f"unknown fault spec(s): {unknown!r}")
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when any spec exists (gates heartbeats and RNG draws)."""
        return bool(self.specs)

    def validate_workers(self, workers: int) -> None:
        """Reject specs naming workers the pool does not have."""
        for spec in self.specs:
            wid = getattr(spec, "worker", None)
            if wid is not None and wid >= workers:
                raise ValueError(
                    f"fault spec {spec!r} names worker {wid}, but the pool "
                    f"has only {workers} workers (ids 0..{workers - 1})"
                )

    # ------------------------------------------------------------------
    def crash_events(self) -> List[Tuple[float, int]]:
        """``(at_s, worker)`` for every configured crash, in time order."""
        return sorted((s.at_s, s.worker) for s in self.crashes)

    def rejoin_events(self) -> List[Tuple[float, int]]:
        """``(at_s, worker)`` for every crash that rejoins, in time order."""
        return sorted(
            (s.at_s + s.down_for_s, s.worker)
            for s in self.crashes
            if s.down_for_s is not None
        )

    def service_factor(self, worker: int, t: float) -> float:
        """Straggler multiplier for a batch dispatched on ``worker`` at ``t``."""
        factor = 1.0
        for s in self.stragglers:
            if s.worker == worker and s.active_at(t):
                factor *= s.factor
        return factor

    def dispatch_fails(self, worker: int, t: float) -> bool:
        """Seeded draw: does the dispatch launched on ``worker`` at ``t`` fail?

        The RNG advances only when a transient spec covers the dispatch,
        so configurations without transient faults stay draw-for-draw
        identical to each other regardless of crash/straggler specs.
        """
        for s in self.transients:
            if s.covers(worker, t):
                if float(self._rng.random()) < s.prob:
                    return True
        return False

    def jitter(self, delay_s: float, jitter_frac: float) -> float:
        """Deterministic retry jitter: uniform ``[0, jitter_frac * delay]``."""
        if delay_s <= 0 or jitter_frac <= 0:
            return 0.0
        return float(self._rng.random()) * jitter_frac * delay_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(crashes={len(self.crashes)}, "
            f"stragglers={len(self.stragglers)}, "
            f"transients={len(self.transients)}, seed={self.seed})"
        )
