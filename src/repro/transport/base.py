"""The :class:`WorkerTransport` protocol: how a driver talks to one worker.

The cluster layer was built around a *dispatch-outcome* seam — a worker
receives a batch, and either a :data:`~repro.cluster.faults.DISPATCH_OK`
completion comes back with outputs, a
:data:`~repro.cluster.faults.DISPATCH_ERROR` completion comes back with
an error, or **nothing comes back at all** (the worker died mid-batch)
and only missed heartbeats reveal it.  The simulator models that seam;
this package *implements* it, so the same recovery machinery (detection,
retry, requeue, the four-way conservation law) runs against real worker
processes.

A transport owns exactly one worker.  The protocol is deliberately
narrow and asynchronous:

``submit(request)``
    Hand the worker one batch (:class:`TransportRequest`).  Never
    blocks on execution; completions surface later via :meth:`poll`.
``poll(timeout_s)``
    Collect finished batches as :class:`Completion` objects.  A batch
    submitted to a worker that dies before answering produces **no**
    completion, ever — callers detect that through probes.
``probe(timeout_s)``
    Health check: does the worker answer a status ping within the
    budget?  The real-transport analogue of the simulator's heartbeat
    probe events.
``kill()``
    Make the worker fail *unannounced* (``SIGKILL`` for a process
    driver) — the crash-testing hook; in-flight batches are lost.
``close()``
    Orderly shutdown; releases queues, processes and shared memory.

Drivers
-------
* :class:`~repro.transport.inprocess.InProcessTransport` — the engine
  runs in the caller's process; ``submit`` executes synchronously.
  Today's single-process behaviour, byte-identical outputs.
* :class:`~repro.transport.multiprocess.MultiprocessTransport` — a
  worker process owning its own warm :class:`~repro.api.Runtime`;
  operands travel through ``multiprocessing.shared_memory`` segments
  (the worker maps the same pages — no serialisation of Q/K/V), small
  control messages through queues.  True parallelism: N transports are
  N python processes, N GILs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..cluster.faults import DISPATCH_ERROR, DISPATCH_OK
from ..patterns.base import AttentionPattern

__all__ = [
    "TransportRequest",
    "Completion",
    "WorkerTransport",
    "TransportClosed",
    "DISPATCH_OK",
    "DISPATCH_ERROR",
]


class TransportClosed(RuntimeError):
    """Submit/probe against a transport that was closed or killed."""


@dataclass
class TransportRequest:
    """One batch on the wire: the operands of a single engine dispatch.

    ``q``/``k``/``v`` are stacked ``(b, n, hidden)`` float64 arrays (a
    ``b=1`` batch is still rank 3 — the wire format has one shape).
    ``valid_lens`` carries the per-lane true lengths of a padded
    mixed-length batch (``None`` for uniform batches).  ``batch_id``
    is the caller's correlation key: completions echo it back, which is
    all the driver needs to map outcomes onto queued requests.
    """

    batch_id: int
    pattern: AttentionPattern
    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    heads: int = 1
    valid_lens: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.q = np.ascontiguousarray(self.q, dtype=np.float64)
        self.k = np.ascontiguousarray(self.k, dtype=np.float64)
        self.v = np.ascontiguousarray(self.v, dtype=np.float64)
        if self.q.ndim != 3:
            raise ValueError(
                f"transport requests ship stacked (b, n, hidden) operands, "
                f"got q shape {self.q.shape}"
            )
        if self.k.shape != self.q.shape or self.v.shape != self.q.shape:
            raise ValueError("q, k, v must share shape (b, n, hidden)")
        if self.valid_lens is not None:
            self.valid_lens = np.ascontiguousarray(self.valid_lens, dtype=np.int64)
            if self.valid_lens.shape != (self.q.shape[0],):
                raise ValueError(
                    f"valid_lens must have shape (b,), got {self.valid_lens.shape}"
                )

    @property
    def size(self) -> int:
        return self.q.shape[0]


@dataclass
class Completion:
    """Outcome of one submitted batch, correlated by ``batch_id``.

    ``outcome`` is :data:`DISPATCH_OK` (``output`` holds the stacked
    ``(b, n, hidden)`` result) or :data:`DISPATCH_ERROR` (``error``
    describes the failure; the batch burned ``service_s`` of worker
    time but produced nothing).  A *lost* batch — worker killed
    mid-flight — has no :class:`Completion` at all; that absence is the
    crash signature heartbeat detection exists for.
    """

    batch_id: int
    outcome: str
    output: Optional[np.ndarray] = None
    error: Optional[str] = None
    service_s: float = 0.0  # worker-measured engine time
    stats: object = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.outcome == DISPATCH_OK


class WorkerTransport:
    """Abstract driver for one worker (see module docstring).

    Context-manager protocol closes the transport on exit.  ``wid`` is
    the worker id the driver reports in records and probes.
    """

    #: Driver name ("inprocess" / "multiprocess"); used by CLIs and reports.
    name = "abstract"

    wid: int = 0

    # ------------------------------------------------------------------
    def submit(self, request: TransportRequest) -> None:
        """Queue one batch on the worker (non-blocking w.r.t. execution)."""
        raise NotImplementedError

    def poll(self, timeout_s: float = 0.0) -> Sequence[Completion]:
        """Collect any finished batches, waiting up to ``timeout_s``."""
        raise NotImplementedError

    def probe(self, timeout_s: float = 0.1) -> bool:
        """True when the worker answers a status ping within the budget."""
        raise NotImplementedError

    def cache_info(self) -> dict:
        """The worker engine's plan-cache counters (zeros when unknown)."""
        return {"hits": 0, "misses": 0, "size": 0, "capacity": 0, "hit_rate": 0.0}

    @property
    def alive(self) -> bool:
        """Ground truth on the worker's existence (cheap, no round-trip)."""
        raise NotImplementedError

    @property
    def inflight(self) -> int:
        """Batches submitted but not yet completed (or lost)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Unannounced worker death (crash testing); in-flight work is lost."""
        raise NotImplementedError

    def close(self) -> None:
        """Orderly shutdown; idempotent."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(wid={self.wid})"


# The wire packing IS the local-dispatch packing: one implementation in
# the serving layer, re-exported here, so what ships over shared memory
# cannot drift from what execute_batch hands a same-process engine.
from ..serving.session import stack_batch_operands as stacked_operands  # noqa: E402
