"""Shared-memory tensor blocks: zero-copy operand shipping.

One :class:`ShmBatch` backs one in-flight batch.  The parent allocates a
single ``multiprocessing.shared_memory`` segment laid out as four
contiguous float64 regions — ``q | k | v | out`` — writes the operands
in, and ships only the segment *name* plus shape metadata over the
control queue.  The worker process maps the same physical pages, builds
``numpy`` views over them (no copy, no pickle for tensor data), runs the
engine, and writes the stacked output into the ``out`` region before
sending its tiny completion message.  The parent then reads the output
view and unlinks the segment.

Ownership is strictly parent-side: workers never *create* segments, so a
``kill -9``'d worker can leak nothing the parent does not already hold a
handle to — :meth:`ShmBatch.destroy` (or transport close) reclaims every
segment of every lost batch.

Python's ``resource_tracker`` complicates the attach side: before 3.13,
attaching to an existing segment also *registers* it with the resource
tracker.  For unrelated processes that is the famous premature-unlink
bug, but our workers are ``multiprocessing`` children sharing the
parent's tracker process (fork inherits its pipe, spawn is handed it),
and the tracker's registry is a *set*: the child's attach-register is a
no-op re-add of the parent's own registration.  The widely circulated
"unregister after attach" workaround would here remove the parent's
registration out from under it (the parent's unlink then logs a tracker
``KeyError``), so :func:`attach` deliberately leaves the registration
alone — segment lifetime stays a parent-side concern throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

__all__ = ["ShmBatch", "ShmLayout", "attach"]

_FLOAT = np.float64


def attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment from a worker child (see module docstring)."""
    return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class ShmLayout:
    """Shape metadata shipped alongside a segment name (picklable, tiny)."""

    shape: Tuple[int, int, int]  # (b, n, hidden) of each region

    @property
    def region_items(self) -> int:
        b, n, h = self.shape
        return b * n * h

    @property
    def region_bytes(self) -> int:
        return self.region_items * np.dtype(_FLOAT).itemsize

    @property
    def total_bytes(self) -> int:
        return 4 * self.region_bytes  # q | k | v | out

    def region(self, buf: memoryview, index: int) -> np.ndarray:
        """The ``index``-th region of ``buf`` as a (b, n, hidden) view."""
        start = index * self.region_bytes
        return np.ndarray(
            self.shape, dtype=_FLOAT, buffer=buf, offset=start
        )


class ShmBatch:
    """Parent-side handle on one batch's shared segment.

    Built by :meth:`pack`; the worker side maps the same segment via
    :meth:`views`.  ``destroy()`` is idempotent and must eventually be
    called exactly once per packed batch (normally after the completion
    is consumed; on worker death, during transport cleanup).
    """

    def __init__(self, shm: shared_memory.SharedMemory, layout: ShmLayout) -> None:
        self.shm: Optional[shared_memory.SharedMemory] = shm
        self.layout = layout

    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> "ShmBatch":
        """Allocate a segment and write the stacked operands into it."""
        layout = ShmLayout(shape=tuple(q.shape))  # type: ignore[arg-type]
        shm = shared_memory.SharedMemory(create=True, size=layout.total_bytes)
        buf = shm.buf
        layout.region(buf, 0)[...] = q
        layout.region(buf, 1)[...] = k
        layout.region(buf, 2)[...] = v
        return cls(shm, layout)

    @staticmethod
    def views(
        shm: shared_memory.SharedMemory, layout: ShmLayout
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(q, k, v, out) views over a mapped segment — worker side."""
        buf = shm.buf
        return (
            layout.region(buf, 0),
            layout.region(buf, 1),
            layout.region(buf, 2),
            layout.region(buf, 3),
        )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        if self.shm is None:
            raise ValueError("segment already destroyed")
        return self.shm.name

    def read_output(self) -> np.ndarray:
        """Copy the worker-written ``out`` region into caller-owned memory.

        A copy on purpose: the caller's result must outlive
        :meth:`destroy`, and a view over unlinked shared memory would
        dangle.
        """
        if self.shm is None:
            raise ValueError("segment already destroyed")
        return np.array(self.layout.region(self.shm.buf, 3))

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self.shm is None:
            return
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self.shm = None
