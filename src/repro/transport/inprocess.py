"""In-process transport driver: today's behaviour behind the protocol.

The engine lives in the caller's process and ``submit`` executes the
batch synchronously — the completion is computed before ``submit``
returns and handed out at the next :meth:`poll`.  Outputs are
byte-identical to calling the engine directly (same
:class:`~repro.api.Runtime`, same arrays, no copies through foreign
memory), which is what lets every existing single-process test and
bench stand as the transport's baseline.

The driver still honours the full protocol, including :meth:`kill`:
a killed in-process worker answers no more probes, accepts no more
submits, and *drops unharvested completions* — matching the crash
semantics of a real worker process (results that never made it back to
the driver died with the worker), so crash-recovery logic can be
exercised cheaply before paying for real processes.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional, Sequence

from ..api import Runtime, RuntimeConfig
from .base import (
    DISPATCH_ERROR,
    DISPATCH_OK,
    Completion,
    TransportClosed,
    TransportRequest,
    WorkerTransport,
)

__all__ = ["InProcessTransport"]


class InProcessTransport(WorkerTransport):
    """Synchronous driver over a caller-process :class:`Runtime`."""

    name = "inprocess"

    def __init__(
        self,
        backend: str = "functional",
        wid: int = 0,
        config: Optional[RuntimeConfig] = None,
        clock=time.perf_counter,
    ) -> None:
        if config is None:
            config = RuntimeConfig(backend=backend)
        self.wid = wid
        self.runtime = Runtime(config)
        self.clock = clock
        self._ready: Deque[Completion] = deque()
        self._closed = False
        self._killed = False

    # ------------------------------------------------------------------
    def submit(self, request: TransportRequest) -> None:
        if self._closed or self._killed:
            raise TransportClosed(f"worker {self.wid} is not accepting work")
        t0 = self.clock()
        try:
            result = self.runtime.attend(
                request.pattern,
                request.q,
                request.k,
                request.v,
                heads=request.heads,
                valid_lens=request.valid_lens,
            )
        except Exception as exc:  # engine-level failure -> dispatch error
            self._ready.append(
                Completion(
                    batch_id=request.batch_id,
                    outcome=DISPATCH_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    service_s=self.clock() - t0,
                )
            )
            return
        self._ready.append(
            Completion(
                batch_id=request.batch_id,
                outcome=DISPATCH_OK,
                output=result.output,
                service_s=self.clock() - t0,
                stats=result.stats,
            )
        )

    def poll(self, timeout_s: float = 0.0) -> Sequence[Completion]:
        out: List[Completion] = list(self._ready)
        self._ready.clear()
        return out

    def probe(self, timeout_s: float = 0.1) -> bool:
        return not (self._closed or self._killed)

    def cache_info(self) -> dict:
        return self.runtime.cache_info()

    @property
    def alive(self) -> bool:
        return not (self._closed or self._killed)

    @property
    def inflight(self) -> int:
        return len(self._ready)  # computed, not yet harvested

    def kill(self) -> None:
        """Simulated crash: unharvested completions die with the worker."""
        self._killed = True
        self._ready.clear()

    def close(self) -> None:
        self._closed = True
        self._ready.clear()
