"""Worker transports: the driver layer between cluster and engines.

See :mod:`repro.transport.base` for the protocol, and
:mod:`repro.transport.cluster` for the real-time driver that runs the
simulator's routing/recovery semantics against actual workers.
"""

from .base import (
    Completion,
    DISPATCH_ERROR,
    DISPATCH_OK,
    TransportClosed,
    TransportRequest,
    WorkerTransport,
    stacked_operands,
)
from .cluster import (
    TRANSPORTS,
    TransportCluster,
    TransportClusterConfig,
    make_transport,
)
from .inprocess import InProcessTransport
from .multiprocess import MultiprocessTransport, default_context
from .shm import ShmBatch, ShmLayout, attach

__all__ = [
    "WorkerTransport",
    "TransportRequest",
    "Completion",
    "TransportClosed",
    "DISPATCH_OK",
    "DISPATCH_ERROR",
    "stacked_operands",
    "InProcessTransport",
    "MultiprocessTransport",
    "default_context",
    "TransportCluster",
    "TransportClusterConfig",
    "TRANSPORTS",
    "make_transport",
    "ShmBatch",
    "ShmLayout",
    "attach",
]
