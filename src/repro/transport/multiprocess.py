"""Multiprocess transport driver: one worker process, one warm Runtime.

This is the "true parallelism" half of the transport split.  Each
:class:`MultiprocessTransport` owns one OS process running
:func:`_worker_main`: a loop that builds its own
:class:`~repro.api.Runtime` (its warm plan cache is process-local state,
exactly like a :class:`~repro.cluster.pool.Worker`'s SALO in the
simulator), maps each submitted batch's operands out of shared memory,
executes, writes the stacked output back into the same segment and
answers with a small completion message.  N transports are N python
interpreters — N GILs — so a pool of them is the first configuration in
this repo where multi-worker throughput is *measured* parallelism, not
cost-model arithmetic.

Wire format (per batch)
-----------------------
* One ``multiprocessing.shared_memory`` segment, parent-allocated, laid
  out ``q | k | v | out`` as contiguous float64 ``(b, n, hidden)``
  regions (:mod:`repro.transport.shm`).  Q/K/V are written once by the
  parent and *mapped* — never pickled, never re-copied — by the worker.
* One control message on the request queue:
  ``("submit", batch_id, shm_name, layout, pattern, heads, valid_lens)``
  — everything small enough that pickling is noise.
* One completion message on the completion queue:
  ``("done", batch_id, outcome, error, service_s)`` with the output
  already sitting in the segment's ``out`` region.

Crash semantics
---------------
:meth:`kill` delivers ``SIGKILL`` — the real thing, not a simulation.
A killed worker sends nothing: its in-flight batches simply never
complete, probes go unanswered, ``alive`` flips false, and the segments
of lost batches are reclaimed by the parent during cleanup.  This is
exactly the failure signature the cluster's heartbeat detection and
requeue recovery were built against, which is the point: the recovery
paths the simulator models are exercised here by an actual dead process.
"""

from __future__ import annotations

import queue as queue_mod
import time
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

from .base import (
    DISPATCH_ERROR,
    DISPATCH_OK,
    Completion,
    TransportClosed,
    TransportRequest,
    WorkerTransport,
)
from .shm import ShmBatch, ShmLayout, attach

__all__ = ["MultiprocessTransport", "default_context"]


def default_context() -> str:
    """Preferred start method: ``fork`` where the OS offers it.

    Fork keeps worker start-up in the low milliseconds (no interpreter
    re-import); the worker still builds its own Runtime after the fork,
    so its caches are its own.  Platforms without fork fall back to
    ``spawn`` transparently.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _worker_main(wid, runtime_config, warm_specs, req_q, done_q) -> None:
    """Worker process body: warm a Runtime, serve the request queue.

    ``warm_specs`` is a list of ``(pattern, heads)`` pairs compiled
    before the worker reports ready, so steady-state traffic never pays
    a cold compile (the transport analogue of plan-affinity warmth).
    Runs until a ``("stop",)`` message; every exception inside a dispatch
    is converted to a :data:`DISPATCH_ERROR` completion rather than
    killing the loop — only signals kill a worker.
    """
    from ..api import Runtime  # late import: after fork/spawn

    runtime = Runtime(runtime_config)
    for pattern, heads in warm_specs:
        runtime.warm([pattern], heads=heads)
    done_q.put(("ready", wid))
    while True:
        msg = req_q.get()
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "ping":
            done_q.put(("pong", msg[1]))
            continue
        if kind == "stats":
            done_q.put(("stats", runtime.cache_info()))
            continue
        # ("submit", batch_id, shm_name, layout, pattern, heads, valid_lens)
        _, batch_id, shm_name, layout, pattern, heads, valid_lens = msg
        t0 = time.perf_counter()
        try:
            shm = attach(shm_name)
            try:
                q, k, v, out = ShmBatch.views(shm, layout)
                result = runtime.attend(
                    pattern, q, k, v, heads=heads, valid_lens=valid_lens
                )
                out[...] = result.output
            finally:
                shm.close()
        except Exception as exc:
            done_q.put(
                (
                    "done",
                    batch_id,
                    DISPATCH_ERROR,
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - t0,
                )
            )
            continue
        done_q.put(("done", batch_id, DISPATCH_OK, None, time.perf_counter() - t0))


class MultiprocessTransport(WorkerTransport):
    """Driver over one out-of-process worker (see module docstring).

    Parameters
    ----------
    backend:
        Registered backend name the worker's Runtime is built from.
    wid:
        Worker id echoed in probes and reports.
    warm:
        ``(pattern, heads)`` pairs the worker compiles before reporting
        ready (start-up blocks until the warm-up finishes).
    context:
        ``multiprocessing`` start method; default :func:`default_context`.
    start_timeout_s:
        Budget for the worker's ready handshake (covers interpreter
        start plus warm-up compiles).
    """

    name = "multiprocess"

    def __init__(
        self,
        backend: str = "functional",
        wid: int = 0,
        warm: Sequence[Tuple] = (),
        context: Optional[str] = None,
        start_timeout_s: float = 60.0,
        runtime_config=None,
    ) -> None:
        from ..api import RuntimeConfig

        self.wid = wid
        self._config = (
            runtime_config if runtime_config is not None else RuntimeConfig(backend=backend)
        )
        # The shared-memory resource tracker must exist *before* the
        # worker forks: a child forked first would lazily spawn its own
        # private tracker on its first attach, and that tracker would
        # try to reclaim (already-unlinked) parent-owned segments at
        # child exit.  Started up-front, parent and children share one
        # tracker whose set-semantics registry keeps attach/unlink
        # accounting balanced (see repro.transport.shm).
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._ctx = mp.get_context(context or default_context())
        self._req_q = self._ctx.Queue()
        self._done_q = self._ctx.Queue()
        self._pending: Dict[int, ShmBatch] = {}
        self._ready: List[Completion] = []
        self._pongs: set = set()
        self._ping_serial = 0
        self._last_stats: Optional[dict] = None
        self._closed = False
        self._process = self._ctx.Process(
            target=_worker_main,
            args=(wid, self._config, list(warm), self._req_q, self._done_q),
            daemon=True,
        )
        self._process.start()
        self._await_ready(start_timeout_s)

    def _await_ready(self, timeout_s: float) -> None:
        deadline = time.perf_counter() + timeout_s
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                self.kill()
                raise TransportClosed(
                    f"worker {self.wid} did not report ready within {timeout_s}s"
                )
            try:
                msg = self._done_q.get(timeout=min(remaining, 0.2))
            except queue_mod.Empty:
                if not self._process.is_alive():
                    raise TransportClosed(
                        f"worker {self.wid} died during start-up"
                    )
                continue
            if msg[0] == "ready":
                return

    # ------------------------------------------------------------------
    def submit(self, request: TransportRequest) -> None:
        if self._closed or not self.alive:
            raise TransportClosed(f"worker {self.wid} is not accepting work")
        block = ShmBatch.pack(request.q, request.k, request.v)
        self._pending[request.batch_id] = block
        self._req_q.put(
            (
                "submit",
                request.batch_id,
                block.name,
                block.layout,
                request.pattern,
                request.heads,
                request.valid_lens,
            )
        )

    # ------------------------------------------------------------------
    def _absorb(self, msg) -> None:
        """File one completion-queue message into the right bucket."""
        kind = msg[0]
        if kind == "done":
            _, batch_id, outcome, error, service_s = msg
            block = self._pending.pop(batch_id, None)
            output = None
            if block is not None and outcome == DISPATCH_OK:
                output = block.read_output()
            if block is not None:
                block.destroy()
            self._ready.append(
                Completion(
                    batch_id=batch_id,
                    outcome=outcome,
                    output=output,
                    error=error,
                    service_s=service_s,
                )
            )
        elif kind == "pong":
            self._pongs.add(msg[1])
        elif kind == "stats":
            self._last_stats = msg[1]

    def _drain(self, timeout_s: float = 0.0) -> None:
        """Absorb queued messages, waiting up to ``timeout_s`` for the first."""
        deadline = time.perf_counter() + timeout_s
        first = True
        while True:
            try:
                wait = max(0.0, deadline - time.perf_counter()) if first else 0.0
                msg = self._done_q.get(timeout=wait) if wait > 0 else self._done_q.get_nowait()
            except queue_mod.Empty:
                return
            first = False
            self._absorb(msg)

    def poll(self, timeout_s: float = 0.0) -> Sequence[Completion]:
        self._drain(timeout_s)
        out = self._ready
        self._ready = []
        return out

    def probe(self, timeout_s: float = 0.1) -> bool:
        """Ping the worker loop; completions arriving meanwhile are kept.

        A worker that is mid-batch cannot answer until the batch ends
        (its loop is single-threaded, like a GPU worker saturating its
        device) — callers treat an unanswered probe on a *busy* worker
        as load, not death; a dead process fails instantly via
        ``alive``.
        """
        if self._closed or not self.alive:
            return False
        self._ping_serial += 1
        token = (self.wid, self._ping_serial)
        try:
            self._req_q.put(("ping", token))
        except (ValueError, OSError):  # queue closed under us
            return False
        deadline = time.perf_counter() + timeout_s
        while time.perf_counter() < deadline:
            self._drain(timeout_s=min(0.02, timeout_s))
            if token in self._pongs:
                self._pongs.discard(token)
                return True
            if not self.alive:
                return False
        return False

    def cache_info(self) -> dict:
        """Worker-reported plan-cache counters (last known on timeout)."""
        if self.alive and not self._closed and self.inflight == 0:
            try:
                self._req_q.put(("stats",))
                deadline = time.perf_counter() + 0.5
                self._last_stats = None
                while time.perf_counter() < deadline and self._last_stats is None:
                    self._drain(timeout_s=0.05)
            except (ValueError, OSError):  # pragma: no cover - closed queue
                pass
        if self._last_stats is not None:
            return self._last_stats
        return super().cache_info()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def inflight(self) -> int:
        return len(self._pending)

    def kill(self) -> None:
        """SIGKILL the worker process; in-flight batches are lost."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._process is not None and self._process.is_alive():
            try:
                self._req_q.put(("stop",))
                self._process.join(timeout=5.0)
            except (ValueError, OSError):  # pragma: no cover - queue gone
                pass
            if self._process.is_alive():
                self.kill()
        # Reclaim segments of batches that never completed (lost work).
        for block in self._pending.values():
            block.destroy()
        self._pending.clear()
        for q in (self._req_q, self._done_q):
            q.cancel_join_thread()
            q.close()
