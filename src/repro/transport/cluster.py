"""Real-time cluster driver over :class:`WorkerTransport` s.

:class:`TransportCluster` is the wall-clock sibling of
:class:`repro.cluster.simulator.ClusterSimulator`: the same routing,
batching, retry, requeue and accounting semantics, but driven by real
transports instead of a simulated event heap.  It reuses the simulator's
own bookkeeping wholesale — :class:`~repro.cluster.metrics.MetricsCollector`
for per-request records, :func:`~repro.cluster.policy.recovery_order` for
orphan requeueing, :class:`~repro.serving.batching.BatchScheduler` for
per-worker queues — so the four-way conservation law

    ``submitted == completed + rejected + shed + failed``

holds here for the same structural reasons it holds in simulation, and
the property suite can pin it against a worker that was *actually*
``kill -9``'d rather than one whose death was an event on a heap.

Failure handling mirrors the simulator's seam exactly:

* a :data:`~repro.transport.base.DISPATCH_ERROR` completion retries the
  batch's members against a per-request ``max_retries`` budget (terminal
  exhaustion -> ``failed``);
* a worker that stops answering — dead process, or silence beyond the
  heartbeat timeout — is marked down and its orphans (the lost in-flight
  members plus everything queued on it) are requeued
  oldest-deadline-first onto healthy workers, or failed when requeueing
  is off or nobody healthy remains.

The driver is single-threaded on the parent side: one loop dispatches,
polls, probes and recovers.  With multiprocess transports the *workers*
still execute concurrently — parallelism lives in the worker processes,
coordination stays sequential and deterministic-ish (wall-clock
timestamps are real; ordering logic is not racy).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster.metrics import ClusterReport, MetricsCollector, RequestRecord
from ..cluster.policy import recovery_order
from ..serving.batching import Batch, BatchScheduler
from ..serving.request import AttentionRequest
from .base import TransportClosed, TransportRequest, WorkerTransport, stacked_operands
from .inprocess import InProcessTransport
from .multiprocess import MultiprocessTransport

__all__ = ["TransportClusterConfig", "TransportCluster", "make_transport", "TRANSPORTS"]

TRANSPORTS = {
    "inprocess": InProcessTransport,
    "multiprocess": MultiprocessTransport,
}


def make_transport(driver: str, **kwargs) -> WorkerTransport:
    """Build one worker transport by registered driver name."""
    try:
        cls = TRANSPORTS[driver]
    except KeyError:
        raise ValueError(
            f"unknown transport driver {driver!r}; choose from {sorted(TRANSPORTS)}"
        ) from None
    return cls(**kwargs)


@dataclass(frozen=True)
class TransportClusterConfig:
    """Knobs of one real-time cluster run (wall-clock seconds throughout).

    The heartbeat knobs are the real-time analogue of
    :class:`~repro.cluster.faults.RecoveryConfig`: ``heartbeat_interval_s``
    paces probe sweeps, ``heartbeat_timeout_s`` is the silence budget
    before an unresponsive *idle* worker is marked down, and
    ``stall_timeout_s`` is the (much larger) budget for a worker that
    holds in-flight work — a busy single-threaded worker legitimately
    cannot answer pings mid-batch, so only ground-truth death
    (``alive`` false) or a genuine stall takes it down.
    ``drain_timeout_s`` is the whole-run wall-clock guard: when it
    expires, everything still unaccounted is failed terminally so the
    conservation law survives even a wedged run.
    """

    workers: int = 2
    driver: str = "multiprocess"
    backend: str = "functional"
    max_batch_size: int = 8
    max_inflight_per_worker: int = 2
    max_retries: int = 3
    requeue: bool = True
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float = 1.0
    stall_timeout_s: float = 30.0
    drain_timeout_s: float = 120.0
    poll_timeout_s: float = 0.005
    warm: Tuple = ()  # (pattern, heads) pairs pre-compiled by workers

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_inflight_per_worker < 1:
            raise ValueError(
                f"max_inflight_per_worker must be >= 1, got {self.max_inflight_per_worker}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.driver not in TRANSPORTS:
            raise ValueError(
                f"unknown transport driver {self.driver!r}; choose from {sorted(TRANSPORTS)}"
            )


class _EngineShim:
    """Duck-types the ``worker.salo.cache_info()`` hook reports expect."""

    def __init__(self, transport: WorkerTransport) -> None:
        self._transport = transport

    def cache_info(self) -> dict:
        return self._transport.cache_info()


class _WorkerState:
    """Parent-side view of one transport worker.

    Carries exactly the attributes
    :meth:`~repro.cluster.metrics.MetricsCollector.report` reads off a
    simulator :class:`~repro.cluster.pool.Worker`, so transport runs
    reduce to the same :class:`~repro.cluster.metrics.ClusterReport`.
    """

    def __init__(self, transport: WorkerTransport, max_batch_size: int = 8) -> None:
        self.transport = transport
        self.wid = transport.wid
        self.salo = _EngineShim(transport)
        self.queue = BatchScheduler(max_batch_size=max_batch_size)
        self.up = True
        self.last_seen_s = 0.0
        self.last_dispatch_s = 0.0
        # batch_id -> (Batch, dispatch_s): in-flight work, lost if the
        # worker dies before a completion comes back.
        self.inflight: Dict[int, Tuple[Batch, float]] = {}
        # Report accounting (names match simulator Worker).
        self.busy_s = 0.0
        self.batches = 0
        self.served = 0
        self.stolen_in = 0
        self.cold_compiles = 0
        self.crashes = 0
        self.rejoins = 0
        self.detect_delays: List[float] = []
        self.downtime_s = 0.0
        self.down_since_s: Optional[float] = None

    def depth(self) -> int:
        return self.queue.pending + sum(b.size for b, _ in self.inflight.values())


class TransportCluster:
    """Drive a batch of requests through real worker transports.

    Usage::

        with TransportCluster(config) as cluster:
            report = cluster.run(requests)

    ``run`` routes every request up-front (join-shortest-queue over
    healthy workers), then loops — dispatch, poll, probe, recover —
    until each submitted request is terminally accounted for.  The
    optional ``tick`` callback fires once per loop iteration with
    ``(cluster, now_s)``; chaos tests use it to ``kill_worker`` at a
    chosen moment in the run.
    """

    def __init__(
        self,
        config: TransportClusterConfig,
        transports: Optional[Sequence[WorkerTransport]] = None,
    ) -> None:
        self.config = config
        if transports is None:
            transports = [
                make_transport(
                    config.driver,
                    backend=config.backend,
                    wid=wid,
                    **({"warm": config.warm} if config.driver == "multiprocess" else {}),
                )
                for wid in range(config.workers)
            ]
        self.states = [_WorkerState(t, config.max_batch_size) for t in transports]
        self.metrics = MetricsCollector()
        self._arrival: Dict = {}  # request_id -> arrival_s
        self._attempts: Dict = {}  # request_id -> transient-error retries used
        self.retries = 0
        self.requeues = 0
        self._batch_serial = 0
        self._t0: Optional[float] = None
        self._closed = False

    # ------------------------------------------------------------------
    def _now(self) -> float:
        assert self._t0 is not None
        return time.perf_counter() - self._t0

    def _healthy(self) -> List[_WorkerState]:
        return [s for s in self.states if s.up and s.transport.alive]

    def _route(self, request: AttentionRequest) -> bool:
        """Join-shortest-queue over healthy workers; False when none left."""
        healthy = self._healthy()
        if not healthy:
            return False
        target = min(healthy, key=lambda s: (s.depth(), s.wid))
        target.queue.enqueue(request)
        return True

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[AttentionRequest],
        tick: Optional[Callable[["TransportCluster", float], None]] = None,
    ) -> ClusterReport:
        """Serve ``requests`` to completion; reduce to a ClusterReport."""
        if self._closed:
            raise TransportClosed("cluster already closed")
        self._t0 = time.perf_counter()
        for request in requests:
            now = self._now()
            request.arrival_s = now
            self.metrics.note_arrival(now)
            self._arrival[request.request_id] = now
            self._attempts.setdefault(request.request_id, 0)
            if not self._route(request):
                self.metrics.note_failed(request, now)

        deadline = self.config.drain_timeout_s
        next_probe = 0.0
        while self._unaccounted() > 0:
            now = self._now()
            if now > deadline:
                self._fail_remaining(now)
                break
            if tick is not None:
                tick(self, now)
            self._dispatch_ready(now)
            self._poll_completions()
            if now >= next_probe:
                self._probe_sweep(self._now())
                next_probe = now + self.config.heartbeat_interval_s
        return self.report()

    def _unaccounted(self) -> int:
        done = len(self.metrics.records) + len(self.metrics.drops)
        return self.metrics.submitted - done

    # ------------------------------------------------------------------
    def _dispatch_ready(self, now: float) -> None:
        for state in self._healthy():
            while (
                len(state.inflight) < self.config.max_inflight_per_worker
                and state.queue.pending > 0
            ):
                batch = state.queue.next_batch()
                if batch is None:
                    break
                self._submit(state, batch, now)

    def _submit(self, state: _WorkerState, batch: Batch, now: float) -> None:
        pattern = batch.execution_pattern()
        q, k, v, valid_lens = stacked_operands(batch.requests, pattern)
        self._batch_serial += 1
        batch_id = self._batch_serial
        try:
            state.transport.submit(
                TransportRequest(
                    batch_id=batch_id,
                    pattern=pattern,
                    q=q,
                    k=k,
                    v=v,
                    heads=batch.heads,
                    valid_lens=valid_lens,
                )
            )
        except TransportClosed:
            # Worker died between the health check and the submit: its
            # members are orphans of an undetected-down worker.
            state.queue.requeue(batch.requests)
            self._mark_down(state, now)
            return
        state.inflight[batch_id] = (batch, now)
        state.last_dispatch_s = now

    # ------------------------------------------------------------------
    def _poll_completions(self) -> None:
        for state in self.states:
            if not state.inflight:
                continue
            for completion in state.transport.poll(self.config.poll_timeout_s):
                entry = state.inflight.pop(completion.batch_id, None)
                if entry is None:  # stale completion of a recovered batch
                    continue
                batch, dispatch_s = entry
                now = self._now()
                state.last_seen_s = now
                state.busy_s += completion.service_s
                state.batches += 1
                if completion.ok:
                    state.served += batch.size
                    for request in batch.requests:
                        self.metrics.note_completion(
                            RequestRecord(
                                request_id=request.request_id,
                                slo_class=request.slo_class,
                                arrival_s=self._arrival[request.request_id],
                                dispatch_s=dispatch_s,
                                complete_s=now,
                                worker=state.wid,
                                batch_size=batch.size,
                                deadline_s=request.deadline_s,
                            )
                        )
                else:
                    self._retry_members(batch, now)
            self.metrics.sample(
                self._now(),
                queued=sum(s.queue.pending for s in self.states),
                busy_workers=sum(1 for s in self.states if s.inflight),
            )

    def _retry_members(self, batch: Batch, now: float) -> None:
        """A DISPATCH_ERROR burns an attempt for every batch member."""
        for request in batch.requests:
            self._attempts[request.request_id] += 1
            if self._attempts[request.request_id] <= self.config.max_retries:
                self.retries += 1
                if not self._route(request):
                    self.metrics.note_failed(request, now)
            else:
                self.metrics.note_failed(request, now)

    # ------------------------------------------------------------------
    def _probe_sweep(self, now: float) -> None:
        for state in self.states:
            if not state.up:
                continue
            if not state.transport.alive:
                self._mark_down(state, now)
                continue
            if state.inflight:
                # Busy single-threaded worker: can't pong mid-batch.
                # Only a genuine stall (no completion for far longer
                # than any batch takes) counts as silence.
                if now - state.last_dispatch_s > self.config.stall_timeout_s:
                    self._mark_down(state, now)
                continue
            if state.transport.probe(timeout_s=self.config.poll_timeout_s):
                state.last_seen_s = now
            elif now - state.last_seen_s > self.config.heartbeat_timeout_s:
                self._mark_down(state, now)

    def _mark_down(self, state: _WorkerState, now: float) -> None:
        """Down transition + recovery of the worker's orphaned requests."""
        state.up = False
        state.crashes += 1
        state.down_since_s = now
        state.detect_delays.append(max(now - state.last_seen_s, 0.0))
        orphans: List[AttentionRequest] = []
        for batch, _ in state.inflight.values():
            orphans.extend(batch.requests)
        state.inflight.clear()
        orphans.extend(state.queue.prune(lambda _r: True))
        for request in recovery_order(orphans):
            if self.config.requeue and self._route(request):
                self.requeues += 1
            else:
                self.metrics.note_failed(request, now)

    def _fail_remaining(self, now: float) -> None:
        """Drain-timeout escape hatch: terminally fail whatever is left."""
        leftovers: List[AttentionRequest] = []
        for state in self.states:
            for batch, _ in state.inflight.values():
                leftovers.extend(batch.requests)
            state.inflight.clear()
            leftovers.extend(state.queue.prune(lambda _r: True))
        for request in leftovers:
            self.metrics.note_failed(request, now)

    # ------------------------------------------------------------------
    def kill_worker(self, wid: int) -> None:
        """SIGKILL (or simulate killing) worker ``wid`` — chaos hook."""
        self.states[wid].transport.kill()

    def report(self) -> ClusterReport:
        return self.metrics.report(
            self.states, steals=0, retries=self.retries, requeues=self.requeues
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for state in self.states:
            state.transport.close()

    def __enter__(self) -> "TransportCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
