"""Metadata records exchanged with the data scheduler (Figure 3).

The paper's framework overview feeds the scheduler two metadata records:
the *pattern metadata* (window size, dilation, global tokens) and the
*hardware metadata* (PE array size, number of global PE rows/columns).
These thin dataclasses make that interface explicit and give experiments a
stable, serialisable summary of what was scheduled.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple

from ..core.config import HardwareConfig
from ..patterns.base import AttentionPattern
from ..patterns.hybrid import HybridSparsePattern

__all__ = ["PatternMetadata", "HardwareMetadata"]


@dataclass(frozen=True)
class PatternMetadata:
    """Summary of a hybrid sparse attention pattern."""

    sequence_length: int
    num_bands: int
    window_size: int
    max_dilation: int
    num_global_tokens: int
    sparsity: float

    @classmethod
    def from_pattern(cls, pattern: AttentionPattern) -> "PatternMetadata":
        bands = pattern.bands()
        if bands is None:
            raise ValueError("pattern is unstructured; no band metadata available")
        return cls(
            sequence_length=pattern.n,
            num_bands=len(bands),
            window_size=sum(b.width for b in bands),
            max_dilation=max((b.dilation for b in bands), default=1),
            num_global_tokens=len(pattern.global_tokens()),
            sparsity=pattern.sparsity(),
        )

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class HardwareMetadata:
    """Summary of the accelerator the scheduler targets."""

    pe_rows: int
    pe_cols: int
    global_rows: int
    global_cols: int

    @classmethod
    def from_config(cls, config: HardwareConfig) -> "HardwareMetadata":
        return cls(
            pe_rows=config.pe_rows,
            pe_cols=config.pe_cols,
            global_rows=config.global_rows,
            global_cols=config.global_cols,
        )

    def as_dict(self) -> dict:
        return asdict(self)
