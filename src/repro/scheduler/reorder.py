"""Data reordering: dilated windows → sliding windows (paper Section 4.2).

A dilated band makes query ``q_i`` attend keys ``k_{i+a}, k_{i+a+d}, ...``;
reuse exists between ``q_i`` and ``q_{i+d}``.  Grouping queries by their
residue modulo ``d`` (``q_r, q_{r+d}, q_{r+2d}, ...``) turns the dilated
band into an ordinary sliding window *within each group*: writing a query
as ``i = r + p·d`` (group position ``p``), its band keys are

    ``k_{i + a + t·d} = k_{r' + (p + rel_lo + t)·d}``,   ``0 <= t < width``

where ``r' = (r + a) mod d`` is the key residue class and
``rel_lo = (r + a - r') / d`` is a *constant* relative offset inside the
group.  This module computes that decomposition; the scheduler then treats
every (band, residue) pair as a plain sliding-window job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..patterns.base import Band

__all__ = ["GroupedBandJob", "decompose_band", "group_positions", "reorder_permutation"]


@dataclass(frozen=True)
class GroupedBandJob:
    """One band restricted to one query residue class.

    Queries are ``query_residue + p * dilation`` for ``0 <= p <
    group_size``; the band covers key group positions ``p + rel_lo ..
    p + rel_lo + width - 1`` of residue class ``key_residue``.
    """

    band_index: int
    dilation: int
    query_residue: int
    key_residue: int
    group_size: int
    rel_lo: int
    width: int


def group_size_for(n: int, residue: int, dilation: int) -> int:
    """Number of sequence positions with the given residue modulo dilation."""
    if residue >= n:
        return 0
    return (n - 1 - residue) // dilation + 1


def group_positions(n: int, residue: int, dilation: int) -> np.ndarray:
    """Original indices of a residue group, in group-position order."""
    return np.arange(residue, n, dilation, dtype=np.int64)


def reorder_permutation(n: int, dilation: int) -> np.ndarray:
    """The query permutation of Figure 4: group residues together.

    ``perm[new_position] = original_index``.  With ``dilation == 1`` this is
    the identity.  The permutation is what a software implementation would
    apply to the Q matrix; the tile-pass representation used here encodes
    the same information per (band, residue) job instead, which also
    handles patterns mixing bands of different dilations.
    """
    if dilation < 1:
        raise ValueError(f"dilation must be >= 1, got {dilation}")
    groups = [group_positions(n, r, dilation) for r in range(min(dilation, n))]
    return np.concatenate(groups) if groups else np.empty(0, dtype=np.int64)


def decompose_band(band_index: int, band: Band, n: int) -> List[GroupedBandJob]:
    """Split a band into per-residue sliding-window jobs.

    For ``dilation == 1`` this returns a single job covering the whole
    sequence (no reordering required).
    """
    d = band.dilation
    jobs: List[GroupedBandJob] = []
    for r in range(min(d, n)):
        size = group_size_for(n, r, d)
        if size == 0:
            continue
        key_residue = (r + band.lo) % d
        rel_lo = (r + band.lo - key_residue) // d
        jobs.append(
            GroupedBandJob(
                band_index=band_index,
                dilation=d,
                query_residue=r,
                key_residue=key_residue,
                group_size=size,
                rel_lo=rel_lo,
                width=band.width,
            )
        )
    return jobs
