"""Compiled execution plans: precomputed index tensors for batched engines.

Tile passes are *structural*: the gather indices, validity masks and
global-token exclusions of a pass are identical across attention heads and
across every ``attend()`` call that reuses the same plan.  The seed
implementation nevertheless re-derived them from scratch for each head of
each call (``TilePass.key_ids`` concatenates segments and runs ``np.isin``
per head x pass).  :class:`CompiledPlan` performs that derivation exactly
once per :class:`~repro.scheduler.plan.ExecutionPlan` and stores:

* padded per-pass tensors — ``q_ids`` ``(P, R)``, ``key_ids`` / ``valid``
  / ``safe_key_ids`` ``(P, R, C)`` with sequence clipping *and*
  global-token exclusion baked in, and ``keep`` ``(P, R)`` non-global
  row masks — consumed by the cost models, ``plan.stats()`` and the
  engines' fallback path;
* **window jobs** — the pass stream regrouped by
  ``(query group, column group)``.  Within a job every pass shares its
  segment tuple and its query block starts advance uniformly, so each
  segment's key stream is one arithmetic sequence: the engine gathers a
  single ``(L, d)`` key block per segment and reads it through an
  overlapping ``as_strided`` window view — the numpy analogue of the
  accelerator's diagonal k/v connections (Section 5.2) — instead of
  materialising ``(passes, rows, cols, d)`` gathers.  Jobs are ordered by
  first appearance in the pass stream, which preserves the per-query
  weighted-sum merge order (a query receives its parts from the column
  groups of its own block, in block-local order), keeping outputs
  bit-identical to the per-pass reference engine;
* the global-row batch schedule (padded) shared with the micro-simulator;
* per-pass aggregates (valid cells, distinct keys, query loads, output
  vectors) reused by the timing/energy/traffic models.

Obtain instances through :meth:`ExecutionPlan.compiled`, which memoizes
the compilation on the plan object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan -> compiled)
    from .plan import ExecutionPlan

__all__ = ["CompiledPlan", "JobChain", "SegmentStream", "WindowJob", "compile_plan"]


@dataclass(frozen=True)
class SegmentStream:
    """One band segment of a window job as diagonal key streams.

    For query group ``g``, the key id of block ``b``, PE row ``r``,
    segment column ``t`` is ``gather_ids[g, b * block_step + r + t]``
    (ids pre-clipped to ``[0, n)``; out-of-range and global cells are
    masked by the job's ``valid``).
    """

    gather_ids: np.ndarray  # (G, L) int64, clipped to [0, n)
    width: int
    block_step: int  # key-stream advance per query block


@dataclass(frozen=True)
class WindowJob:
    """A family of same-geometry (query group, column group) pairs.

    Query groups of one dilated band share block structure, segment
    widths and strides — only the residue (and hence the gather bases
    and boundary masks) differs — so their passes batch into a single
    job with a leading *group* axis ``G``: one set of einsums serves
    every residue class at once.  Queries of different groups in one job
    are disjoint (distinct residue classes of the same dilation), so the
    whole job still merges with a single weighted-sum call.

    ``segments`` is ``None`` when the member passes are irregular (non
    contiguous query rows or unevenly spaced blocks); the engine then
    falls back to gathering ``safe_key_ids``.  The scheduler never emits
    such passes today, but the fallback keeps the engine correct for any
    :class:`TilePass` sequence.
    """

    pass_indices: np.ndarray  # (G * B,) indices into plan.passes
    num_groups: int  # G
    num_blocks: int  # B (per group)
    rows: int  # R: padded rows of this job
    cols: int  # C: columns of this job (sum of segment widths)
    q_ids: np.ndarray  # (G, B, R) int64, -1 on padding
    q_safe: np.ndarray  # (G, B, R) int64, padding clipped to 0
    valid: np.ndarray  # (G, B, R, C) bool
    keep: np.ndarray  # (G, B, R) bool: rows merged by the window path
    segments: Optional[Tuple[SegmentStream, ...]]
    safe_key_ids: Optional[np.ndarray]  # (G, B, R, C) fallback gather ids


@dataclass(frozen=True)
class JobChain:
    """A maximal run of consecutive same-geometry window jobs.

    Jobs of one chain share ``q_ids`` and ``keep`` bit for bit, so every
    job contributes a part to exactly the same (group, block, row) cells.
    The per-query weighted-sum chain therefore runs on chain-local state:
    seeded from the accumulator before the first job (all zeros when the
    chain is *private*, i.e. no earlier job touched its queries),
    merged job by job in schedule order, and committed back by plain
    assignment — exactly what the sequential per-job accumulator merges
    would have left there.

    ``flat_keep`` / ``flat_q`` are the static commit indices: positions
    of kept cells in the flattened ``(G * B * R)`` cell axis and the
    query ids they map to, precomputed once per plan.

    When every job of the chain streams a single key segment and the
    segments are adjacent column slices of one window band — the shape
    the scheduler's column splitting always produces — the chain also
    carries the *wide stream*: the union of all jobs' key streams
    (``wide_ids``) plus each job's column offset into it
    (``wide_offsets``).  Engines then gather K/V once per tile for the
    whole chain and run one banded stage-1 GEMM spanning every job's
    columns, instead of one overlapping gather + GEMM per job.
    """

    jobs: Tuple[int, ...]  # indices into CompiledPlan.window_jobs
    private: bool
    flat_keep: np.ndarray  # (M,) int64 indices into flattened (G*B*R)
    flat_q: np.ndarray  # (M,) int64 query ids of the kept cells
    wide_ids: Optional[np.ndarray] = None  # (G, L) combined stream key ids
    wide_offsets: Optional[Tuple[int, ...]] = None  # per-job column offset
    # Contiguity facts, verified by direct comparison at build time, that
    # let engines replace gathers with slices (see FunctionalEngine):
    wide_start: Optional[Tuple[int, ...]] = None  # wide_ids[g] == clip(arange)
    q_start: Optional[int] = None  # flattened q_safe == arange(q_start, ...)
    keep_all: bool = False  # every (group, block, row) cell is merged
    keep_slice: Optional[Tuple[int, int]] = None  # (k0, q0): both flat aranges


def _arange_start(a: np.ndarray) -> Optional[int]:
    """Start value when ``a`` is exactly a contiguous ascending range."""
    if a.size == 0:
        return None
    s = int(a[0])
    if int(a[-1]) - s != a.size - 1:
        return None
    return s if np.array_equal(a, np.arange(s, s + a.size)) else None


def _clipped_arange_start(a: np.ndarray, n: int) -> Optional[int]:
    """Start ``s`` when ``a == clip(arange(s, s + len(a)), 0, n - 1)``.

    The window schedule's key streams are ranges with their out-of-range
    head/tail clamped by the gather-safety clip; recovering ``s`` from
    the (normally unclamped) midpoint and re-verifying keeps this exact.
    """
    mid = a.size // 2
    s = int(a[mid]) - mid
    if np.array_equal(a, np.clip(np.arange(s, s + a.size), 0, n - 1)):
        return s
    return None


def _wide_stream(jobs) -> Tuple[Optional[np.ndarray], Optional[Tuple[int, ...]]]:
    """Combined key stream of a chain, when its jobs slice one band.

    Verifies — by direct array comparison, not by construction — that
    each job's single key-stream segment is the previous one shifted by
    exactly its width, and returns the union stream plus per-job
    offsets.  Any mismatch (multi-segment jobs, differing block steps,
    non-adjacent columns) returns ``(None, None)`` and the engine falls
    back to per-job gathers.
    """
    if any(j.segments is None or len(j.segments) != 1 for j in jobs):
        return None, None
    segs = [j.segments[0] for j in jobs]
    step = segs[0].block_step
    if any(s.block_step != step for s in segs):
        return None, None
    base = segs[0].gather_ids
    L0 = base.shape[1]
    offsets = [0]
    for prev, seg in zip(segs, segs[1:]):
        off = offsets[-1] + prev.width
        overlap = L0 - off
        if overlap < 0 or not np.array_equal(seg.gather_ids[:, :overlap], base[:, off:]):
            return None, None
        offsets.append(off)
    tail = segs[-1].gather_ids[:, L0 - offsets[-1] :]
    wide = np.concatenate([base, tail], axis=1) if tail.shape[1] else base
    return np.ascontiguousarray(wide), tuple(offsets)


def _build_job_chains(jobs, n: int) -> Tuple[JobChain, ...]:
    """Group the job schedule into chains (see :class:`JobChain`)."""
    chains: List[JobChain] = []
    seen: Optional[np.ndarray] = None  # query ids already covered
    i = 0
    while i < len(jobs):
        a = jobs[i]
        j = i + 1
        while j < len(jobs):
            b = jobs[j]
            if (
                a.segments is not None
                and b.segments is not None
                and a.q_ids.shape == b.q_ids.shape
                and np.array_equal(a.q_ids, b.q_ids)
                and np.array_equal(a.keep, b.keep)
            ):
                j += 1
            else:
                break
        flat_keep = np.flatnonzero(a.keep.ravel()).astype(np.int64)
        flat_q = a.q_ids.ravel()[flat_keep]
        private = bool(
            a.segments is not None
            and (seen is None or not np.isin(flat_q, seen).any())
        )
        wide_ids, wide_offsets = _wide_stream(jobs[i:j])
        wide_start: Optional[Tuple[int, ...]] = None
        if wide_ids is not None:
            starts = [
                _clipped_arange_start(wide_ids[g], n)
                for g in range(wide_ids.shape[0])
            ]
            if all(s is not None for s in starts):
                wide_start = tuple(starts)
        q_start = _arange_start(a.q_safe.ravel())
        keep_all = bool(a.keep.all())
        k0 = _arange_start(flat_keep)
        q0 = _arange_start(flat_q)
        keep_slice = (k0, q0) if k0 is not None and q0 is not None else None
        chains.append(
            JobChain(
                jobs=tuple(range(i, j)),
                private=private,
                flat_keep=flat_keep,
                flat_q=flat_q,
                wide_ids=wide_ids,
                wide_offsets=wide_offsets,
                wide_start=wide_start,
                q_start=q_start,
                keep_all=keep_all,
                keep_slice=keep_slice,
            )
        )
        seen = flat_q if seen is None else np.union1d(seen, flat_q)
        i = j
    return tuple(chains)


@dataclass
class CompiledPlan:
    """Precompiled index tensors and aggregates of one execution plan.

    The per-pass tensors and aggregates are built eagerly (every
    consumer — cost models, ``plan.stats()``, the engines — needs
    them); the execution-only :attr:`window_jobs` schedule is built
    lazily on first engine use, so cost-model-only paths such as
    ``SALO.estimate`` never pay for it.
    """

    plan: "ExecutionPlan"
    n: int
    heads: int
    head_dim: int
    num_passes: int
    pad_rows: int  # R: padded PE-row count across all passes
    pad_cols: int  # C: padded PE-column count across all passes
    # -- per-pass padded tensors -------------------------------------
    q_ids: np.ndarray  # (P, R) int64, -1 on padding
    key_ids: np.ndarray  # (P, R, C) int64, -1 masked, globals excluded
    valid: np.ndarray  # (P, R, C) bool
    keep: np.ndarray  # (P, R) bool: rows merged by the window path
    rows_used: np.ndarray  # (P,) int64
    cols_used: np.ndarray  # (P,) int64
    # -- per-pass aggregates (single head) ---------------------------
    valid_counts: np.ndarray  # (P,) valid cells per pass (globals excluded)
    row_has_work: np.ndarray  # (P, R) bool: row has >= 1 valid cell
    distinct_per_pass: np.ndarray  # (P,) distinct keys streamed per pass
    q_loads: int  # query-buffer vector loads (block transitions)
    out_vectors: int  # partial output rows produced
    # -- global bookkeeping ------------------------------------------
    global_tokens: np.ndarray  # (G,) int64
    nonglobal_rows: np.ndarray  # (n - G,) int64
    global_batches: np.ndarray  # (B, L) int64 padded with -1
    global_batch_valid: np.ndarray  # (B, L) bool
    # -- batched execution schedule (lazy; see window_jobs) ----------
    _window_jobs: Optional[List[WindowJob]] = field(
        default=None, repr=False, compare=False
    )
    _job_chains: Optional[Tuple[JobChain, ...]] = field(
        default=None, repr=False, compare=False
    )
    # Per-plan execution scratch: engines key reusable buffers and
    # static per-(job, chunk) index tensors here, so warm ``attend()``
    # calls on a cached plan run with zero steady-state allocation.  The
    # dict lives with the plan (and hence with the SALO plan-cache
    # entry), not with any one engine instance.
    scratch: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def window_jobs(self) -> List[WindowJob]:
        """The engine's execution schedule, built on first use."""
        if self._window_jobs is None:
            self._window_jobs = _build_window_jobs(
                self.plan, self.q_ids, self.key_ids, self.valid, self.keep
            )
        return self._window_jobs

    @property
    def job_chains(self) -> Tuple[JobChain, ...]:
        """Same-geometry runs of :attr:`window_jobs`, built on first use."""
        if self._job_chains is None:
            self._job_chains = _build_job_chains(self.window_jobs, self.n)
        return self._job_chains

    def tile_shape(self, job: WindowJob, lanes: int) -> Tuple[int, int]:
        """``(lane tile T, block chunk Bc)`` for one window job.

        Sized so one tile's stage 1–5 working set — the gathered K/V
        stream blocks, the score rectangle, the band buffer and the
        stage-5 output — fits the configured ``tile_bytes`` budget and
        stays cache-resident across the fused epilogue.  A positive
        ``HardwareConfig.lane_tile`` overrides the derived lane tile.
        """
        cfg = self.plan.config
        d = self.head_dim
        rows, cols = job.rows, job.cols
        widths = (
            [seg.width for seg in job.segments]
            if job.segments is not None
            else [cols]
        )
        # Per lane, per block: score rectangle + 2 stream gathers per
        # segment, plus band, stage-5 output, queries and the row-shaped
        # epilogue vectors (all float64).
        elems = rows * cols + 2 * rows * d + 6 * rows
        for w in widths:
            span = rows + w - 1
            elems += rows * span + 2 * span * d
        per_block = 8 * job.num_groups * elems
        budget = max(int(cfg.tile_bytes), per_block)
        bc = max(1, min(job.num_blocks, budget // per_block))
        t = max(1, min(lanes, budget // (per_block * bc)))
        if cfg.lane_tile > 0:
            t = max(1, min(lanes, int(cfg.lane_tile)))
        return t, bc

    @property
    def safe_key_ids(self) -> np.ndarray:
        """``key_ids`` with masked cells clipped to 0 (branch-free gathers).

        Derived on demand: only the irregular-pass fallback reads it.
        """
        return np.where(self.valid, self.key_ids, 0)

    @property
    def total_valid_cells(self) -> int:
        """Window cells computed per head (global exclusions applied)."""
        return int(self.valid_counts.sum())

    @property
    def distinct_kv_vectors(self) -> int:
        """Distinct key/value vectors streamed per head across all passes."""
        return int(self.distinct_per_pass.sum())


def _topo_colgroups(plan: "ExecutionPlan") -> List[Tuple[int, List[List[int]]]]:
    """Per query group (in pass order): dilation + topo-ordered column groups.

    Job order must replay the merge order every query observes in the
    sequential pass stream: each query block runs its column groups in
    the group's master column order, but blocks clipped at the sequence
    boundary may *skip* column groups (the scheduler drops zero-valid
    passes), so the per-block sequences are subsequences of that master
    order.  A topological merge of the block sequences recovers it.
    """
    group_order: List[Tuple[int, int]] = []
    group_jobs: dict = {}  # (residue, dilation) -> {segments: [pass indices]}
    block_seqs: dict = {}  # (residue, dilation) -> {block start: [segments]}
    for i, tp in enumerate(plan.passes):
        gkey = (tp.query_residue, tp.dilation)
        if gkey not in group_jobs:
            group_order.append(gkey)
            group_jobs[gkey] = {}
            block_seqs[gkey] = {}
        group_jobs[gkey].setdefault(tp.segments, []).append(i)
        block_seqs[gkey].setdefault(tp.q_positions[0] if tp.q_positions else 0, []).append(
            tp.segments
        )

    per_group: List[Tuple[int, List[List[int]]]] = []
    for gkey in group_order:
        colgroups = list(group_jobs[gkey])  # first-appearance order
        succ = {c: set() for c in colgroups}
        indeg = {c: 0 for c in colgroups}
        for seq in block_seqs[gkey].values():
            for a, b in zip(seq, seq[1:]):
                if b not in succ[a]:
                    succ[a].add(b)
                    indeg[b] += 1
        ready = [c for c in colgroups if indeg[c] == 0]
        topo: List = []
        while ready:
            c = ready.pop(0)
            topo.append(c)
            for b in succ[c]:
                indeg[b] -= 1
                if indeg[b] == 0:
                    ready.append(b)
        if len(topo) != len(colgroups):  # pragma: no cover - inconsistent order
            # No consistent master order: degrade to one colgroup per
            # pass, which trivially preserves the sequential merge order.
            cols = [[i] for i in sorted(i for c in colgroups for i in group_jobs[gkey][c])]
        else:
            cols = [group_jobs[gkey][c] for c in topo]
        per_group.append((gkey[1], cols))
    return per_group


def _job_geometry(plan: "ExecutionPlan", idxs: List[int]):
    """(signature, block_step, segment protos) of one colgroup's passes.

    ``signature`` is ``None`` for irregular passes (non-contiguous query
    rows or unevenly spaced blocks); otherwise jobs with equal signatures
    have identical strided-view geometry and may batch into one family,
    differing only in gather bases and boundary masks.
    """
    tps = [plan.passes[i] for i in idxs]
    num_blocks = len(tps)
    rows = max(tp.rows_used for tp in tps)
    cols = tps[0].cols_used
    starts = [tp.q_positions[0] for tp in tps]
    contiguous = all(
        tp.q_positions == tuple(range(tp.q_positions[0], tp.q_positions[0] + tp.rows_used))
        for tp in tps
    )
    steps = {starts[b + 1] - starts[b] for b in range(num_blocks - 1)}
    if not contiguous or len(steps) > 1:
        return None, 0, ()
    block_step = steps.pop() if steps else rows
    seg_sig = tuple((seg.width, seg.dilation) for seg in tps[0].segments)
    bases = tuple(
        seg.key_residue + (starts[0] + seg.rel_lo) * seg.dilation for seg in tps[0].segments
    )
    return (num_blocks, rows, cols, block_step, seg_sig), block_step, bases


def _build_window_jobs(
    plan: "ExecutionPlan",
    q_ids: np.ndarray,
    key_ids: np.ndarray,
    valid: np.ndarray,
    keep: np.ndarray,
) -> List[WindowJob]:
    """Batch the pass stream into window-job families (see module docstring).

    Within each query group, column groups execute in the group's master
    order (``_topo_colgroups``).  Query groups of one dilation are
    disjoint residue classes, so within a consecutive run of same
    dilation groups the ``k``-th column groups are independent and
    same-geometry jobs batch into one family — all residue classes of a
    dilated band execute in a single set of einsums.  Groups of
    *different* dilations can share queries, so distinct runs stay in
    group order.
    """
    per_group = _topo_colgroups(plan)
    runs: List[List[List[List[int]]]] = []
    last_dil = None
    for dil, cols in per_group:
        if dil != last_dil or not runs:
            runs.append([])
            last_dil = dil
        runs[-1].append(cols)

    jobs: List[WindowJob] = []
    for run in runs:
        num_positions = max((len(g) for g in run), default=0)
        for k in range(num_positions):
            jobs.extend(_position_families(plan, run, k, q_ids, key_ids, valid, keep))
    return tuple(jobs)


def _position_families(
    plan: "ExecutionPlan",
    run: List[List[List[int]]],
    k: int,
    q_ids: np.ndarray,
    key_ids: np.ndarray,
    valid: np.ndarray,
    keep: np.ndarray,
) -> List[WindowJob]:
    """Families for position ``k`` of one same-dilation run of groups."""
    n = plan.n
    buckets: dict = {}  # signature -> [(idxs, bases)]
    singles: List[List[int]] = []
    jobs: List[WindowJob] = []
    for g in run:
        if k >= len(g):
            continue
        sig, step, bases = _job_geometry(plan, g[k])
        if sig is None:  # pragma: no cover - irregular passes
            singles.append(g[k])
        else:
            buckets.setdefault((sig, step), []).append((g[k], bases))
    for (sig, step), members in buckets.items():
        num_blocks, rows, cols, block_step, seg_sig = sig
        idx_arr = np.asarray([i for idxs, _ in members for i in idxs], dtype=np.int64)
        num_groups = len(members)
        job_q_ids = np.ascontiguousarray(
            q_ids[idx_arr][:, :rows].reshape(num_groups, num_blocks, rows)
        )
        job_valid = np.ascontiguousarray(
            valid[idx_arr][:, :rows, :cols].reshape(num_groups, num_blocks, rows, cols)
        )
        job_keep = np.ascontiguousarray(
            keep[idx_arr][:, :rows].reshape(num_groups, num_blocks, rows)
        )
        streams: List[SegmentStream] = []
        # Segment order == column order: the engine concatenates the
        # per-segment views along the column axis in this order.
        for s, (width, seg_dil) in enumerate(seg_sig):
            # Key id of group g at (b, r, t):
            # bases[g] + (b*step + r + t)*dil — one stream per group.
            length = (num_blocks - 1) * block_step + rows + width - 1
            offsets = np.arange(length, dtype=np.int64) * seg_dil
            bases_col = np.asarray([m[1][s] for m in members], dtype=np.int64)[:, None]
            streams.append(
                SegmentStream(
                    gather_ids=np.clip(bases_col + offsets, 0, n - 1),
                    width=width,
                    block_step=block_step,
                )
            )
        jobs.append(
            WindowJob(
                pass_indices=idx_arr,
                num_groups=num_groups,
                num_blocks=num_blocks,
                rows=rows,
                cols=cols,
                q_ids=job_q_ids,
                q_safe=job_q_ids.clip(min=0),
                valid=job_valid,
                keep=job_keep,
                segments=tuple(streams),
                safe_key_ids=None,
            )
        )
    for idxs in singles:  # pragma: no cover - irregular passes
        tps = [plan.passes[i] for i in idxs]
        num_blocks = len(tps)
        rows = max(tp.rows_used for tp in tps)
        cols = tps[0].cols_used
        idx_arr = np.asarray(idxs, dtype=np.int64)
        job_q_ids = np.ascontiguousarray(q_ids[idx_arr][:, :rows])[None]
        jobs.append(
            WindowJob(
                pass_indices=idx_arr,
                num_groups=1,
                num_blocks=num_blocks,
                rows=rows,
                cols=cols,
                q_ids=job_q_ids,
                q_safe=job_q_ids.clip(min=0),
                valid=np.ascontiguousarray(valid[idx_arr][:, :rows, :cols])[None],
                keep=np.ascontiguousarray(keep[idx_arr][:, :rows])[None],
                segments=None,
                safe_key_ids=np.where(
                    valid[idx_arr][:, :rows, :cols], key_ids[idx_arr][:, :rows, :cols], 0
                )[None],
            )
        )
    return jobs


def _index_tensors(plan: "ExecutionPlan"):
    """Vectorised construction of the padded per-pass index tensors.

    The seed walked ``plan.passes`` in Python, paying several numpy
    allocations per pass (~50 µs each; >100 ms for >1k-pass plans).
    Passes sharing a segment tuple have key ids of the closed form
    ``base[col] + q_position * dilation[col]`` with ``base``/``dilation``
    fixed per column, so the walk reduces to one cheap attribute sweep
    plus one broadcast per distinct segment tuple (a handful per plan).
    """
    n = plan.n
    passes = plan.passes
    num_passes = len(passes)

    lengths = np.fromiter(
        (len(tp.q_positions) for tp in passes), dtype=np.int64, count=num_passes
    )
    residues = np.fromiter(
        (tp.query_residue for tp in passes), dtype=np.int64, count=num_passes
    )
    dilations = np.fromiter((tp.dilation for tp in passes), dtype=np.int64, count=num_passes)
    seg_groups: dict = {}  # segment tuple -> [pass indices]
    for i, tp in enumerate(passes):
        seg_groups.setdefault(tp.segments, []).append(i)

    pad_rows = int(lengths.max()) if num_passes else 1
    seg_cols = {segs: sum(s.width for s in segs) for segs in seg_groups}
    pad_cols = max(seg_cols.values(), default=1)

    row_valid = np.arange(pad_rows, dtype=np.int64)[None, :] < lengths[:, None]
    qpos = np.zeros((num_passes, pad_rows), dtype=np.int64)
    qpos[row_valid] = np.fromiter(
        (p for tp in passes for p in tp.q_positions), dtype=np.int64, count=int(lengths.sum())
    )
    q_ids = np.where(row_valid, residues[:, None] + qpos * dilations[:, None], -1)

    key_ids = np.full((num_passes, pad_rows, pad_cols), -1, dtype=np.int64)
    cols_used = np.empty(num_passes, dtype=np.int64)
    for segs, idx in seg_groups.items():
        cols = seg_cols[segs]
        ia = np.asarray(idx, dtype=np.int64)
        cols_used[ia] = cols
        base = np.concatenate(
            [
                s.key_residue + (s.rel_lo + np.arange(s.width, dtype=np.int64)) * s.dilation
                for s in segs
            ]
        )
        dcol = np.concatenate([np.full(s.width, s.dilation, dtype=np.int64) for s in segs])
        ids = base[None, None, :] + qpos[ia][:, :, None] * dcol[None, None, :]
        ok = (ids >= 0) & (ids < n) & row_valid[ia][:, :, None]
        key_ids[ia, :, :cols] = np.where(ok, ids, -1)

    return q_ids, key_ids, lengths, cols_used, pad_rows, pad_cols


def _global_row_schedule_vectorized(
    n: int, raw_key_ids: np.ndarray, pe_cols: int
) -> Tuple[List[np.ndarray], int]:
    """Vectorised equivalent of :meth:`ExecutionPlan.global_row_schedule`.

    A key's batch is determined by the *first* pass that streams it; the
    sequential seen-set walk therefore reduces to a stable sort of
    (token, pass) pairs.  Batches come out in first-pass order with
    tokens ascending — exactly the reference walk's output.
    """
    num_passes = raw_key_ids.shape[0]
    flat = raw_key_ids.reshape(num_passes, -1)
    batches: List[np.ndarray] = []
    seen = np.zeros(n, dtype=bool)
    if num_passes and (num_passes + 1) * (n + 1) <= (1 << 27):
        # Tokens are bounded by n, so a (passes, n) membership table plus
        # argmax finds each token's first pass without sorting the full
        # (token, pass) stream; masked cells land in a spill column.
        contains = np.zeros((num_passes, n + 1), dtype=bool)
        rows = np.broadcast_to(np.arange(num_passes)[:, None], flat.shape)
        contains[rows, np.where(flat >= 0, flat, n)] = True
        cov = contains[:, :n]
        covered = cov.any(axis=0)
        first_pass = cov.argmax(axis=0)
        uniq_tok = np.flatnonzero(covered)
        first_pass = first_pass[uniq_tok]
    elif num_passes:  # pragma: no cover - very large plans only
        mask = flat >= 0
        tokens = flat[mask]
        pass_of = np.broadcast_to(
            np.arange(num_passes, dtype=np.int64)[:, None], flat.shape
        )[mask]
        order = np.argsort(tokens, kind="stable")  # pass index ascending within a token
        ts, ps = tokens[order], pass_of[order]
        first = np.ones(ts.size, dtype=bool)
        first[1:] = ts[1:] != ts[:-1]
        uniq_tok, first_pass = ts[first], ps[first]
    else:
        uniq_tok = np.zeros(0, dtype=np.int64)
        first_pass = np.zeros(0, dtype=np.int64)
    if uniq_tok.size:
        regroup = np.argsort(first_pass, kind="stable")  # tokens stay ascending per batch
        uniq_tok2, first_pass2 = uniq_tok[regroup], first_pass[regroup]
        cuts = np.flatnonzero(first_pass2[1:] != first_pass2[:-1]) + 1
        batches = [
            np.ascontiguousarray(b.astype(np.int64, copy=False))
            for b in np.split(uniq_tok2, cuts)
        ]
        seen[uniq_tok] = True
    remaining = np.flatnonzero(~seen)
    cleanup = 0
    for start in range(0, len(remaining), pe_cols):
        batches.append(remaining[start : start + pe_cols])
        cleanup += 1
    return batches, cleanup


def compile_plan(plan: "ExecutionPlan") -> CompiledPlan:
    """Precompute every structural tensor of ``plan`` (see module docstring)."""
    n = plan.n
    passes = plan.passes
    num_passes = len(passes)
    q_ids, key_ids, rows_used, cols_used, pad_rows, pad_cols = _index_tensors(plan)
    raw_key_ids = key_ids  # clipped to the sequence, globals still present

    row_valid = q_ids >= 0
    gtok = np.asarray(plan.global_tokens, dtype=np.int64)
    valid = key_ids >= 0
    keep = row_valid
    if len(gtok):
        valid &= ~np.isin(key_ids, gtok)
        keep = row_valid & ~np.isin(q_ids, gtok)
    key_ids = np.where(valid, key_ids, -1)

    valid_counts = valid.sum(axis=(1, 2)).astype(np.int64)
    row_has_work = valid.any(axis=2)

    # Traffic aggregates (see buffers.plan_traffic): distinct keys per
    # pass, query-buffer loads per query-block transition, output rows.
    # One batched sort replaces a per-pass np.unique: a key is "new"
    # within its pass when it differs from its sorted predecessor.
    sorted_ids = np.sort(key_ids.reshape(num_passes, pad_rows * pad_cols), axis=1)
    fresh = sorted_ids >= 0
    fresh[:, 1:] &= sorted_ids[:, 1:] != sorted_ids[:, :-1]
    distinct_per_pass = fresh.sum(axis=1).astype(np.int64)
    q_loads = 0
    last_block: Tuple[int, int, Tuple[int, ...]] = (-1, -1, ())
    for tp in passes:
        block_key = (tp.query_residue, tp.dilation, tp.q_positions)
        if block_key != last_block:
            q_loads += tp.rows_used
            last_block = block_key
    out_vectors = int(row_has_work.sum())

    mask = np.ones(n, dtype=bool)
    if len(gtok):
        mask[gtok] = False
    nonglobal_rows = np.flatnonzero(mask)

    if len(gtok):
        if plan._schedule is None:
            # Pre-populate the plan's memo so neither engine ever pays
            # for the per-pass Python walk (kept as the reference; see
            # tests/scheduler/test_compiled.py).
            plan._schedule = _global_row_schedule_vectorized(
                n, raw_key_ids, plan.config.pe_cols
            )
        batches = plan.global_row_schedule()
        cleanup = plan.global_row_cleanup_batches
        max_len = max((len(b) for b in batches), default=1)
        global_batches = np.full((len(batches), max_len), -1, dtype=np.int64)
        for i, b in enumerate(batches):
            global_batches[i, : len(b)] = b
        global_batch_valid = global_batches >= 0
    else:
        cleanup = 0
        global_batches = np.empty((0, 1), dtype=np.int64)
        global_batch_valid = np.empty((0, 1), dtype=bool)

    return CompiledPlan(
        plan=plan,
        n=n,
        heads=plan.heads,
        head_dim=plan.head_dim,
        num_passes=num_passes,
        pad_rows=pad_rows,
        pad_cols=pad_cols,
        q_ids=q_ids,
        key_ids=key_ids,
        valid=valid,
        keep=keep,
        rows_used=rows_used,
        cols_used=cols_used,
        valid_counts=valid_counts,
        row_has_work=row_has_work,
        distinct_per_pass=distinct_per_pass,
        q_loads=q_loads,
        out_vectors=out_vectors,
        global_tokens=gtok,
        nonglobal_rows=nonglobal_rows,
        global_batches=global_batches,
        global_batch_valid=global_batch_valid,
    )
