"""Data scheduler (paper Section 4): reordering + splitting → tile plans."""

from .compiled import CompiledPlan, SegmentStream, WindowJob, compile_plan
from .metadata import HardwareMetadata, PatternMetadata
from .plan import BandSegment, ExecutionPlan, PlanStats, TilePass
from .reorder import GroupedBandJob, decompose_band, group_positions, reorder_permutation
from .scheduler import DataScheduler, SchedulerError, check_band_overlap
from .splitting import build_passes_for_group, chunk_band_job, pack_segments

__all__ = [
    "PatternMetadata",
    "HardwareMetadata",
    "CompiledPlan",
    "SegmentStream",
    "WindowJob",
    "compile_plan",
    "BandSegment",
    "TilePass",
    "ExecutionPlan",
    "PlanStats",
    "GroupedBandJob",
    "decompose_band",
    "group_positions",
    "reorder_permutation",
    "DataScheduler",
    "SchedulerError",
    "check_band_overlap",
    "build_passes_for_group",
    "chunk_band_job",
    "pack_segments",
]
