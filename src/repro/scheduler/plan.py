"""Execution plan data structures produced by the data scheduler.

A plan is a sequence of *tile passes*.  Each pass occupies the PE array for
one 5-stage computation: a block of up to ``pe_rows`` queries against up to
``pe_cols`` window key offsets (possibly packed from several band
segments).  Passes are *structural* — they describe which (query, key)
pairs are computed and are shared across attention heads; the engines
iterate heads over the same passes.

Dilated bands are described in *group space* (see
:mod:`repro.scheduler.reorder`): queries with the same residue modulo the
dilation form a group in which the dilated band is an ordinary sliding
window.  A :class:`TilePass` therefore stores its residue/dilation and
group positions, and reconstructs original token indices on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import HardwareConfig
from ..patterns.base import AttentionPattern

__all__ = ["BandSegment", "TilePass", "ExecutionPlan", "PlanStats"]


@dataclass(frozen=True)
class BandSegment:
    """A contiguous chunk of one band mapped onto consecutive PE columns.

    For a query at group position ``p``, the segment's column ``t`` (with
    ``0 <= t < width``) computes the key at group position ``p + rel_lo + t``
    of the key residue class ``key_residue`` — i.e. original key index
    ``key_residue + (p + rel_lo + t) * dilation``.
    """

    band_index: int
    rel_lo: int
    width: int
    key_residue: int
    dilation: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"segment width must be >= 1, got {self.width}")
        if self.dilation < 1:
            raise ValueError(f"dilation must be >= 1, got {self.dilation}")


@dataclass(frozen=True)
class TilePass:
    """One occupancy of the PE array.

    Attributes
    ----------
    query_residue, dilation:
        The query group this pass draws from: original query index is
        ``query_residue + p * dilation`` for group position ``p``.
    q_positions:
        Group positions of the queries mapped to PE rows (length
        ``rows_used <= pe_rows``).
    segments:
        Band segments packed side by side onto the PE columns; their widths
        sum to ``cols_used <= pe_cols``.
    """

    query_residue: int
    dilation: int
    q_positions: Tuple[int, ...]
    segments: Tuple[BandSegment, ...]

    @property
    def rows_used(self) -> int:
        return len(self.q_positions)

    @property
    def cols_used(self) -> int:
        return sum(s.width for s in self.segments)

    def query_ids(self) -> np.ndarray:
        """Original query indices on the PE rows."""
        return self.query_residue + np.asarray(self.q_positions, dtype=np.int64) * self.dilation

    def key_ids(self, n: int, exclude: FrozenSet[int] = frozenset()) -> np.ndarray:
        """Original key indices per (row, column); ``-1`` marks a masked cell.

        Cells are masked when the key falls outside ``[0, n)`` (window
        clipped at the sequence boundary) or when the key is a global token
        (computed once by the global PE column instead, to avoid double
        counting in the softmax merge).
        """
        p = np.asarray(self.q_positions, dtype=np.int64)[:, None]
        cols = []
        for seg in self.segments:
            t = np.arange(seg.width, dtype=np.int64)[None, :]
            pos = p + seg.rel_lo + t
            ids = seg.key_residue + pos * seg.dilation
            cols.append(ids)
        ids = np.concatenate(cols, axis=1)
        valid = (ids >= 0) & (ids < n)
        if exclude:
            excl = np.asarray(sorted(exclude), dtype=np.int64)
            valid &= ~np.isin(ids, excl)
        return np.where(valid, ids, -1)

    def valid_cell_count(self, n: int, exclude: FrozenSet[int] = frozenset()) -> int:
        """Number of unmasked (query, key) cells in this pass."""
        return int((self.key_ids(n, exclude) >= 0).sum())


@dataclass
class PlanStats:
    """Aggregate statistics of an execution plan (per single head)."""

    num_passes: int
    total_cells: int
    valid_cells: int
    pe_array_cells: int
    mean_rows_used: float
    mean_cols_used: float
    utilization: float
    parts_per_query_max: int
    parts_per_query_mean: float
    global_only_passes: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ExecutionPlan:
    """Scheduler output: structural tile passes plus global bookkeeping.

    The plan is head-independent; ``heads`` and ``head_dim`` are carried so
    timing/energy models can scale.  ``global_tokens`` are handled by the
    global PE row/column concurrently with the window passes (Section 5.2),
    except for *pure-global* patterns where dedicated
    ``global_only_passes`` stream the sequence through the global PEs.
    """

    n: int
    heads: int
    head_dim: int
    config: HardwareConfig
    passes: List[TilePass]
    global_tokens: Tuple[int, ...]
    global_only_passes: int = 0
    pattern: Optional[AttentionPattern] = None
    reorder_applied: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("sequence length must be >= 1")
        if self.heads < 1 or self.head_dim < 1:
            raise ValueError("heads and head_dim must be >= 1")

    # ------------------------------------------------------------------
    @property
    def global_set(self) -> FrozenSet[int]:
        return frozenset(self.global_tokens)

    @property
    def num_structural_passes(self) -> int:
        return len(self.passes) + self.global_only_passes

    @property
    def num_total_passes(self) -> int:
        """Passes across all heads (what the accelerator actually runs)."""
        return self.num_structural_passes * self.heads

    def global_row_schedule(self) -> List[np.ndarray]:
        """Key batches consumed by the global PE row, pass by pass.

        The global PE row computes the full attention rows of global-token
        queries by reusing the key vectors already streaming through the PE
        array (Section 5.2).  Each window pass therefore contributes its
        set of not-yet-seen keys as one partial-softmax batch; keys never
        streamed by any window pass (possible at clipped sequence edges or
        for pure-global patterns) are appended as dedicated cleanup batches
        of ``pe_cols`` keys.  Both execution engines consume this schedule
        so their merge order — and hence their fixed-point output — is
        identical.
        """
        seen = np.zeros(self.n, dtype=bool)
        batches: List[np.ndarray] = []
        for tp in self.passes:
            ids = tp.key_ids(self.n)  # global keys stream too; do not exclude
            ids = np.unique(ids[ids >= 0])
            fresh = ids[~seen[ids]]
            if len(fresh):
                seen[fresh] = True
                batches.append(fresh)
        remaining = np.flatnonzero(~seen)
        chunk = self.config.pe_cols
        for start in range(0, len(remaining), chunk):
            batches.append(remaining[start : start + chunk])
        return batches

    def covered_pairs(self) -> np.ndarray:
        """Boolean (n, n) matrix of pairs computed by the plan.

        Union of window-pass cells, global rows and global columns.  Used
        by validation to prove the plan computes the pattern exactly (no
        missing and no duplicated pairs).  Quadratic; test-sized inputs
        only.
        """
        cov = np.zeros((self.n, self.n), dtype=np.int32)
        g = self.global_set
        for tp in self.passes:
            q = tp.query_ids()
            k = tp.key_ids(self.n, exclude=g)
            for r, qi in enumerate(q):
                if qi in g:
                    continue  # global query rows come from the global PE row
                cols = k[r]
                cov[qi, cols[cols >= 0]] += 1
        for gi in self.global_tokens:
            cov[gi, :] += 1  # global PE row: full row, exactly once
        for gi in self.global_tokens:
            for qi in range(self.n):
                if qi not in g:
                    cov[qi, gi] += 1  # global PE column
        return cov

    def stats(self) -> PlanStats:
        """Compute aggregate occupancy/utilisation statistics."""
        g = self.global_set
        rows = self.config.pe_rows
        cols = self.config.pe_cols
        total_cells = 0
        valid_cells = 0
        sum_rows = 0
        sum_cols = 0
        parts = np.zeros(self.n, dtype=np.int64)
        for tp in self.passes:
            total_cells += rows * cols
            valid = tp.key_ids(self.n, exclude=g) >= 0
            valid_cells += int(valid.sum())
            sum_rows += tp.rows_used
            sum_cols += tp.cols_used
            q = tp.query_ids()
            has_work = valid.any(axis=1)
            parts[q[has_work]] += 1
        parts[list(g)] = 1  # global rows are a single merged part
        nonglobal = [i for i in range(self.n) if i not in g]
        if nonglobal and self.global_tokens:
            parts[nonglobal] += 1  # the global-column part
        num = len(self.passes)
        return PlanStats(
            num_passes=num,
            total_cells=total_cells,
            valid_cells=valid_cells,
            pe_array_cells=rows * cols,
            mean_rows_used=sum_rows / num if num else 0.0,
            mean_cols_used=sum_cols / num if num else 0.0,
            utilization=valid_cells / total_cells if total_cells else 0.0,
            parts_per_query_max=int(parts.max()) if self.n else 0,
            parts_per_query_mean=float(parts.mean()) if self.n else 0.0,
            global_only_passes=self.global_only_passes,
        )
