"""Execution plan data structures produced by the data scheduler.

A plan is a sequence of *tile passes*.  Each pass occupies the PE array for
one 5-stage computation: a block of up to ``pe_rows`` queries against up to
``pe_cols`` window key offsets (possibly packed from several band
segments).  Passes are *structural* — they describe which (query, key)
pairs are computed and are shared across attention heads; the engines
iterate heads over the same passes.

Dilated bands are described in *group space* (see
:mod:`repro.scheduler.reorder`): queries with the same residue modulo the
dilation form a group in which the dilated band is an ordinary sliding
window.  A :class:`TilePass` therefore stores its residue/dilation and
group positions, and reconstructs original token indices on demand.

Because passes are structural (shared across heads and across calls), the
index tensors they imply are compiled exactly once per plan into a
:class:`~repro.scheduler.compiled.CompiledPlan` (see
:meth:`ExecutionPlan.compiled`); the execution engines and the
timing/energy/traffic models consume the compiled tensors instead of
re-deriving ``key_ids`` per head or per query sweep.  The derived
properties ``global_set`` and :meth:`ExecutionPlan.global_row_schedule`
are likewise memoized — plans are treated as immutable once built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import HardwareConfig
from ..patterns.base import AttentionPattern

__all__ = ["BandSegment", "TilePass", "ExecutionPlan", "PlanStats"]


@dataclass(frozen=True)
class BandSegment:
    """A contiguous chunk of one band mapped onto consecutive PE columns.

    For a query at group position ``p``, the segment's column ``t`` (with
    ``0 <= t < width``) computes the key at group position ``p + rel_lo + t``
    of the key residue class ``key_residue`` — i.e. original key index
    ``key_residue + (p + rel_lo + t) * dilation``.
    """

    band_index: int
    rel_lo: int
    width: int
    key_residue: int
    dilation: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"segment width must be >= 1, got {self.width}")
        if self.dilation < 1:
            raise ValueError(f"dilation must be >= 1, got {self.dilation}")


@dataclass(frozen=True)
class TilePass:
    """One occupancy of the PE array.

    Attributes
    ----------
    query_residue, dilation:
        The query group this pass draws from: original query index is
        ``query_residue + p * dilation`` for group position ``p``.
    q_positions:
        Group positions of the queries mapped to PE rows (length
        ``rows_used <= pe_rows``).
    segments:
        Band segments packed side by side onto the PE columns; their widths
        sum to ``cols_used <= pe_cols``.
    """

    query_residue: int
    dilation: int
    q_positions: Tuple[int, ...]
    segments: Tuple[BandSegment, ...]

    @property
    def rows_used(self) -> int:
        return len(self.q_positions)

    @property
    def cols_used(self) -> int:
        return sum(s.width for s in self.segments)

    def query_ids(self) -> np.ndarray:
        """Original query indices on the PE rows."""
        return self.query_residue + np.asarray(self.q_positions, dtype=np.int64) * self.dilation

    def key_ids(self, n: int, exclude: FrozenSet[int] = frozenset()) -> np.ndarray:
        """Original key indices per (row, column); ``-1`` marks a masked cell.

        Cells are masked when the key falls outside ``[0, n)`` (window
        clipped at the sequence boundary) or when the key is a global token
        (computed once by the global PE column instead, to avoid double
        counting in the softmax merge).
        """
        p = np.asarray(self.q_positions, dtype=np.int64)[:, None]
        cols = []
        for seg in self.segments:
            t = np.arange(seg.width, dtype=np.int64)[None, :]
            pos = p + seg.rel_lo + t
            ids = seg.key_residue + pos * seg.dilation
            cols.append(ids)
        ids = np.concatenate(cols, axis=1)
        valid = (ids >= 0) & (ids < n)
        if exclude:
            excl = np.asarray(sorted(exclude), dtype=np.int64)
            valid &= ~np.isin(ids, excl)
        return np.where(valid, ids, -1)

    def valid_cell_count(self, n: int, exclude: FrozenSet[int] = frozenset()) -> int:
        """Number of unmasked (query, key) cells in this pass."""
        return int((self.key_ids(n, exclude) >= 0).sum())


@dataclass
class PlanStats:
    """Aggregate statistics of an execution plan (per single head)."""

    num_passes: int
    total_cells: int
    valid_cells: int
    pe_array_cells: int
    mean_rows_used: float
    mean_cols_used: float
    utilization: float
    parts_per_query_max: int
    parts_per_query_mean: float
    global_only_passes: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ExecutionPlan:
    """Scheduler output: structural tile passes plus global bookkeeping.

    The plan is head-independent; ``heads`` and ``head_dim`` are carried so
    timing/energy models can scale.  ``global_tokens`` are handled by the
    global PE row/column concurrently with the window passes (Section 5.2),
    except for *pure-global* patterns where dedicated
    ``global_only_passes`` stream the sequence through the global PEs.
    """

    n: int
    heads: int
    head_dim: int
    config: HardwareConfig
    passes: List[TilePass]
    global_tokens: Tuple[int, ...]
    global_only_passes: int = 0
    pattern: Optional[AttentionPattern] = None
    reorder_applied: bool = False
    # Memoized derived state; plans are immutable once built.
    _global_set: Optional[FrozenSet[int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _schedule: Optional[Tuple[List[np.ndarray], int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _compiled: Optional[object] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("sequence length must be >= 1")
        if self.heads < 1 or self.head_dim < 1:
            raise ValueError("heads and head_dim must be >= 1")

    # ------------------------------------------------------------------
    @property
    def global_set(self) -> FrozenSet[int]:
        if self._global_set is None:
            self._global_set = frozenset(self.global_tokens)
        return self._global_set

    def compiled(self):
        """The memoized :class:`~repro.scheduler.compiled.CompiledPlan`.

        Compilation precomputes, once, the padded per-pass index tensors
        (query rows, key ids with global exclusions baked in, validity
        masks), the merge-round metadata and the per-pass aggregates that
        the engines and cost models would otherwise re-derive per head or
        per call.
        """
        if self._compiled is None:
            from .compiled import compile_plan

            self._compiled = compile_plan(self)
        return self._compiled

    @property
    def num_structural_passes(self) -> int:
        return len(self.passes) + self.global_only_passes

    @property
    def num_total_passes(self) -> int:
        """Passes across all heads (what the accelerator actually runs)."""
        return self.num_structural_passes * self.heads

    def global_row_schedule(self) -> List[np.ndarray]:
        """Key batches consumed by the global PE row, pass by pass.

        The global PE row computes the full attention rows of global-token
        queries by reusing the key vectors already streaming through the PE
        array (Section 5.2).  Each window pass therefore contributes its
        set of not-yet-seen keys as one partial-softmax batch; keys never
        streamed by any window pass (possible at clipped sequence edges or
        for pure-global patterns) are appended as dedicated cleanup batches
        of ``pe_cols`` keys.  Both execution engines consume this schedule
        so their merge order — and hence their fixed-point output — is
        identical.

        The schedule is memoized; callers must not mutate the returned
        list or its arrays.  :func:`~repro.scheduler.compiled.compile_plan`
        pre-populates the memo with a vectorised computation, so the
        per-pass walk below only runs for plans that are never compiled
        (it is kept as the reference implementation).
        """
        if self._schedule is None:
            seen = np.zeros(self.n, dtype=bool)
            batches: List[np.ndarray] = []
            for tp in self.passes:
                ids = tp.key_ids(self.n)  # global keys stream too; do not exclude
                ids = np.unique(ids[ids >= 0])
                fresh = ids[~seen[ids]]
                if len(fresh):
                    seen[fresh] = True
                    batches.append(fresh)
            remaining = np.flatnonzero(~seen)
            chunk = self.config.pe_cols
            cleanup = 0
            for start in range(0, len(remaining), chunk):
                batches.append(remaining[start : start + chunk])
                cleanup += 1
            self._schedule = (batches, cleanup)
        return self._schedule[0]

    @property
    def global_row_cleanup_batches(self) -> int:
        """Trailing batches of :meth:`global_row_schedule` not hidden
        behind a window pass (streamed by dedicated global-only passes)."""
        self.global_row_schedule()
        return self._schedule[1]

    def covered_pairs(self) -> np.ndarray:
        """Boolean (n, n) matrix of pairs computed by the plan.

        Union of window-pass cells, global rows and global columns.  Used
        by validation to prove the plan computes the pattern exactly (no
        missing and no duplicated pairs).  Quadratic; test-sized inputs
        only.
        """
        cov = np.zeros((self.n, self.n), dtype=np.int32)
        g = self.global_set
        for tp in self.passes:
            q = tp.query_ids()
            k = tp.key_ids(self.n, exclude=g)
            for r, qi in enumerate(q):
                if qi in g:
                    continue  # global query rows come from the global PE row
                cols = k[r]
                cov[qi, cols[cols >= 0]] += 1
        for gi in self.global_tokens:
            cov[gi, :] += 1  # global PE row: full row, exactly once
        for gi in self.global_tokens:
            for qi in range(self.n):
                if qi not in g:
                    cov[qi, gi] += 1  # global PE column
        return cov

    def stats(self) -> PlanStats:
        """Compute aggregate occupancy/utilisation statistics.

        Backed by the compiled plan, so the per-pass ``key_ids`` tensors
        are derived once per plan rather than once per sweep point.
        """
        cp = self.compiled()
        rows = self.config.pe_rows
        cols = self.config.pe_cols
        num = cp.num_passes
        total_cells = num * rows * cols
        valid_cells = cp.total_valid_cells
        sum_rows = int(cp.rows_used.sum())
        sum_cols = int(cp.cols_used.sum())
        parts = np.zeros(self.n, dtype=np.int64)
        np.add.at(parts, cp.q_ids[cp.row_has_work], 1)
        if self.global_tokens:
            parts[cp.global_tokens] = 1  # global rows are a single merged part
            if len(cp.nonglobal_rows):
                parts[cp.nonglobal_rows] += 1  # the global-column part
        return PlanStats(
            num_passes=num,
            total_cells=total_cells,
            valid_cells=valid_cells,
            pe_array_cells=rows * cols,
            mean_rows_used=sum_rows / num if num else 0.0,
            mean_cols_used=sum_cols / num if num else 0.0,
            utilization=valid_cells / total_cells if total_cells else 0.0,
            parts_per_query_max=int(parts.max()) if self.n else 0,
            parts_per_query_mean=float(parts.mean()) if self.n else 0.0,
            global_only_passes=self.global_only_passes,
        )
