"""The data scheduler: hybrid sparse patterns → executable tile plans.

Implements the software half of SALO (paper Section 4): given the pattern
metadata and the hardware metadata, apply *data reordering* (dilated →
sliding windows via residue grouping) and *data splitting* (sequence and
window splitting) to produce an :class:`ExecutionPlan` the spatial
accelerator can run pass by pass.  The scheduler also validates the
pattern against the hardware's constraints — most importantly the bound on
global tokens supported by a single global PE row/column
(``min(ceil(n/#row), ceil(w/#col))``, Section 5.2) and the requirement
that bands do not overlap (overlapping pairs would be double-counted by
the softmax merge).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import HardwareConfig
from ..patterns.base import AttentionPattern, Band
from .plan import ExecutionPlan, TilePass
from .reorder import GroupedBandJob, decompose_band
from .splitting import build_passes_for_group

__all__ = ["DataScheduler", "SchedulerError", "check_band_overlap"]


class SchedulerError(ValueError):
    """Raised when a pattern cannot be mapped onto the accelerator."""


def check_band_overlap(bands: Sequence[Band]) -> None:
    """Reject band sets whose relative-offset sets intersect.

    Two bands sharing an offset would make some (query, key) pair appear in
    two passes, and the weighted-sum merge (Eq. 2) would then count its
    exponential twice.  The published patterns (Longformer, ViL,
    Star-Transformer) are all overlap-free.
    """
    seen: Dict[int, int] = {}
    for idx, band in enumerate(bands):
        for off in band.offsets():
            off = int(off)
            if off in seen:
                raise SchedulerError(
                    f"bands {seen[off]} and {idx} overlap at relative offset {off}; "
                    "overlapping bands would double-count scores in the softmax merge"
                )
            seen[off] = idx


class DataScheduler:
    """Maps hybrid sparse attention patterns onto a :class:`HardwareConfig`.

    Parameters
    ----------
    config:
        Accelerator instance to schedule for.
    strict_global_bound:
        Enforce the Section 5.2 bound on the number of global tokens.  Turn
        off only for what-if studies; the timing model assumes global work
        hides behind window passes, which the bound guarantees.
    """

    def __init__(self, config: HardwareConfig, strict_global_bound: bool = True) -> None:
        self.config = config
        self.strict_global_bound = strict_global_bound

    # ------------------------------------------------------------------
    def schedule(
        self,
        pattern: AttentionPattern,
        heads: int = 1,
        head_dim: int = 64,
    ) -> ExecutionPlan:
        """Produce an execution plan for ``pattern``.

        Raises
        ------
        SchedulerError
            If the pattern is unstructured, has overlapping bands, or
            requests more global tokens than the hardware supports.
        """
        bands = pattern.bands()
        if bands is None:
            raise SchedulerError(
                "pattern does not expose band structure; SALO schedules hybrid "
                "sparse patterns (bands + global tokens) only"
            )
        check_band_overlap(bands)
        n = pattern.n
        global_tokens = tuple(pattern.global_tokens())
        self._check_global_bound(n, bands, global_tokens)

        jobs: List[GroupedBandJob] = []
        for idx, band in enumerate(bands):
            jobs.extend(decompose_band(idx, band, n))

        groups: Dict[Tuple[int, int, int], List[GroupedBandJob]] = defaultdict(list)
        for job in jobs:
            groups[(job.query_residue, job.dilation, job.group_size)].append(job)

        passes: List[TilePass] = []
        for key in sorted(groups):
            passes.extend(
                build_passes_for_group(
                    groups[key],
                    pe_rows=self.config.pe_rows,
                    pe_cols=self.config.pe_cols,
                    pack=self.config.pack_bands,
                )
            )

        exclude = frozenset(global_tokens)
        passes = [tp for tp in passes if tp.valid_cell_count(n, exclude) > 0]

        global_only = 0
        if not passes and global_tokens:
            # Pure-global pattern: the sequence must still stream through
            # the global PE row/column.
            global_only = max(
                math.ceil(n / self.config.pe_cols), math.ceil(n / self.config.pe_rows)
            )
        if not passes and not global_tokens:
            raise SchedulerError("pattern schedules no work (no bands, no global tokens)")

        reorder = any(b.dilation > 1 for b in bands)
        return ExecutionPlan(
            n=n,
            heads=heads,
            head_dim=head_dim,
            config=self.config,
            passes=passes,
            global_tokens=global_tokens,
            global_only_passes=global_only,
            pattern=pattern,
            reorder_applied=reorder,
        )

    # ------------------------------------------------------------------
    def _check_global_bound(
        self, n: int, bands: Sequence[Band], global_tokens: Tuple[int, ...]
    ) -> None:
        if not global_tokens:
            return
        if self.config.global_rows == 0 or self.config.global_cols == 0:
            raise SchedulerError(
                "pattern has global tokens but the hardware has no global PE row/column"
            )
        window = sum(b.width for b in bands)
        if not bands:
            return  # pure-global patterns stream dedicated passes instead
        bound = self.config.max_global_tokens(n, window)
        if self.strict_global_bound and len(global_tokens) > bound:
            raise SchedulerError(
                f"{len(global_tokens)} global tokens exceed the supported bound "
                f"{bound} = min(ceil(n/#row), ceil(w/#col)) x global rows/cols "
                "(paper Section 5.2)"
            )
