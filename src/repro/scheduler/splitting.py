"""Data splitting: fit patterns onto the finite PE array (Section 4.2).

*Sequence splitting* slices query groups into blocks of ``pe_rows``
(independent rows — no correction needed).  *Window splitting* slices a
band's key window into chunks of at most ``pe_cols`` columns; the partial
softmax outputs of the resulting passes are merged by the weighted-sum
module using the renormalising transformation of Eq. 2.

*Band packing* (a scheduler optimisation, on by default) places several
narrow band chunks side by side in a single pass so that multi-band
patterns such as ViL's 15 x 15 window keep the PE columns busy; the paper
reports >75 % PE utilisation on such workloads, which a strict
one-band-per-pass mapping cannot reach (15 of 32 columns ≈ 47 %).  Each
packed segment keeps its own diagonal key stream (one injection point per
segment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .plan import BandSegment, TilePass
from .reorder import GroupedBandJob

__all__ = ["chunk_band_job", "pack_segments", "build_passes_for_group"]


def chunk_band_job(job: GroupedBandJob, pe_cols: int) -> List[BandSegment]:
    """Window splitting: slice one band job into <= ``pe_cols`` wide segments."""
    if pe_cols < 1:
        raise ValueError(f"pe_cols must be >= 1, got {pe_cols}")
    segments = []
    start = 0
    while start < job.width:
        width = min(pe_cols, job.width - start)
        segments.append(
            BandSegment(
                band_index=job.band_index,
                rel_lo=job.rel_lo + start,
                width=width,
                key_residue=job.key_residue,
                dilation=job.dilation,
            )
        )
        start += width
    return segments


def pack_segments(
    segments: Sequence[BandSegment], pe_cols: int, pack: bool
) -> List[Tuple[BandSegment, ...]]:
    """Group segments into per-pass column assignments.

    With ``pack=False`` every segment gets its own pass (the strict
    mapping implied by a single key-injection port).  With ``pack=True``
    segments are packed first-fit in order, never splitting a segment
    across passes.
    """
    if not pack:
        return [(seg,) for seg in segments]
    groups: List[List[BandSegment]] = []
    widths: List[int] = []
    for seg in segments:
        placed = False
        for gi, used in enumerate(widths):
            if used + seg.width <= pe_cols:
                groups[gi].append(seg)
                widths[gi] += seg.width
                placed = True
                break
        if not placed:
            groups.append([seg])
            widths.append(seg.width)
    return [tuple(g) for g in groups]


def build_passes_for_group(
    jobs: Sequence[GroupedBandJob],
    pe_rows: int,
    pe_cols: int,
    pack: bool,
) -> List[TilePass]:
    """Sequence-split + window-split all jobs of one query group.

    All jobs must share ``(query_residue, dilation, group_size)`` — i.e.
    describe bands attended by the *same* ordered set of queries — so their
    segments can legally share passes.
    """
    if not jobs:
        return []
    key = (jobs[0].query_residue, jobs[0].dilation, jobs[0].group_size)
    for job in jobs:
        if (job.query_residue, job.dilation, job.group_size) != key:
            raise ValueError("jobs of one group must share residue/dilation/size")
    residue, dilation, group_size = key

    segments: List[BandSegment] = []
    for job in jobs:
        segments.extend(chunk_band_job(job, pe_cols))
    column_groups = pack_segments(segments, pe_cols, pack)

    passes: List[TilePass] = []
    for block_start in range(0, group_size, pe_rows):
        rows = tuple(range(block_start, min(block_start + pe_rows, group_size)))
        for cols in column_groups:
            passes.append(
                TilePass(
                    query_residue=residue,
                    dilation=dilation,
                    q_positions=rows,
                    segments=cols,
                )
            )
    return passes
