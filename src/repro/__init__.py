"""repro — reproduction of SALO (DAC 2022).

SALO is a spatial accelerator enabling hybrid sparse attention mechanisms
(sliding windows, dilated windows, global tokens) for long sequences.
This package implements the full system in Python: the sparse-attention
pattern IR, the data scheduler (splitting + reordering), a cycle-accurate
spatial-accelerator model with fixed-point numerics, baseline CPU/GPU and
Sanger performance models, the Longformer/ViL/BERT workloads of the
evaluation, and one experiment driver per table/figure of the paper.

Quickstart::

    import numpy as np
    from repro import SALO, longformer_pattern

    pattern = longformer_pattern(n=1024, window=128, global_tokens=(0,))
    salo = SALO()  # defaults to the 32x32 configuration of Table 1
    rng = np.random.default_rng(0)
    q, k, v = (rng.standard_normal((1024, 768)) for _ in range(3))
    result = salo.attend(pattern, q, k, v, heads=12)
    print(result.stats.summary())
"""

from .core.config import ConfigError, HardwareConfig, NumericsConfig
from .patterns import (
    AttentionPattern,
    Band,
    DilatedWindowPattern,
    GlobalAttentionPattern,
    HybridSparsePattern,
    Local2DPattern,
    PatternError,
    SlidingWindowPattern,
    longformer_pattern,
    sparse_transformer_pattern,
    star_transformer_pattern,
    vil_pattern,
)
from .scheduler import DataScheduler, ExecutionPlan, SchedulerError

__version__ = "1.0.0"

__all__ = [
    "HardwareConfig",
    "NumericsConfig",
    "ConfigError",
    "AttentionPattern",
    "Band",
    "SlidingWindowPattern",
    "DilatedWindowPattern",
    "GlobalAttentionPattern",
    "HybridSparsePattern",
    "Local2DPattern",
    "PatternError",
    "longformer_pattern",
    "vil_pattern",
    "star_transformer_pattern",
    "sparse_transformer_pattern",
    "DataScheduler",
    "ExecutionPlan",
    "SchedulerError",
    "__version__",
]

# The top-level SALO engine is imported last to avoid a circular import
# (core.salo builds on scheduler + accelerator).
from .core.salo import SALO, AttentionResult  # noqa: E402

__all__ += ["SALO", "AttentionResult"]

# The unified runtime surface (backend registry + Runtime facade) builds
# on SALO and the baselines, so it comes last too.
from .api import Runtime, RuntimeConfig  # noqa: E402

__all__ += ["Runtime", "RuntimeConfig"]
