"""Sliding window attention (Section 2.3, blue pattern in Figure 2).

Given a relative position range ``[a, b]``, each query ``q_i`` attends to
keys ``k_j`` with ``a <= j - i <= b``; the window size is ``w = b - a + 1``.
Successive queries share ``w - 1`` key vectors, which is the data reuse the
SALO dataflow exploits through diagonal PE connections.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import AttentionPattern, Band, PatternError

__all__ = ["SlidingWindowPattern"]


class SlidingWindowPattern(AttentionPattern):
    """Sliding window attention with relative range ``[a, b]``.

    Parameters
    ----------
    n:
        Sequence length.
    a, b:
        Inclusive relative offset range; query ``i`` attends keys
        ``i + a .. i + b`` (clipped to the sequence).  A symmetric window of
        size ``w`` is obtained with ``a = -(w // 2)``, ``b = w - 1 - w // 2``.
    """

    def __init__(self, n: int, a: int, b: int) -> None:
        super().__init__(n)
        if b < a:
            raise PatternError(f"window requires b >= a, got [{a}, {b}]")
        self.a = int(a)
        self.b = int(b)

    @classmethod
    def symmetric(cls, n: int, window: int) -> "SlidingWindowPattern":
        """Symmetric window of total size ``window`` centred on the query.

        For even ``window`` the extra key lies on the *past* side, matching
        the Longformer convention of a ``window`` split evenly with the
        centre token included on the query's own position.
        """
        if window < 1:
            raise PatternError(f"window size must be >= 1, got {window}")
        half = window // 2
        return cls(n, -half, window - 1 - half)

    @classmethod
    def causal(cls, n: int, window: int) -> "SlidingWindowPattern":
        """Causal (past-only) window of size ``window`` including self."""
        if window < 1:
            raise PatternError(f"window size must be >= 1, got {window}")
        return cls(n, -(window - 1), 0)

    @property
    def window_size(self) -> int:
        """The window size ``w = b - a + 1``."""
        return self.b - self.a + 1

    def row_keys(self, i: int) -> np.ndarray:
        self._check_row(i)
        lo = max(0, i + self.a)
        hi = min(self._n - 1, i + self.b)
        if hi < lo:
            return np.empty(0, dtype=np.int64)
        return np.arange(lo, hi + 1, dtype=np.int64)

    def row_count(self, i: int) -> int:
        self._check_row(i)
        lo = max(0, i + self.a)
        hi = min(self._n - 1, i + self.b)
        return max(0, hi - lo + 1)

    def nnz(self) -> int:
        # Closed form: sum over i of clip(i+b, n-1) - clip(i+a, 0) + 1.
        i = np.arange(self._n, dtype=np.int64)
        lo = np.maximum(0, i + self.a)
        hi = np.minimum(self._n - 1, i + self.b)
        return int(np.maximum(0, hi - lo + 1).sum())

    def bands(self) -> Optional[List[Band]]:
        return [Band(self.a, self.b, 1)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlidingWindowPattern(n={self._n}, a={self.a}, b={self.b})"
