"""Core abstractions for sparse attention patterns.

A *sparse attention pattern* specifies, for every query position ``i`` in a
sequence of length ``n``, the set of key positions ``j`` the query attends
to.  Following the paper (Section 2.3), patterns are best viewed as boolean
masks over the :math:`n \\times n` score matrix ``S``: a position ``(i, j)``
present in the pattern means :math:`S_{ij}` participates in the softmax and
the subsequent weighted sum over value vectors.

SALO-schedulable patterns are *structured*: each query attends to a union of
relative-offset **bands** (sliding windows, possibly dilated) plus a small
set of **global tokens**.  The :class:`Band` dataclass captures one band and
is the common currency between the pattern library and the data scheduler.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Band",
    "AttentionPattern",
    "PatternError",
]


class PatternError(ValueError):
    """Raised when a pattern specification is inconsistent."""


@dataclass(frozen=True)
class Band:
    """A dilated band of relative offsets.

    A band with bounds ``(lo, hi)`` and dilation ``d`` makes query ``i``
    attend to keys ``j`` with ``j - i`` in ``{lo, lo + d, ..., hi}``
    (clipped to the valid key range ``[0, n)``).

    ``dilation == 1`` is an ordinary sliding window of width
    ``hi - lo + 1`` — the pattern highlighted in blue in Figure 2 of the
    paper.  ``dilation > 1`` is the dilated window attention of
    Sparse-Transformer / the y-axis window of ViL (grey in Figure 2c).
    """

    lo: int
    hi: int
    dilation: int = 1

    def __post_init__(self) -> None:
        if self.dilation < 1:
            raise PatternError(f"dilation must be >= 1, got {self.dilation}")
        if self.hi < self.lo:
            raise PatternError(f"band requires hi >= lo, got [{self.lo}, {self.hi}]")
        if (self.hi - self.lo) % self.dilation != 0:
            raise PatternError(
                f"band span {self.hi - self.lo} not a multiple of dilation {self.dilation}"
            )

    @property
    def width(self) -> int:
        """Number of key offsets in the band (the window size ``w``)."""
        return (self.hi - self.lo) // self.dilation + 1

    def offsets(self) -> np.ndarray:
        """All relative offsets in the band, ascending."""
        return np.arange(self.lo, self.hi + 1, self.dilation)

    def keys_for(self, i: int, n: int) -> np.ndarray:
        """Key indices query ``i`` attends to through this band, clipped to ``[0, n)``."""
        keys = i + self.offsets()
        return keys[(keys >= 0) & (keys < n)]

    def count_for(self, i: int, n: int) -> int:
        """Number of in-range keys for query ``i`` (cheaper than ``keys_for``)."""
        # j = i + lo + t*d must satisfy 0 <= j <= n-1 with 0 <= t < width.
        d = self.dilation
        first = i + self.lo
        t_min = 0 if first >= 0 else (-first + d - 1) // d
        if n - 1 < first:
            return 0
        t_max = min((n - 1 - first) // d, self.width - 1)
        return max(0, t_max - t_min + 1)

    def shifted(self, delta: int) -> "Band":
        """A copy of this band translated by ``delta`` offsets."""
        return Band(self.lo + delta, self.hi + delta, self.dilation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.dilation == 1:
            return f"Band([{self.lo}, {self.hi}])"
        return f"Band([{self.lo}, {self.hi}], dilation={self.dilation})"


class AttentionPattern(abc.ABC):
    """Abstract base class for attention patterns over a length-``n`` sequence.

    Subclasses must implement :meth:`row_keys`.  Structured patterns should
    additionally expose :meth:`bands` and :meth:`global_tokens` so that the
    data scheduler can map them onto the accelerator without materialising
    the full :math:`n \\times n` mask.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise PatternError(f"sequence length must be >= 1, got {n}")
        self._n = int(n)

    @property
    def n(self) -> int:
        """Sequence length."""
        return self._n

    # ------------------------------------------------------------------
    # Required interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def row_keys(self, i: int) -> np.ndarray:
        """Sorted array of key indices query ``i`` attends to."""

    # ------------------------------------------------------------------
    # Structured interface (optional)
    # ------------------------------------------------------------------
    def bands(self) -> Optional[List[Band]]:
        """Relative-offset bands composing the windowed part, or ``None``.

        ``None`` signals an unstructured pattern that the scheduler must
        handle via the generic (mask-driven) path.
        """
        return None

    def global_tokens(self) -> Sequence[int]:
        """Indices of global tokens (empty for purely local patterns)."""
        return ()

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def _check_row(self, i: int) -> None:
        if not 0 <= i < self._n:
            raise PatternError(f"query index {i} out of range [0, {self._n})")

    def mask(self) -> np.ndarray:
        """Dense boolean mask of shape ``(n, n)``.

        Intended for reference computation and testing; quadratic in ``n``,
        so avoid on long sequences.
        """
        m = np.zeros((self._n, self._n), dtype=bool)
        for i in range(self._n):
            m[i, self.row_keys(i)] = True
        return m

    def row_count(self, i: int) -> int:
        """Number of keys attended by query ``i``."""
        return int(len(self.row_keys(i)))

    def nnz(self) -> int:
        """Total number of (query, key) pairs in the pattern."""
        return sum(self.row_count(i) for i in range(self._n))

    def sparsity(self) -> float:
        """Fraction of the dense :math:`n^2` score matrix that is computed.

        This matches the "Sparsity" column of Table 2 in the paper (where
        *lower* means *sparser*); e.g. Longformer-4096 with a 512-wide
        window and one global token has sparsity ≈ 0.125.
        """
        return self.nnz() / float(self._n) ** 2

    def flops(self, head_dim: int, heads: int = 1) -> int:
        """Multiply-accumulate count for one attention computation.

        Each (query, key) pair costs ``head_dim`` MACs in :math:`QK^T` and
        ``head_dim`` MACs in :math:`S'V`.
        """
        return 2 * self.nnz() * int(head_dim) * int(heads)

    def validate_rows_nonempty(self) -> None:
        """Raise :class:`PatternError` if any query attends to no key.

        Softmax over an empty set is undefined; schedulable patterns must
        give every query at least one key.
        """
        for i in range(self._n):
            if self.row_count(i) == 0:
                raise PatternError(f"query {i} attends to no keys")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttentionPattern):
            return NotImplemented
        if self._n != other._n:
            return False
        return all(
            np.array_equal(self.row_keys(i), other.row_keys(i)) for i in range(self._n)
        )

    def __hash__(self) -> int:  # patterns are mutable-free but equality is deep
        return hash((type(self).__name__, self._n))


def merge_key_arrays(arrays: Iterable[np.ndarray]) -> np.ndarray:
    """Sorted union of several key-index arrays."""
    stacked = np.concatenate([np.asarray(a, dtype=np.int64) for a in arrays] or [np.empty(0, np.int64)])
    return np.unique(stacked)
