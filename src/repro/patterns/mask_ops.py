"""Mask algebra and pattern/mask interoperation utilities.

These helpers operate on dense boolean masks (for testing, visualisation
and unstructured patterns) and provide conversions between masks and the
structured pattern representation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import AttentionPattern, Band, PatternError

__all__ = [
    "ExplicitMaskPattern",
    "union",
    "intersection",
    "mask_sparsity",
    "coverage",
    "band_mask",
    "global_mask",
    "infer_global_tokens",
    "render_ascii",
]


class ExplicitMaskPattern(AttentionPattern):
    """Pattern backed by a dense boolean mask (unstructured fallback)."""

    def __init__(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
            raise PatternError(f"mask must be square 2-D, got shape {mask.shape}")
        super().__init__(mask.shape[0])
        self._mask = mask.copy()

    def row_keys(self, i: int) -> np.ndarray:
        self._check_row(i)
        return np.flatnonzero(self._mask[i]).astype(np.int64)

    def mask(self) -> np.ndarray:
        return self._mask.copy()

    def nnz(self) -> int:
        return int(self._mask.sum())


def union(*patterns: AttentionPattern) -> ExplicitMaskPattern:
    """Set union of patterns (all on the same sequence length)."""
    _check_same_length(patterns)
    out = np.zeros((patterns[0].n, patterns[0].n), dtype=bool)
    for p in patterns:
        out |= p.mask()
    return ExplicitMaskPattern(out)


def intersection(*patterns: AttentionPattern) -> ExplicitMaskPattern:
    """Set intersection of patterns (all on the same sequence length)."""
    _check_same_length(patterns)
    out = np.ones((patterns[0].n, patterns[0].n), dtype=bool)
    for p in patterns:
        out &= p.mask()
    return ExplicitMaskPattern(out)


def _check_same_length(patterns: Sequence[AttentionPattern]) -> None:
    if not patterns:
        raise PatternError("need at least one pattern")
    lengths = {p.n for p in patterns}
    if len(lengths) != 1:
        raise PatternError(f"patterns have differing lengths: {sorted(lengths)}")


def mask_sparsity(mask: np.ndarray) -> float:
    """Fraction of true entries in a boolean mask."""
    mask = np.asarray(mask, dtype=bool)
    return float(mask.sum()) / mask.size


def coverage(pattern: AttentionPattern, reference: AttentionPattern) -> float:
    """Fraction of ``reference``'s positions also present in ``pattern``."""
    ref = reference.mask()
    total = int(ref.sum())
    if total == 0:
        return 1.0
    return float((pattern.mask() & ref).sum()) / total


def band_mask(n: int, band: Band) -> np.ndarray:
    """Dense mask of a single band on a length-``n`` sequence."""
    m = np.zeros((n, n), dtype=bool)
    for i in range(n):
        m[i, band.keys_for(i, n)] = True
    return m


def global_mask(n: int, tokens: Sequence[int]) -> np.ndarray:
    """Dense mask of global rows + columns."""
    m = np.zeros((n, n), dtype=bool)
    toks = list(tokens)
    m[toks, :] = True
    m[:, toks] = True
    return m


def infer_global_tokens(mask: np.ndarray) -> List[int]:
    """Indices whose row *and* column are fully populated."""
    mask = np.asarray(mask, dtype=bool)
    full_rows = mask.all(axis=1)
    full_cols = mask.all(axis=0)
    return [int(i) for i in np.flatnonzero(full_rows & full_cols)]


def render_ascii(pattern: AttentionPattern, max_n: int = 64) -> str:
    """ASCII-art rendering of a pattern mask (■ attended / · skipped).

    Handy for examples and debugging; refuses to render very long
    sequences.
    """
    if pattern.n > max_n:
        raise PatternError(f"sequence length {pattern.n} > render limit {max_n}")
    mask = pattern.mask()
    rows = ["".join("#" if v else "." for v in row) for row in mask]
    return "\n".join(rows)
