"""Hybrid sparse attention: banded windows + global tokens.

This is the pattern family SALO natively supports (the paper's "hybrid
sparse attention mechanism"): the union of one or more (possibly dilated)
relative-offset bands with a handful of global tokens.  Longformer is one
symmetric band plus global tokens; ViL is fifteen bands (one per image row
offset) plus a global token.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .base import AttentionPattern, Band, PatternError, merge_key_arrays

__all__ = ["HybridSparsePattern"]


class HybridSparsePattern(AttentionPattern):
    """Union of relative-offset bands and global-token rows/columns.

    Parameters
    ----------
    n:
        Sequence length.
    bands:
        Iterable of :class:`Band`.  Bands may overlap; overlapping positions
        are counted once (the mask is a set union).
    global_tokens:
        Indices whose full row and column are attended.
    """

    def __init__(
        self,
        n: int,
        bands: Iterable[Band] = (),
        global_tokens: Sequence[int] = (),
    ) -> None:
        super().__init__(n)
        self._bands: Tuple[Band, ...] = tuple(bands)
        toks = sorted(set(int(t) for t in global_tokens))
        for t in toks:
            if not 0 <= t < n:
                raise PatternError(f"global token {t} out of range [0, {n})")
        self._global: Tuple[int, ...] = tuple(toks)
        if not self._bands and not self._global:
            raise PatternError("hybrid pattern needs at least one band or global token")

    # ------------------------------------------------------------------
    # Structured interface
    # ------------------------------------------------------------------
    def bands(self) -> List[Band]:
        return list(self._bands)

    def global_tokens(self) -> Tuple[int, ...]:
        return self._global

    @property
    def num_global(self) -> int:
        return len(self._global)

    def window_size(self) -> int:
        """Total number of banded key offsets per query (the effective ``w``)."""
        return sum(b.width for b in self._bands)

    # ------------------------------------------------------------------
    # Pattern interface
    # ------------------------------------------------------------------
    def row_keys(self, i: int) -> np.ndarray:
        self._check_row(i)
        if i in self._global:
            return np.arange(self._n, dtype=np.int64)
        parts = [b.keys_for(i, self._n) for b in self._bands]
        parts.append(np.asarray(self._global, dtype=np.int64))
        return merge_key_arrays(parts)

    def banded_row_keys(self, i: int) -> np.ndarray:
        """Keys attended through bands only (ignoring global rows/columns)."""
        self._check_row(i)
        return merge_key_arrays([b.keys_for(i, self._n) for b in self._bands])

    def with_sequence_length(self, n: int) -> "HybridSparsePattern":
        """Same band/global structure on a different sequence length."""
        toks = [t for t in self._global if t < n]
        return HybridSparsePattern(n, self._bands, toks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HybridSparsePattern(n={self._n}, bands={list(self._bands)}, "
            f"global_tokens={list(self._global)})"
        )
