"""Two-dimensional (image) attention patterns and their 1-D flattening.

ViL applies a local :math:`R \\times R` attention window over an
:math:`H \\times W` grid of image patches.  Flattening patches row-major
(``i = r * W + c``) turns the 2-D window into a union of 1-D bands: for each
row offset ``dr`` in ``[-R//2, R//2]`` the column offsets form a contiguous
band centred at ``dr * W`` (Figure 2c flattens exactly this way).  Each band
is an ordinary sliding window, so the whole 2-D window is SALO-schedulable
as a multi-band hybrid pattern; the vertical direction can equivalently be
seen as *dilated* window attention with dilation ``W`` (Section 2.3), which
is what the data scheduler's reordering step exploits.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import Band, PatternError
from .hybrid import HybridSparsePattern

__all__ = ["Local2DPattern", "flatten_2d_window", "grid_neighbourhood"]


def flatten_2d_window(grid_w: int, window_h: int, window_w: int) -> List[Band]:
    """Bands of the flattened 2-D local window.

    Parameters
    ----------
    grid_w:
        Width ``W`` of the patch grid (row stride of the flattening).
    window_h, window_w:
        Window extent in patches along y and x.  Odd sizes centre the
        window on the query patch; even sizes put the extra patch on the
        top/left, matching the symmetric-window convention.

    Returns
    -------
    One :class:`Band` per row offset; ``window_h`` bands of width
    ``window_w`` each.
    """
    if window_h < 1 or window_w < 1:
        raise PatternError("2-D window extents must be >= 1")
    if window_w > grid_w:
        raise PatternError(
            f"window width {window_w} exceeds grid width {grid_w}; bands would wrap"
        )
    half_h = window_h // 2
    half_w = window_w // 2
    bands = []
    for dr in range(-half_h, window_h - half_h):
        centre = dr * grid_w
        bands.append(Band(centre - half_w, centre + (window_w - 1 - half_w), 1))
    return bands


def grid_neighbourhood(
    r: int, c: int, grid_h: int, grid_w: int, window_h: int, window_w: int
) -> List[Tuple[int, int]]:
    """All in-grid patches inside the window centred at ``(r, c)``.

    Reference helper used by tests to cross-check the flattened bands
    against a direct 2-D computation.  Note the flattened pattern differs
    at horizontal grid borders: a band sliding past the row edge attends
    patches of the neighbouring image row (it clips only at the sequence
    ends), exactly like the flattened patterns in Figure 2c of the paper.
    """
    half_h = window_h // 2
    half_w = window_w // 2
    out = []
    for dr in range(-half_h, window_h - half_h):
        for dc in range(-half_w, window_w - half_w):
            rr, cc = r + dr, c + dc
            if 0 <= rr < grid_h and 0 <= cc < grid_w:
                out.append((rr, cc))
    return out


class Local2DPattern(HybridSparsePattern):
    """Flattened 2-D local window attention over an ``H x W`` patch grid.

    This is the attention pattern of ViL stages: a ``window_h x window_w``
    local window plus optional global tokens, flattened row-major to a
    sequence of length ``H * W``.
    """

    def __init__(
        self,
        grid_h: int,
        grid_w: int,
        window_h: int,
        window_w: int,
        global_tokens: Sequence[int] = (),
    ) -> None:
        if grid_h < 1 or grid_w < 1:
            raise PatternError("grid extents must be >= 1")
        bands = flatten_2d_window(grid_w, window_h, window_w)
        super().__init__(grid_h * grid_w, bands, global_tokens)
        self.grid_h = int(grid_h)
        self.grid_w = int(grid_w)
        self.window_h = int(window_h)
        self.window_w = int(window_w)

    def flat_index(self, r: int, c: int) -> int:
        """Row-major flattening of patch coordinates."""
        if not (0 <= r < self.grid_h and 0 <= c < self.grid_w):
            raise PatternError(f"patch ({r}, {c}) outside {self.grid_h}x{self.grid_w} grid")
        return r * self.grid_w + c

    def patch_coords(self, i: int) -> Tuple[int, int]:
        """Inverse of :meth:`flat_index`."""
        self._check_row(i)
        return divmod(i, self.grid_w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Local2DPattern(grid={self.grid_h}x{self.grid_w}, "
            f"window={self.window_h}x{self.window_w}, "
            f"global_tokens={list(self.global_tokens())})"
        )
