"""Component-coloured pattern rendering (the view of Figure 2).

Figure 2 of the paper colours sparse-attention components differently —
sliding windows blue, dilated windows grey, global rows/columns black.
:func:`render_components` produces the same view in text: each mask cell
shows *which* component provides it, making band structure, dilation and
global tokens visually checkable in examples, docs and failing-test
output.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .base import AttentionPattern, PatternError

__all__ = ["component_map", "render_components", "component_legend"]

#: Cell codes in the component map.
EMPTY, WINDOW, DILATED, GLOBAL, OVERLAP = 0, 1, 2, 3, 4

_GLYPHS = {EMPTY: "·", WINDOW: "w", DILATED: "d", GLOBAL: "G", OVERLAP: "+"}


def component_map(pattern: AttentionPattern, max_n: int = 96) -> np.ndarray:
    """Integer component codes per (query, key) cell.

    Banded cells are ``WINDOW`` (dilation 1) or ``DILATED`` (dilation > 1);
    global rows/columns are ``GLOBAL`` and take precedence where they
    overlap a band (matching the hardware: the global PEs own those
    pairs).  Requires a structured pattern.
    """
    if pattern.n > max_n:
        raise PatternError(f"sequence length {pattern.n} > render limit {max_n}")
    bands = pattern.bands()
    if bands is None:
        raise PatternError("pattern is unstructured; no component information")
    n = pattern.n
    grid = np.full((n, n), EMPTY, dtype=np.int8)
    for band in bands:
        code = WINDOW if band.dilation == 1 else DILATED
        for i in range(n):
            keys = band.keys_for(i, n)
            existing = grid[i, keys]
            grid[i, keys] = np.where(
                (existing != EMPTY) & (existing != code), OVERLAP, code
            )
    toks = list(pattern.global_tokens())
    if toks:
        grid[toks, :] = GLOBAL
        grid[:, toks] = GLOBAL
    return grid


def render_components(pattern: AttentionPattern, max_n: int = 96) -> str:
    """ASCII rendering with one glyph per component (see legend)."""
    grid = component_map(pattern, max_n=max_n)
    return "\n".join("".join(_GLYPHS[int(c)] for c in row) for row in grid)


def component_legend() -> str:
    """Explain the glyphs used by :func:`render_components`."""
    return (
        "· none   w sliding window   d dilated window   "
        "G global row/column   + band overlap"
    )
