"""Global attention (Section 2.3).

A small set of pre-selected *global tokens* attends to the whole sequence
and is attended by the whole sequence: if ``g`` is global, row ``g`` and
column ``g`` of the attention mask are fully populated.  The choice of
global tokens is task-specific (e.g. Longformer uses the ``[CLS]`` token for
classification).  On SALO, global rows/columns are computed by the global PE
row and global PE column, reusing the q/k/v streams of the PE array.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import AttentionPattern, Band, PatternError

__all__ = ["GlobalAttentionPattern"]


class GlobalAttentionPattern(AttentionPattern):
    """Pure global attention for a set of global token indices."""

    def __init__(self, n: int, tokens: Sequence[int]) -> None:
        super().__init__(n)
        toks = sorted(set(int(t) for t in tokens))
        for t in toks:
            if not 0 <= t < n:
                raise PatternError(f"global token {t} out of range [0, {n})")
        self._tokens: Tuple[int, ...] = tuple(toks)

    @property
    def tokens(self) -> Tuple[int, ...]:
        return self._tokens

    def global_tokens(self) -> Tuple[int, ...]:
        return self._tokens

    def row_keys(self, i: int) -> np.ndarray:
        self._check_row(i)
        if i in self._tokens:
            return np.arange(self._n, dtype=np.int64)
        return np.asarray(self._tokens, dtype=np.int64)

    def row_count(self, i: int) -> int:
        self._check_row(i)
        if i in self._tokens:
            return self._n
        return len(self._tokens)

    def nnz(self) -> int:
        g = len(self._tokens)
        # g full rows + g full columns, minus the doubly counted g x g block.
        return g * self._n + g * (self._n - g)

    def bands(self) -> Optional[List[Band]]:
        # Global attention has no banded structure of its own.
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GlobalAttentionPattern(n={self._n}, tokens={list(self._tokens)})"
