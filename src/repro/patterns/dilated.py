"""Dilated window attention (Section 2.3, grey pattern in Figure 2c).

An extension of sliding window attention with a dilation ``d`` — the size of
the gap inside the window.  Query ``q_i`` attends keys ``k_j`` with
``j - i`` in ``{a, a + d, ..., b}``.  Key reuse now exists between queries
``q_i`` and ``q_{i+d}``; SALO's data scheduler *reorders* queries with the
same residue modulo ``d`` into contiguous groups, turning the dilated window
into an ordinary sliding window the PE array supports directly (Section
4.2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import AttentionPattern, Band, PatternError

__all__ = ["DilatedWindowPattern"]


class DilatedWindowPattern(AttentionPattern):
    """Dilated window with relative offsets ``{a, a + d, ..., b}``."""

    def __init__(self, n: int, a: int, b: int, dilation: int) -> None:
        super().__init__(n)
        if dilation < 1:
            raise PatternError(f"dilation must be >= 1, got {dilation}")
        if b < a:
            raise PatternError(f"window requires b >= a, got [{a}, {b}]")
        if (b - a) % dilation != 0:
            raise PatternError(
                f"offset span {b - a} must be a multiple of dilation {dilation}"
            )
        self.a = int(a)
        self.b = int(b)
        self.dilation = int(dilation)

    @classmethod
    def symmetric(cls, n: int, window: int, dilation: int) -> "DilatedWindowPattern":
        """Symmetric dilated window touching ``window`` keys spaced ``dilation`` apart."""
        if window < 1:
            raise PatternError(f"window size must be >= 1, got {window}")
        half = window // 2
        return cls(n, -half * dilation, (window - 1 - half) * dilation, dilation)

    @property
    def window_size(self) -> int:
        """Number of keys in the (unclipped) window."""
        return (self.b - self.a) // self.dilation + 1

    def row_keys(self, i: int) -> np.ndarray:
        self._check_row(i)
        keys = i + np.arange(self.a, self.b + 1, self.dilation, dtype=np.int64)
        return keys[(keys >= 0) & (keys < self._n)]

    def row_count(self, i: int) -> int:
        self._check_row(i)
        return Band(self.a, self.b, self.dilation).count_for(i, self._n)

    def bands(self) -> Optional[List[Band]]:
        return [Band(self.a, self.b, self.dilation)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DilatedWindowPattern(n={self._n}, a={self.a}, b={self.b}, "
            f"dilation={self.dilation})"
        )
