"""Sparse attention pattern representations (paper Section 2.3).

The pattern subpackage provides the intermediate representation consumed by
the data scheduler: structured patterns expose relative-offset *bands* and
*global tokens*, while :class:`ExplicitMaskPattern` covers unstructured
masks for reference computation.
"""

from .base import AttentionPattern, Band, PatternError
from .dilated import DilatedWindowPattern
from .global_attn import GlobalAttentionPattern
from .hybrid import HybridSparsePattern
from .library import (
    dilated_longformer_pattern,
    longformer_pattern,
    sparse_transformer_pattern,
    star_transformer_pattern,
    vil_pattern,
)
from .mask_ops import (
    ExplicitMaskPattern,
    band_mask,
    coverage,
    global_mask,
    infer_global_tokens,
    intersection,
    mask_sparsity,
    render_ascii,
    union,
)
from .visualize import component_legend, component_map, render_components
from .twod import Local2DPattern, flatten_2d_window, grid_neighbourhood
from .window import SlidingWindowPattern

__all__ = [
    "AttentionPattern",
    "Band",
    "PatternError",
    "SlidingWindowPattern",
    "DilatedWindowPattern",
    "GlobalAttentionPattern",
    "HybridSparsePattern",
    "Local2DPattern",
    "ExplicitMaskPattern",
    "flatten_2d_window",
    "grid_neighbourhood",
    "longformer_pattern",
    "dilated_longformer_pattern",
    "vil_pattern",
    "star_transformer_pattern",
    "sparse_transformer_pattern",
    "union",
    "intersection",
    "mask_sparsity",
    "coverage",
    "band_mask",
    "global_mask",
    "infer_global_tokens",
    "render_ascii",
    "component_map",
    "render_components",
    "component_legend",
]
