"""Pattern library: the published sparse attention mechanisms of Figure 2.

Factory functions build the hybrid patterns of Longformer, ViL (Multi-scale
Vision Longformer), Star-Transformer and Sparse-Transformer with the
conventions used in the paper's evaluation (Table 2).
"""

from __future__ import annotations

from typing import Sequence

from .base import Band, PatternError
from .dilated import DilatedWindowPattern
from .hybrid import HybridSparsePattern
from .twod import Local2DPattern

__all__ = [
    "longformer_pattern",
    "vil_pattern",
    "star_transformer_pattern",
    "sparse_transformer_pattern",
    "dilated_longformer_pattern",
]


def longformer_pattern(
    n: int, window: int, global_tokens: Sequence[int] = (0,)
) -> HybridSparsePattern:
    """Longformer: symmetric sliding window + task-specific global tokens.

    With ``n = 4096``, ``window = 512`` and a single global token this gives
    sparsity ≈ 0.125, the Longformer row of Table 2.
    """
    if window < 1 or window > n:
        raise PatternError(f"window {window} out of range [1, {n}]")
    half = window // 2
    band = Band(-half, window - 1 - half, 1)
    return HybridSparsePattern(n, [band], global_tokens)


def dilated_longformer_pattern(
    n: int, window: int, dilation: int, global_tokens: Sequence[int] = (0,)
) -> HybridSparsePattern:
    """Longformer's dilated sliding-window variant.

    ``window`` keys spaced ``dilation`` apart; used by Longformer's upper
    layers to enlarge the receptive field without more compute.
    """
    if window < 1:
        raise PatternError(f"window {window} must be >= 1")
    half = window // 2
    band = Band(-half * dilation, (window - 1 - half) * dilation, dilation)
    return HybridSparsePattern(n, [band], global_tokens)


def vil_pattern(
    grid_h: int,
    grid_w: int,
    window: int = 15,
    global_tokens: Sequence[int] = (0,),
) -> Local2DPattern:
    """ViL: 2-D local window over an image patch grid + global token(s).

    ``vil_pattern(56, 56)`` and ``vil_pattern(28, 28)`` are the ViL-stage1 /
    ViL-stage2 rows of Table 2 (sparsity ≈ 0.072 and ≈ 0.288).
    """
    return Local2DPattern(grid_h, grid_w, window, window, global_tokens)


def star_transformer_pattern(n: int, ring_window: int = 3) -> HybridSparsePattern:
    """Star-Transformer: ring (local window) + a relay hub token.

    Every satellite token attends a small local neighbourhood; a single
    relay token (index 0 here) is globally connected (Figure 2b).
    """
    if ring_window < 1:
        raise PatternError(f"ring window {ring_window} must be >= 1")
    half = ring_window // 2
    band = Band(-half, ring_window - 1 - half, 1)
    return HybridSparsePattern(n, [band], global_tokens=(0,))


def sparse_transformer_pattern(
    n: int, block: int, causal: bool = False
) -> HybridSparsePattern:
    """Sparse-Transformer (strided): local window + dilated column band.

    Child et al.'s strided pattern: each query attends its local block of
    ``block`` previous positions and a dilated band with stride ``block``
    reaching across the sequence (Figure 2c flattens the same structure).
    The dilated band spans ``n // block`` keys so it reaches the whole
    sequence regardless of position.
    """
    if block < 1 or block > n:
        raise PatternError(f"block {block} out of range [1, {n}]")
    local = Band(-(block - 1), 0, 1) if causal else Band(-(block // 2), block - 1 - block // 2, 1)
    reach = max(1, n // block)
    bands = [local]
    # Strided bands stay clear of the offsets the local band already
    # covers (the scheduler requires overlap-free bands).
    if causal:
        if reach >= 2:
            bands.append(Band(-(reach - 1) * block, -block, block))
    else:
        back = reach // 2
        fwd = reach - 1 - back
        if back >= 1:
            bands.append(Band(-back * block, -block, block))
        if fwd >= 1:
            bands.append(Band(block, fwd * block, block))
    return HybridSparsePattern(n, bands)
