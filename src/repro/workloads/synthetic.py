"""Seeded synthetic Q/K/V generators.

The paper evaluates latency on real model weights, but attention latency
is data-independent (the pattern is static), so synthetic inputs suffice
for performance work.  For *numerical* work (quantisation studies) the
generators produce activations with realistic statistics: unit-variance
Gaussians give post-scaling scores distributed ~N(0, 1), which sit well
inside the PWL exponential's input range, mirroring a calibrated
deployment.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .configs import AttentionWorkload

__all__ = ["qkv_for", "random_qkv", "correlated_qkv"]


def random_qkv(
    n: int,
    hidden: int,
    seed: int = 0,
    std: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Independent Gaussian Q, K, V of shape ``(n, hidden)``."""
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((n, hidden)) * std
    k = rng.standard_normal((n, hidden)) * std
    v = rng.standard_normal((n, hidden)) * std
    return q, k, v


def correlated_qkv(
    n: int,
    hidden: int,
    seed: int = 0,
    correlation: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Q/K/V derived from a shared token embedding, as in a real layer.

    Real projections of the same token stream are correlated, which makes
    attention distributions peaky (large positive scores on matching
    pairs) — the stressful case for the PWL exponential's clamp range.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((n, hidden))
    mix = np.sqrt(1.0 - correlation**2)
    q = correlation * base + mix * rng.standard_normal((n, hidden))
    k = correlation * base + mix * rng.standard_normal((n, hidden))
    v = correlation * base + mix * rng.standard_normal((n, hidden))
    return q, k, v


def qkv_for(
    workload: AttentionWorkload, seed: int = 0, correlated: bool = False
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic inputs matching a workload's shape."""
    if correlated:
        return correlated_qkv(workload.n, workload.hidden, seed=seed)
    return random_qkv(workload.n, workload.hidden, seed=seed)
