"""Evaluation workloads (Table 2, Section 2.1)."""

from .configs import (
    LONGFORMER_BASE_4096,
    PAPER_WORKLOADS,
    VIL_STAGE1,
    VIL_STAGE2,
    AttentionWorkload,
    bert_base_workload,
    longformer_workload,
    vil_workload,
)
from .synthetic import correlated_qkv, qkv_for, random_qkv

__all__ = [
    "AttentionWorkload",
    "LONGFORMER_BASE_4096",
    "VIL_STAGE1",
    "VIL_STAGE2",
    "PAPER_WORKLOADS",
    "bert_base_workload",
    "longformer_workload",
    "vil_workload",
    "qkv_for",
    "random_qkv",
    "correlated_qkv",
]
