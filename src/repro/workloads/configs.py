"""Workload definitions of the paper's evaluation (Table 2 + Section 2.1).

Table 2 parameters:

============  ========  ========  ======  ======  ========
Workload      Seq len   Window    Hidden  Global  Sparsity
============  ========  ========  ======  ======  ========
Longformer    4096      512       768     1       0.125
ViL-stage1    56 x 56   15 x 15   192     1       0.072
ViL-stage2    28 x 28   15 x 15   384     1       0.288
============  ========  ========  ======  ======  ========

All attention layers use 64-dimensional heads (Longformer-Base has 12
heads; ViL-Medium-Wide stages 1/2 have 3/6).  BERT-base (Section 2.1's
motivation) is included for the quadratic-latency experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..patterns.base import AttentionPattern
from ..patterns.library import longformer_pattern, vil_pattern
from ..patterns.window import SlidingWindowPattern

__all__ = [
    "AttentionWorkload",
    "LONGFORMER_BASE_4096",
    "VIL_STAGE1",
    "VIL_STAGE2",
    "PAPER_WORKLOADS",
    "bert_base_workload",
    "longformer_workload",
    "vil_workload",
]


@dataclass(frozen=True)
class AttentionWorkload:
    """One attention layer workload: a pattern plus layer hyperparameters."""

    name: str
    n: int
    hidden: int
    heads: int
    window: int
    num_global: int
    kind: str  # 'longformer' | 'vil' | 'dense'
    grid: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.hidden % self.heads != 0:
            raise ValueError(f"hidden {self.hidden} not divisible by heads {self.heads}")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    def pattern(self) -> AttentionPattern:
        """Build the sparse attention pattern of this workload."""
        if self.kind == "longformer":
            return longformer_pattern(self.n, self.window, tuple(range(self.num_global)))
        if self.kind == "vil":
            assert self.grid is not None
            side = int(round(self.window ** 0.5))
            return vil_pattern(
                self.grid[0], self.grid[1], side, tuple(range(self.num_global))
            )
        if self.kind == "dense":
            return SlidingWindowPattern(self.n, -(self.n - 1), self.n - 1)
        raise ValueError(f"unknown workload kind {self.kind!r}")

    def sparsity(self) -> float:
        return self.pattern().sparsity()

    def dense_flops(self) -> int:
        """MAC count of the dense (unsparsified) attention layer."""
        return 2 * 2 * self.n * self.n * self.hidden


LONGFORMER_BASE_4096 = AttentionWorkload(
    name="Longformer",
    n=4096,
    hidden=768,
    heads=12,
    window=512,
    num_global=1,
    kind="longformer",
)

VIL_STAGE1 = AttentionWorkload(
    name="ViL-stage1",
    n=56 * 56,
    hidden=192,
    heads=3,
    window=15 * 15,
    num_global=1,
    kind="vil",
    grid=(56, 56),
)

VIL_STAGE2 = AttentionWorkload(
    name="ViL-stage2",
    n=28 * 28,
    hidden=384,
    heads=6,
    window=15 * 15,
    num_global=1,
    kind="vil",
    grid=(28, 28),
)

#: The three attention layers of Figure 7 in paper order.
PAPER_WORKLOADS: Dict[str, AttentionWorkload] = {
    w.name: w for w in (LONGFORMER_BASE_4096, VIL_STAGE1, VIL_STAGE2)
}


def bert_base_workload(n: int) -> AttentionWorkload:
    """BERT-base dense attention layer at sequence length ``n`` (Section 2.1)."""
    return AttentionWorkload(
        name=f"BERT-base-{n}",
        n=n,
        hidden=768,
        heads=12,
        window=n,
        num_global=0,
        kind="dense",
    )


def longformer_workload(
    n: int, window: int = 512, hidden: int = 768, heads: int = 12, num_global: int = 1
) -> AttentionWorkload:
    """Longformer attention layer with custom sequence length/window."""
    return AttentionWorkload(
        name=f"Longformer-{n}",
        n=n,
        hidden=hidden,
        heads=heads,
        window=window,
        num_global=num_global,
        kind="longformer",
    )


def vil_workload(
    grid_h: int, grid_w: int, window_side: int = 15, hidden: int = 192, heads: int = 3
) -> AttentionWorkload:
    """ViL-style 2-D attention layer on a custom patch grid."""
    return AttentionWorkload(
        name=f"ViL-{grid_h}x{grid_w}",
        n=grid_h * grid_w,
        hidden=hidden,
        heads=heads,
        window=window_side * window_side,
        num_global=1,
        kind="vil",
        grid=(grid_h, grid_w),
    )
