"""Dense (vanilla) attention reference implementation (paper Section 2.1).

Float64/float32 numpy reference of the standard scaled-dot-product
attention: :math:`S = QK^T / \\sqrt{d}`, row softmax, :math:`O = S'V`.
Used as the numerical ground truth for every other engine in the repo.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["softmax", "dense_attention", "multi_head_dense_attention"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def dense_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Single-head attention output for ``(n, d)`` inputs.

    Parameters
    ----------
    q, k, v:
        Arrays of shape ``(n, d)`` (``v`` may have a different feature
        dimension ``dv``).
    scale:
        Score scaling; defaults to ``1 / sqrt(d)`` as in the paper.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if q.ndim != 2 or k.ndim != 2 or v.ndim != 2:
        raise ValueError("q, k, v must be 2-D (n, d)")
    if q.shape[1] != k.shape[1]:
        raise ValueError(f"q/k feature mismatch: {q.shape[1]} vs {k.shape[1]}")
    if k.shape[0] != v.shape[0]:
        raise ValueError(f"k/v length mismatch: {k.shape[0]} vs {v.shape[0]}")
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[1])
    s = (q @ k.T) * scale
    return softmax(s, axis=-1) @ v


def multi_head_dense_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    heads: int,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Multi-head attention for ``(n, h*d)`` inputs, concatenated output.

    The hidden dimension is split evenly across ``heads``; each head runs
    :func:`dense_attention` independently and outputs are concatenated,
    matching Figure 1 of the paper (without the output projection, which
    belongs to the enclosing transformer layer).
    """
    q = np.asarray(q, dtype=np.float64)
    if q.shape[1] % heads != 0:
        raise ValueError(f"hidden size {q.shape[1]} not divisible by heads {heads}")
    d = q.shape[1] // heads
    outs = []
    for h in range(heads):
        sl = slice(h * d, (h + 1) * d)
        outs.append(dense_attention(q[:, sl], k[:, sl], v[:, sl], scale=scale))
    return np.concatenate(outs, axis=1)
