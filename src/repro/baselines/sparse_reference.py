"""Masked sparse attention reference.

Computes attention restricted to an arbitrary :class:`AttentionPattern` by
masking scores to :math:`-\\infty` before the softmax.  Quadratic in ``n``
(it materialises the dense score matrix) but exact — this is the oracle the
SALO engines are validated against.

Also provides a row-streaming variant that never materialises the dense
matrix, used to validate long-sequence runs where the quadratic oracle is
too slow, and an *online softmax* implementation demonstrating the
split-window renormalisation of Eq. 2 / Appendix A in pure software.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..patterns.base import AttentionPattern

__all__ = [
    "masked_attention",
    "sparse_attention_rowwise",
    "online_softmax_merge",
    "split_window_attention",
]


def masked_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    pattern: AttentionPattern,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Exact sparse attention via dense masking (oracle; O(n^2) memory)."""
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    n = q.shape[0]
    if pattern.n != n:
        raise ValueError(f"pattern length {pattern.n} != sequence length {n}")
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[1])
    s = (q @ k.T) * scale
    mask = pattern.mask()
    s = np.where(mask, s, -np.inf)
    s -= np.max(s, axis=1, keepdims=True)
    e = np.exp(s)
    e = np.where(mask, e, 0.0)
    denom = e.sum(axis=1, keepdims=True)
    if np.any(denom == 0):
        raise ValueError("pattern leaves some query with no attended key")
    return (e / denom) @ v


def sparse_attention_rowwise(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    pattern: AttentionPattern,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Exact sparse attention computed row by row (O(n·w) memory)."""
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    n, d = q.shape
    if pattern.n != n:
        raise ValueError(f"pattern length {pattern.n} != sequence length {n}")
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    out = np.empty((n, v.shape[1]), dtype=np.float64)
    for i in range(n):
        keys = pattern.row_keys(i)
        if len(keys) == 0:
            raise ValueError(f"query {i} attends to no keys")
        s = (k[keys] @ q[i]) * scale
        s -= s.max()
        e = np.exp(s)
        out[i] = (e @ v[keys]) / e.sum()
    return out


def online_softmax_merge(
    out1: np.ndarray,
    w1: np.ndarray,
    out2: np.ndarray,
    w2: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two partial softmax-weighted outputs (paper Eq. 2).

    ``out_k`` are the normalised partial outputs over token subsets
    ``T_k`` and ``w_k = sum_{j in T_k} exp(S_ij)`` their exponential-sum
    weights.  Returns the merged output and the combined weight
    ``w1 + w2`` so that merges can be chained over any number of window
    splits (Appendix A generalises Eq. 2 to K parts by induction).
    """
    w1 = np.asarray(w1, dtype=np.float64)
    w2 = np.asarray(w2, dtype=np.float64)
    total = w1 + w2
    if np.any(total <= 0):
        raise ValueError("merge weights must be positive")
    a1 = (w1 / total)[..., None]
    a2 = (w2 / total)[..., None]
    return a1 * np.asarray(out1) + a2 * np.asarray(out2), total


def split_window_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    pattern: AttentionPattern,
    split: int,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Sparse attention computed in window splits merged via Eq. 2.

    Splits every query's key list into chunks of ``split`` keys, computes a
    locally-normalised partial attention per chunk, and merges the chunks
    with :func:`online_softmax_merge`.  Software model of the weighted-sum
    module + window splitting pipeline; must agree with
    :func:`sparse_attention_rowwise` to float precision.
    """
    if split < 1:
        raise ValueError(f"split must be >= 1, got {split}")
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    n, d = q.shape
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    out = np.empty((n, v.shape[1]), dtype=np.float64)
    for i in range(n):
        keys = pattern.row_keys(i)
        if len(keys) == 0:
            raise ValueError(f"query {i} attends to no keys")
        acc_out: Optional[np.ndarray] = None
        acc_w = np.zeros(())
        for start in range(0, len(keys), split):
            part = keys[start : start + split]
            s = (k[part] @ q[i]) * scale
            e = np.exp(s)
            w = e.sum()
            part_out = (e @ v[part]) / w
            if acc_out is None:
                acc_out, acc_w = part_out, w
            else:
                acc_out, acc_w = online_softmax_merge(acc_out, acc_w, part_out, w)
        out[i] = acc_out
    return out
