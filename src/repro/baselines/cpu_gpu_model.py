"""Calibrated CPU/GPU latency and power models (evaluation baselines).

The paper measures attention layers on an Intel Xeon E5-2630 v3 and a GTX
1080Ti under PyTorch 1.5 (MKL / cuDNN backends).  Offline we model both
devices with roofline-style formulas whose constants are calibrated to the
paper's published numbers:

* **GPU dense attention** is anchored to the Section 2.1 BERT-base
  measurements (9.20 ms at n=2048, 145.70 ms at n=8192 — both within 2 %
  of a single effective-throughput fit, confirming the compute-bound
  quadratic regime the paper describes).
* **Sliding-window (Longformer) and ViL attention** have no published
  absolute latencies, only speedups over SALO; the constants below are
  back-derived from those speedups against our SALO timing model at the
  Table 2 operating points, then extrapolated by the structural formulas
  (chunk-overlap FLOPs for Longformer's Huggingface implementation,
  GEMM + fixed per-layer overhead for ViL).  EXPERIMENTS.md documents the
  derivation; tests pin the anchors.
* **Power** likewise is back-derived from the published energy-saving
  ratios (Figure 7b): active-power-above-idle per workload class.  The
  derived magnitudes (~2–3 W CPU, ~10–50 W GPU) reflect per-kernel energy
  attribution rather than TDP, consistent with the paper's modest energy
  ratios relative to its speedups.

The sliding-window workloads run *without* sparse-kernel support on both
devices — the paper's central observation is that "the hybrid sparse
attention mechanism is not directly supported by the highly optimized
GEMM kernels", so the baselines pay chunking/masking overheads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..workloads.configs import AttentionWorkload

__all__ = ["BaselineEstimate", "DeviceModel", "GPU_1080TI", "CPU_XEON_E5_2630V3"]


@dataclass(frozen=True)
class BaselineEstimate:
    """Latency + average active power for one attention layer."""

    latency_s: float
    power_w: float

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def energy_j(self) -> float:
        return self.latency_s * self.power_w


@dataclass(frozen=True)
class DeviceModel:
    """Roofline-style device model with per-workload-class calibration.

    Attributes
    ----------
    dense_tflops:
        Effective throughput of dense attention (large GEMMs + softmax).
    longformer_tflops:
        Effective throughput of the Huggingface chunked sliding-window
        implementation (includes gather/copy overheads).
    longformer_chunk_overhead:
        FLOP multiplier of the chunked algorithm (overlapping 2w-wide
        chunks compute ~2x the nominal window FLOPs).
    vil_tflops, vil_overhead_s:
        ViL's windowed attention: GEMM-like term plus a fixed per-layer
        overhead (masking, reshapes, many small kernels).
    *_power_w, power_base_w, power_per_flops:
        Active-power calibration per workload class (see module docstring).
    """

    name: str
    dense_tflops: float
    longformer_tflops: float
    longformer_chunk_overhead: float
    vil_tflops: float
    vil_overhead_s: float
    dense_power_w: float
    longformer_power_w: float
    vil_power_base_w: float
    vil_power_per_flops: float

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def dense_attention_latency_s(self, n: int, hidden: int) -> float:
        """One dense attention layer (both matmuls, all heads)."""
        flops = 4.0 * n * n * hidden
        return flops / (self.dense_tflops * 1e12)

    def longformer_latency_s(self, n: int, window: int, hidden: int) -> float:
        """Huggingface-style chunked sliding-window attention."""
        flops = 4.0 * n * window * hidden * self.longformer_chunk_overhead
        return flops / (self.longformer_tflops * 1e12)

    def vil_latency_s(self, n: int, hidden: int) -> float:
        """ViL windowed attention (masked-dense GEMM + fixed overhead)."""
        flops = 4.0 * n * n * hidden
        return flops / (self.vil_tflops * 1e12) + self.vil_overhead_s

    # ------------------------------------------------------------------
    def estimate(self, workload: AttentionWorkload) -> BaselineEstimate:
        """Latency and power for one of the evaluation workloads."""
        if workload.kind == "dense":
            t = self.dense_attention_latency_s(workload.n, workload.hidden)
            return BaselineEstimate(t, self.dense_power_w)
        if workload.kind == "longformer":
            t = self.longformer_latency_s(workload.n, workload.window, workload.hidden)
            return BaselineEstimate(t, self.longformer_power_w)
        if workload.kind == "vil":
            t = self.vil_latency_s(workload.n, workload.hidden)
            rate = 4.0 * workload.n * workload.n * workload.hidden / t
            power = self.vil_power_base_w + self.vil_power_per_flops * rate
            return BaselineEstimate(t, power)
        raise ValueError(f"unknown workload kind {workload.kind!r}")


#: GTX 1080Ti (cuDNN, PyTorch 1.5).  Dense throughput fits both Section 2.1
#: anchors; sparse-class constants are back-derived at the Table 2 points.
GPU_1080TI = DeviceModel(
    name="GTX 1080Ti",
    dense_tflops=1.41,
    longformer_tflops=0.2777,
    longformer_chunk_overhead=2.0,
    vil_tflops=1.516,
    vil_overhead_s=6.238e-3,
    dense_power_w=90.0,
    longformer_power_w=51.6,
    vil_power_base_w=6.88,
    vil_power_per_flops=1.976e-11,
)

#: Intel Xeon E5-2630 v3 (MKL, PyTorch 1.5).
CPU_XEON_E5_2630V3 = DeviceModel(
    name="Xeon E5-2630 v3",
    dense_tflops=0.150,
    longformer_tflops=0.024523,
    longformer_chunk_overhead=2.0,
    vil_tflops=0.34529,
    vil_overhead_s=24.52e-3,
    dense_power_w=25.0,
    longformer_power_w=2.669,
    vil_power_base_w=1.702,
    vil_power_per_flops=9.534e-12,
)
