"""Reference implementations and baseline performance models."""

from .dense_attention import dense_attention, multi_head_dense_attention, softmax
from .sparse_reference import (
    masked_attention,
    online_softmax_merge,
    sparse_attention_rowwise,
    split_window_attention,
)

__all__ = [
    "softmax",
    "dense_attention",
    "multi_head_dense_attention",
    "masked_attention",
    "sparse_attention_rowwise",
    "online_softmax_merge",
    "split_window_attention",
]
