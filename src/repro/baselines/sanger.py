"""Performance model of Sanger (MICRO 2021) for the Section 6.3 comparison.

Sanger accelerates *dynamic* sparse attention: a low-precision quadratic
prediction pass first computes an approximate score matrix to derive a
mask, then a reconfigurable systolic array computes the surviving entries.
The paper's comparison (Section 6.3) highlights two structural costs that
this model captures:

1. **Prediction overhead** — the mask prediction multiplies the full
   :math:`QK^T` at low precision, a quadratic term *independent of
   sparsity* (4-bit operands packed 4-per-PE-cycle here);
2. **Utilisation** — irregular dynamic sparsity keeps Sanger's PE array
   between 55 % and 75 % busy, versus >75 % for SALO's regular hybrid
   patterns.

With the published 64 x 16 array (1024 PEs, the same count as SALO's
32 x 32) and equal frequency, SALO comes out ~1.33x faster at equal
sparsity — the number the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..workloads.configs import AttentionWorkload

__all__ = ["SangerModel", "SangerEstimate"]


@dataclass(frozen=True)
class SangerEstimate:
    """Cycle breakdown of one attention layer on Sanger."""

    prediction_cycles: int
    compute_cycles: int
    utilization: float
    frequency_hz: float

    @property
    def cycles(self) -> int:
        return self.prediction_cycles + self.compute_cycles

    @property
    def latency_s(self) -> float:
        return self.cycles / self.frequency_hz


@dataclass(frozen=True)
class SangerModel:
    """Analytic Sanger performance model.

    Defaults follow the published configuration: 64 x 16 PEs at 1 GHz,
    4-bit prediction packing, and utilisation varying linearly from 55 %
    at sparsity 0.05 to 75 % at sparsity 0.30 (the range the paper
    quotes).
    """

    pe_rows: int = 64
    pe_cols: int = 16
    frequency_hz: float = 1.0e9
    prediction_packing: int = 4
    utilization_lo: float = 0.55
    utilization_hi: float = 0.75
    sparsity_lo: float = 0.05
    sparsity_hi: float = 0.30

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    def utilization(self, sparsity: float) -> float:
        """PE utilisation at a given attention-matrix density."""
        if sparsity <= self.sparsity_lo:
            return self.utilization_lo
        if sparsity >= self.sparsity_hi:
            return self.utilization_hi
        frac = (sparsity - self.sparsity_lo) / (self.sparsity_hi - self.sparsity_lo)
        return self.utilization_lo + frac * (self.utilization_hi - self.utilization_lo)

    # ------------------------------------------------------------------
    def estimate(
        self, n: int, nnz: int, heads: int, head_dim: int, sparsity: float
    ) -> SangerEstimate:
        """Latency of one attention layer (all heads).

        ``nnz`` is the number of surviving score entries per head — for
        the comparison we grant Sanger the same sparsity SALO exploits.
        """
        pred_macs = n * n * head_dim  # low-precision QK^T per head
        pred_cycles = -(-pred_macs // (self.num_pes * self.prediction_packing))
        util = self.utilization(sparsity)
        compute_macs = 2 * nnz * head_dim
        compute_cycles = int(round(compute_macs / (self.num_pes * util)))
        return SangerEstimate(
            prediction_cycles=pred_cycles * heads,
            compute_cycles=compute_cycles * heads,
            utilization=util,
            frequency_hz=self.frequency_hz,
        )

    def estimate_workload(self, workload: AttentionWorkload) -> SangerEstimate:
        pattern = workload.pattern()
        return self.estimate(
            n=workload.n,
            nnz=pattern.nnz(),
            heads=workload.heads,
            head_dim=workload.head_dim,
            sparsity=pattern.sparsity(),
        )

    def peak_macs_per_cycle(self) -> int:
        """Peak throughput — equal to SALO's 1024 MACs/cycle by design."""
        return self.num_pes
