"""Admission policies: unit behaviour + the simulator's arrival gate."""

import math

import numpy as np
import pytest

from repro.cluster import (
    AdmissionContext,
    AdmitAll,
    ClusterSimulator,
    CostModelClock,
    EstimatedWaitCap,
    GreedyFIFOPolicy,
    OpenLoopSource,
    QueueDepthCap,
    SimConfig,
    TokenBucketAdmission,
    make_admission,
    queue_drain_estimate,
)
from repro.core.config import HardwareConfig
from repro.core.salo import SALO
from repro.patterns.library import longformer_pattern
from repro.serving import AttentionRequest


def _request(rid, arrival=0.0, deadline=None, slo="default", n=32):
    pattern = longformer_pattern(n, 6, (0,))
    data = np.zeros((n, 8))
    return AttentionRequest(
        request_id=rid, pattern=pattern, q=data, k=data, v=data, heads=2,
        arrival_s=arrival, deadline_s=deadline, slo_class=slo,
    )


def _ctx(now=0.0, depth=0, wait=0.0, service=1e-5):
    return AdmissionContext(now=now, depth=depth, estimator=lambda: (wait, service))


class TestAdmitAll:
    def test_always_admits(self):
        policy = AdmitAll()
        assert policy.admit(_request(0), _ctx(depth=10**6))


class TestQueueDepthCap:
    def test_admits_below_cap_rejects_at_cap(self):
        policy = QueueDepthCap(max_depth=2)
        assert policy.admit(_request(0), _ctx(depth=0))
        assert policy.admit(_request(1), _ctx(depth=1))
        assert not policy.admit(_request(2), _ctx(depth=2))

    def test_never_reads_the_estimate(self):
        def bomb():  # pragma: no cover - must never run
            raise AssertionError("depth cap evaluated the cost model")

        ctx = AdmissionContext(now=0.0, depth=1, estimator=bomb)
        assert QueueDepthCap(max_depth=2).admit(_request(0), ctx)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueDepthCap(max_depth=0)


class TestEstimatedWaitCap:
    def test_rejects_doomed_at_arrival(self):
        policy = EstimatedWaitCap(slack=1.0)
        doomed = _request(0, deadline=1e-4)
        assert not policy.admit(doomed, _ctx(wait=2e-4, service=1e-5))
        assert policy.admit(doomed, _ctx(wait=1e-5, service=1e-5))

    def test_slack_scales_the_budget(self):
        request = _request(0, deadline=1e-3)
        ctx = lambda: _ctx(wait=6e-4, service=1e-5)
        assert EstimatedWaitCap(slack=1.0).admit(request, ctx())
        assert not EstimatedWaitCap(slack=0.5).admit(request, ctx())

    def test_deadline_free_bounded_only_by_max_wait(self):
        free = _request(0)
        assert EstimatedWaitCap(slack=1.0).admit(free, _ctx(wait=1e9))
        capped = EstimatedWaitCap(slack=1.0, max_wait_s=1e-3)
        assert not capped.admit(free, _ctx(wait=2e-3))
        assert capped.admit(free, _ctx(wait=5e-4))

    def test_validation(self):
        with pytest.raises(ValueError):
            EstimatedWaitCap(slack=0.0)
        with pytest.raises(ValueError):
            EstimatedWaitCap(max_wait_s=-1.0)
        with pytest.raises(ValueError):
            EstimatedWaitCap(slack=float("nan"))
        with pytest.raises(ValueError):
            EstimatedWaitCap(max_wait_s=float("nan"))


class TestTokenBucket:
    def test_burst_then_reject_then_refill(self):
        policy = TokenBucketAdmission(rates={"gold": 10.0}, burst=2.0)
        r = lambda i: _request(i, slo="gold")
        assert policy.admit(r(0), _ctx(now=0.0))
        assert policy.admit(r(1), _ctx(now=0.0))
        assert not policy.admit(r(2), _ctx(now=0.0))  # burst spent
        # 0.1 s at 10 req/s refills one token.
        assert policy.admit(r(3), _ctx(now=0.1))
        assert not policy.admit(r(4), _ctx(now=0.1))

    def test_classes_are_isolated(self):
        policy = TokenBucketAdmission(rates={"gold": 1.0}, burst=1.0)
        assert policy.admit(_request(0, slo="gold"), _ctx(now=0.0))
        assert not policy.admit(_request(1, slo="gold"), _ctx(now=0.0))
        # A class without a contracted rate is not throttled.
        for i in range(5):
            assert policy.admit(_request(10 + i, slo="other"), _ctx(now=0.0))

    def test_default_rate_applies_to_unlisted_classes(self):
        policy = TokenBucketAdmission(default_rate=1.0, burst=1.0)
        assert policy.admit(_request(0, slo="anything"), _ctx(now=0.0))
        assert not policy.admit(_request(1, slo="anything"), _ctx(now=0.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketAdmission(rates={"a": 0.0})
        with pytest.raises(ValueError):
            TokenBucketAdmission(default_rate=-1.0)
        with pytest.raises(ValueError):
            TokenBucketAdmission(burst=0.5)
        with pytest.raises(ValueError):
            TokenBucketAdmission(rates={"a": float("nan")})
        with pytest.raises(ValueError):
            TokenBucketAdmission(default_rate=float("inf"))
        with pytest.raises(ValueError):
            TokenBucketAdmission(burst=float("nan"))


class TestTokenBucketClients:
    """Composite (slo_class, client_id) keys: per-client quotas."""

    def _creq(self, rid, client, slo="bulk", arrival=0.0):
        req = _request(rid, arrival=arrival, slo=slo)
        req.client_id = client
        return req

    def test_composite_key_gives_client_a_dedicated_bucket(self):
        policy = TokenBucketAdmission(rates={("bulk", "t1"): 1.0}, burst=2.0)
        # t1 burns its own 2-token burst...
        assert policy.admit(self._creq(0, "t1"), _ctx(now=0.0))
        assert policy.admit(self._creq(1, "t1"), _ctx(now=0.0))
        assert not policy.admit(self._creq(2, "t1"), _ctx(now=0.0))
        # ...while t2 (no contracted quota) is untouched.
        assert policy.admit(self._creq(3, "t2"), _ctx(now=0.0))

    def test_class_rate_without_per_client_shares_one_bucket(self):
        """Plain class keys keep the pre-composite semantics: one bucket."""
        policy = TokenBucketAdmission(rates={"bulk": 1.0}, burst=2.0)
        assert policy.admit(self._creq(0, "t1"), _ctx(now=0.0))
        assert policy.admit(self._creq(1, "t2"), _ctx(now=0.0))
        # Both clients drained the same shared bucket.
        assert not policy.admit(self._creq(2, "t3"), _ctx(now=0.0))

    def test_per_client_mode_isolates_a_flooding_client(self):
        policy = TokenBucketAdmission(rates={"bulk": 1.0}, burst=1.0, per_client=True)
        assert policy.admit(self._creq(0, "flood"), _ctx(now=0.0))
        for i in range(3):  # the flooder is shed at its own gate
            assert not policy.admit(self._creq(1 + i, "flood"), _ctx(now=0.0))
        # Its neighbour in the same class is admitted at the same instant.
        assert policy.admit(self._creq(9, "polite"), _ctx(now=0.0))

    def test_composite_bucket_refills_on_the_callers_clock(self):
        policy = TokenBucketAdmission(rates={("bulk", "t1"): 10.0}, burst=1.0)
        assert policy.admit(self._creq(0, "t1"), _ctx(now=0.0))
        assert not policy.admit(self._creq(1, "t1"), _ctx(now=0.01))
        assert policy.admit(self._creq(2, "t1"), _ctx(now=0.2))  # 0.2s * 10/s >= 1

    def test_composite_rate_overrides_class_rate(self):
        policy = TokenBucketAdmission(
            rates={"bulk": 100.0, ("bulk", "capped"): 1.0}, burst=1.0
        )
        assert policy.admit(self._creq(0, "capped"), _ctx(now=0.0))
        assert not policy.admit(self._creq(1, "capped"), _ctx(now=0.0))
        # The class-wide bucket is unaffected by the capped client's key.
        assert policy.admit(self._creq(2, "other"), _ctx(now=0.0))

    def test_composite_key_validation(self):
        with pytest.raises(ValueError, match="2-tuples"):
            TokenBucketAdmission(rates={("bulk", "t1", "extra"): 1.0})
        with pytest.raises(ValueError, match="positive"):
            TokenBucketAdmission(rates={("bulk", "t1"): 0.0})
        with pytest.raises(ValueError, match="class name"):
            TokenBucketAdmission(rates={42: 1.0})


class TestContextLaziness:
    def test_estimator_evaluated_at_most_once(self):
        calls = []

        def estimator():
            calls.append(1)
            return (1.0, 2.0)

        ctx = AdmissionContext(now=0.0, depth=0, estimator=estimator)
        assert ctx.estimated_wait_s == 1.0
        assert ctx.estimated_service_s == 2.0
        assert len(calls) == 1


class TestRegistry:
    def test_make_admission(self):
        assert isinstance(make_admission("admit-all"), AdmitAll)
        assert make_admission("queue-depth", max_depth=3).max_depth == 3
        assert make_admission("est-wait", slack=0.5).slack == 0.5
        assert isinstance(make_admission("token-bucket"), TokenBucketAdmission)
        with pytest.raises(KeyError):
            make_admission("bogus")


class TestSimulatorGate:
    """The arrival gate end to end on a tiny deterministic simulation."""

    def _simulate(self, admission, requests):
        config = SimConfig(
            workers=1,
            max_batch_size=2,
            policy=GreedyFIFOPolicy(),
            admission=admission,
            service=CostModelClock(),
            salo_factory=lambda: SALO(HardwareConfig(pe_rows=4, pe_cols=4)),
        )
        sim = ClusterSimulator(config)
        return sim, sim.run(OpenLoopSource(requests))

    def test_rejections_recorded_per_class_and_conserved(self):
        # A burst at t=0: the first request dispatches immediately (depth
        # 0), the rest queue; with a depth cap of 2, later ones bounce.
        requests = [
            _request(i, arrival=i * 1e-7, slo="gold" if i % 2 == 0 else "slow")
            for i in range(8)
        ]
        sim, report = self._simulate(QueueDepthCap(max_depth=2), requests)
        assert report.rejected > 0
        assert report.submitted == 8
        assert report.submitted == report.completed + report.rejected + report.shed
        per_class = {c.name: c for c in report.classes}
        assert sum(c.rejected for c in per_class.values()) == report.rejected
        assert "rejected" in report.render()

    def test_admit_all_is_the_identity(self):
        requests = [_request(i, arrival=i * 1e-7) for i in range(6)]
        _, report = self._simulate(AdmitAll(), requests)
        assert report.rejected == 0 and report.completed == 6


class TestQueueDrainEstimate:
    """The batch-amortisation-aware wait model behind est-wait."""

    UNIT = 1e-4
    OVERHEAD = 5e-5

    def _shallow(self, depth):
        """The retired depth x unit + one-overhead shorthand."""
        return depth * self.UNIT + self.OVERHEAD

    def test_empty_queue_waits_nothing(self):
        # the shallow model charged an overhead no request would wait for
        assert queue_drain_estimate(0, self.UNIT, self.OVERHEAD, 4) == 0.0

    def test_matches_shallow_model_within_one_batch(self):
        for depth in (1, 2, 3, 4):
            drain = queue_drain_estimate(depth, self.UNIT, self.OVERHEAD, 4)
            assert drain == self._shallow(depth)

    def test_strictly_greater_beyond_one_batch(self):
        """Deep backlogs drain in several batches, each charging its
        overhead — the shallow model under-estimated exactly here."""
        for depth in (5, 8, 16, 33):
            drain = queue_drain_estimate(depth, self.UNIT, self.OVERHEAD, 4)
            assert drain > self._shallow(depth)
            expected = depth * self.UNIT + math.ceil(depth / 4) * self.OVERHEAD
            assert drain == expected

    def test_monotone_in_depth(self):
        waits = [queue_drain_estimate(d, self.UNIT, self.OVERHEAD, 4)
                 for d in range(20)]
        assert all(a < b for a, b in zip(waits, waits[1:]))

    def test_batch_cap_is_required(self):
        """An uncapped call silently degenerated to the one-overhead
        shorthand the drain model replaced; it must now be refused."""
        for bad in (None, 0, -3):
            with pytest.raises(ValueError, match="max_batch_size"):
                queue_drain_estimate(40, self.UNIT, self.OVERHEAD, bad)

    def test_monotone_in_depth_for_every_cap(self):
        """Monotonicity must come from the model, not from luck: for any
        batch cap, one more queued request never shortens the wait."""
        for cap in (1, 2, 3, 4, 7, 8, 64):
            waits = [
                queue_drain_estimate(d, self.UNIT, self.OVERHEAD, cap)
                for d in range(50)
            ]
            assert all(a < b for a, b in zip(waits, waits[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            queue_drain_estimate(-1, self.UNIT, self.OVERHEAD, 4)

    def test_rejects_doomed_request_the_shallow_model_admitted(self):
        """The strictly-more-precise case: at depth 10 with batches of
        2, a deadline between the two wait models is doom-admitted by
        the shallow estimate and correctly refused by the drain one."""
        depth, batch = 10, 2
        service = self.UNIT + self.OVERHEAD
        shallow = self._shallow(depth)
        drain = queue_drain_estimate(depth, self.UNIT, self.OVERHEAD, batch)
        deadline = (shallow + drain) / 2 + service
        policy = EstimatedWaitCap(slack=1.0)
        doomed = _request(0, deadline=deadline)
        assert policy.admit(doomed, _ctx(wait=shallow, service=service))
        assert not policy.admit(doomed, _ctx(wait=drain, service=service))


class TestDrainModelInSimulator:
    """The simulator's est-wait gate now runs the drain model."""

    def _probe_run(self, deadline):
        clock = CostModelClock()
        config = SimConfig(
            workers=1,
            max_batch_size=2,
            policy=GreedyFIFOPolicy(),
            admission=EstimatedWaitCap(slack=1.0),
            service=clock,
            salo_factory=lambda: SALO(HardwareConfig(pe_rows=4, pe_cols=4)),
        )
        # ten deadline-free requests burst in; the deadlined probe
        # arrives while all ten are still queued or executing (depth 10)
        requests = [_request(i, arrival=i * 1e-9) for i in range(10)]
        requests.append(_request(99, arrival=1e-6, deadline=deadline))
        sim = ClusterSimulator(config)
        report = sim.run(OpenLoopSource(requests))
        return sim, report, clock

    def _units(self, clock):
        salo = SALO(HardwareConfig(pe_rows=4, pe_cols=4))
        pattern = longformer_pattern(32, 6, (0,))
        unit = salo.estimate(pattern, heads=2, head_dim=4).latency_s
        return unit, clock.batch_overhead_s

    def test_doomed_probe_is_rejected_not_doom_admitted(self):
        clock = CostModelClock()
        unit, overhead = self._units(clock)
        shallow = 10 * unit + overhead
        drain = queue_drain_estimate(10, unit, overhead, 2)
        service = unit + overhead
        deadline = (shallow + drain) / 2 + service
        # the shallow model calls this feasible...
        assert shallow + service <= deadline
        sim, report, _ = self._probe_run(deadline)
        # ...the drain model knows better and turns it away at arrival
        assert {d.request_id for d in sim.metrics.drops
                if d.kind == "rejected"} == {99}
        assert report.submitted == report.completed + report.rejected + report.shed

    def test_feasible_probe_is_admitted(self):
        clock = CostModelClock()
        unit, overhead = self._units(clock)
        drain = queue_drain_estimate(10, unit, overhead, 2)
        # past the drain wait (plus the cold-compile penalty the
        # estimate deliberately omits) the probe is genuinely feasible
        deadline = 2 * drain + 10 * clock.cold_compile_s
        _, report, _ = self._probe_run(deadline)
        assert report.rejected == 0
        assert report.completed == 11
