"""Decode-phase cluster simulation: TTFT/ITL metrics, continuous
batching on the cost-model clock, conservation at both granularities."""

import pytest

from repro.cluster import (
    DEFAULT_DECODE_SLO_CLASSES,
    DecodeClusterSimulator,
    DecodeSimConfig,
    DecodeSLOClass,
    DecodeWorkloadSpec,
    FaultInjector,
    TransientSpec,
    make_admission,
)


def _spec(**overrides):
    defaults = dict(sequences=40, rate_rps=2500.0, prompt_min=4, prompt_max=40,
                    mean_new_tokens=12.0, max_new_tokens=48, seed=11)
    defaults.update(overrides)
    return DecodeWorkloadSpec(**defaults)


def _run(spec=None, **cfg):
    sim = DecodeClusterSimulator(DecodeSimConfig(**cfg))
    return sim.run(spec if spec is not None else _spec())


class TestConservation:
    def test_sequence_and_token_laws_hold(self):
        report = _run(workers=2, max_lanes=4)
        assert report.sequence_conservation
        assert report.token_conservation
        assert report.submitted == 40
        assert report.tokens_completed > 0

    def test_laws_hold_under_admission_rejection(self):
        report = _run(workers=1, max_lanes=2,
                      admission=make_admission("est-wait", slack=1.0))
        assert report.rejected > 0  # overloaded single worker turns some away
        assert report.sequence_conservation
        assert report.token_conservation

    def test_laws_hold_under_transient_faults(self):
        inj = FaultInjector([TransientSpec(prob=0.6, worker=0)], seed=5)
        report = _run(workers=2, max_lanes=4, faults=inj, max_retries=2)
        assert report.retries > 0
        assert report.failed > 0  # budget of 2 exhausted under p=0.6
        assert report.sequence_conservation
        assert report.token_conservation
        # a failed sequence splits its tokens: produced stay completed
        assert report.tokens_failed > 0


class TestContinuousBatchingOnClock:
    def test_lanes_bound_concurrency(self):
        narrow = _run(workers=1, max_lanes=2)
        wide = _run(workers=1, max_lanes=8)
        assert narrow.mean_concurrency <= 2 + 1e-9
        assert wide.mean_concurrency <= 8 + 1e-9
        assert wide.mean_concurrency > narrow.mean_concurrency

    def test_batch_amortisation_raises_tokens_per_s(self):
        """More lanes amortise the per-step batch overhead: same trace,
        wider worker, strictly higher token throughput."""
        narrow = _run(workers=1, max_lanes=1)
        wide = _run(workers=1, max_lanes=8)
        assert wide.tokens_per_s > narrow.tokens_per_s

    def test_cold_compiles_bounded_by_buckets(self):
        """Per-worker warm-plan tracking mirrors the real decode path:
        each (bucket, structure) costs one cold compile per worker."""
        report = _run(workers=2, max_lanes=4)
        for w in report.workers:
            assert 0 < w["cold_compiles"] <= 4  # buckets 16/32/64/128 at most
            info = w["plan_cache"]
            assert info["misses"] == w["cold_compiles"]
            for counters in info["buckets"].values():
                assert counters["misses"] == 1

    def test_run_is_deterministic(self):
        a = _run(workers=2, max_lanes=4)
        b = _run(workers=2, max_lanes=4)
        assert a.tokens_completed == b.tokens_completed
        assert a.steps == b.steps
        assert a.ttft_p99_s == b.ttft_p99_s
        assert a.itl_p99_s == b.itl_p99_s


class TestDecodeMetrics:
    def test_ttft_and_itl_populated(self):
        report = _run(workers=2, max_lanes=4)
        assert report.ttft_p50_s > 0
        assert report.ttft_p99_s >= report.ttft_p50_s
        assert report.itl_p50_s > 0
        assert report.itl_p99_s >= report.itl_p50_s
        assert report.tokens_per_s > 0
        assert report.makespan_s > 0

    def test_per_class_reports(self):
        report = _run(workers=2, max_lanes=8)
        names = {c.name for c in report.classes}
        assert names <= {c.name for c in DEFAULT_DECODE_SLO_CLASSES}
        for c in report.classes:
            assert 0.0 <= c.ttft_attainment <= 1.0
            assert 0.0 <= c.itl_attainment <= 1.0

    def test_render_mentions_decode_quantities(self):
        text = _run(workers=2, max_lanes=4).render()
        for needle in ("tokens/s", "TTFT", "ITL", "concurrency", "cold compiles"):
            assert needle in text

    def test_ttft_doomed_queued_sequences_are_shed(self):
        """A tight TTFT class on an overloaded worker sheds instead of
        serving hopeless first tokens."""
        tight = (DecodeSLOClass("tight", deadline_s=1e-4, share=1.0,
                                itl_deadline_s=None),)
        report = _run(_spec(slo_classes=tight, rate_rps=10000.0),
                      workers=1, max_lanes=2)
        assert report.shed > 0
        assert report.sequence_conservation and report.token_conservation


class TestSpecValidation:
    def test_trace_is_a_pure_function_of_the_spec(self):
        a, b = _spec().draw(), _spec().draw()
        assert [(s.arrival_s, s.prompt_n, s.target_tokens, s.slo_class)
                for s in a] == [
               (s.arrival_s, s.prompt_n, s.target_tokens, s.slo_class)
                for s in b]
        budgets = [s.target_tokens for s in a]
        assert all(1 <= t <= 48 for t in budgets)
        assert len(set(budgets)) > 1  # actually a distribution

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            _spec(sequences=0)
        with pytest.raises(ValueError):
            _spec(prompt_min=10, prompt_max=4)
        with pytest.raises(ValueError):
            _spec(mean_new_tokens=100.0, max_new_tokens=10)
        with pytest.raises(ValueError):
            DecodeSLOClass("x", deadline_s=1.0, itl_deadline_s=-1.0)
        with pytest.raises(ValueError):
            DecodeSimConfig(max_lanes=0)
